"""One experiment module per paper table/figure (see DESIGN.md Sec. 4
for the experiment index). Each module exposes ``run_*`` functions
returning structured results and a ``main()`` that prints the report.

:mod:`repro.experiments.runner` registers every driver behind a common
interface; ``python -m repro.experiments`` regenerates any subset of
figures/tables through one shared worker pool."""

"""One experiment module per paper table/figure (see DESIGN.md Sec. 4
for the experiment index). Each module exposes ``run_*`` functions
returning structured results and a ``main()`` that prints the report."""

"""Declarative sweep configs for every experiment driver.

One :class:`DriverConfig` per registered driver collects what used to be
scattered per-figure argument plumbing: the sweep axes (loads, apps,
seeds, scheme sets), the driver's size knob (``num_requests`` for most,
``requests_per_core`` for the colocation figures — the runner's
per-driver lambda adapters are gone), its registry title/aliases, and a
**version tag**.

The version tag is the artifact store's code-invalidation lever: it
joins every cell fingerprint of the driver (see
:func:`repro.experiments.artifacts.cell_fingerprint`), so bumping it —
the convention for any change to the driver's point worker or
methodology — invalidates exactly that driver's cached cells and
nothing else. The acceptance tests pin this: after a single driver's
tag moves, a warm regeneration recomputes that driver's cells only.

This module is a leaf (no experiment imports), so drivers, the shared
cell helper in :mod:`~repro.experiments.common`, and the runner
registry can all consume it without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

#: Evaluation seeds per data point (paper: repeat until CIs < 1%).
EVAL_SEEDS: Tuple[int, ...] = (21, 22, 23)


@dataclasses.dataclass(frozen=True)
class DriverConfig:
    """Declarative description of one experiment driver's sweep.

    Attributes:
        name: primary registry name (``fig06``, ``table1`` ...).
        title: registry/CLI title line.
        version: code-version tag; part of every cell fingerprint.
            Bump when the driver's worker or methodology changes.
        size_knob: the keyword the driver's ``main`` sizes runs with
            (``num_requests``, or ``requests_per_core`` for the
            per-core-sized colocation figures).
        aliases: extra registry names resolving to this driver.
        loads: load sweep axis (empty when the driver fixes its load).
        apps: app axis (empty = the full app suite, or not app-swept).
        seeds: evaluation seeds (empty = single-seed driver).
        schemes: scheme set the driver evaluates.
        extras: misc per-driver knobs as ``(key, value)`` pairs (kept a
            tuple so the config stays frozen/hashable).
    """

    name: str
    title: str
    version: str = "1"
    size_knob: str = "num_requests"
    aliases: Tuple[str, ...] = ()
    loads: Tuple[float, ...] = ()
    apps: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = ()
    schemes: Tuple[str, ...] = ()
    extras: Tuple[Tuple[str, Any], ...] = ()

    def size_kwargs(self, num_requests: Optional[int]) -> Dict[str, Any]:
        """Keyword mapping for ``main`` — the one place the
        ``num_requests`` vs ``requests_per_core`` naming difference
        lives. ``None`` means "the driver's paper-scale default" and
        passes nothing."""
        if num_requests is None:
            return {}
        return {self.size_knob: num_requests}

    def extra(self, key: str, default: Any = None) -> Any:
        for k, v in self.extras:
            if k == key:
                return v
        return default


CONFIGS: Dict[str, DriverConfig] = {cfg.name: cfg for cfg in (
    DriverConfig(
        "fig01", "Fig. 1: intro energy comparison + load-step response",
        loads=(0.3, 0.4, 0.5), apps=("masstree",),
        extras=(("fig1b_requests", 6000),)),
    DriverConfig(
        "fig02", "Fig. 2: service-time variability panels",
        loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
        extras=(("default_load", 0.5),)),
    DriverConfig(
        "fig06", "Fig. 6: core power savings matrix",
        loads=(0.3, 0.4, 0.5), seeds=EVAL_SEEDS,
        schemes=("StaticOracle", "AdrenalineOracle", "Rubik")),
    DriverConfig(
        "fig07_08", "Figs. 7/8: latency CDFs + frequency histograms",
        aliases=("fig07", "fig08"), apps=("masstree", "xapian"),
        extras=(("load", 0.5),)),
    DriverConfig(
        "fig09", "Fig. 9: trace-driven load sweeps",
        loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        schemes=("Fixed", "StaticOracle", "DynamicOracle",
                 "Rubik (No Feedback)", "Rubik")),
    DriverConfig(
        "fig10", "Fig. 10: load-step responses",
        extras=(("step_fractions", (0.25, 0.5, 0.75)),
                ("total_time_s", 12.0))),
    DriverConfig(
        "fig11", "Fig. 11: real-system comparison (130us DVFS lag)",
        loads=(0.3, 0.4, 0.5), apps=("masstree", "moses")),
    DriverConfig(
        "fig12", "Fig. 12: full-system power savings",
        extras=(("load", 0.3),)),
    DriverConfig(
        "fig15", "Fig. 15: colocation tail latencies",
        size_knob="requests_per_core",
        extras=(("lc_load", 0.6), ("num_mixes", 20), ("seed", 5))),
    DriverConfig(
        "fig16", "Fig. 16: datacenter power & server count",
        size_knob="requests_per_core",
        loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
        extras=(("num_mixes", 3), ("default_requests_per_core", 800))),
    DriverConfig(
        "table1", "Table 1: latency-predictor correlations",
        extras=(("load", 0.5),)),
    DriverConfig(
        "ablations", "Rubik design-choice ablations",
        extras=(("load", 0.4),)),
    DriverConfig(
        "fleet", "Fleet: sharded datacenter with power-aware routing",
        size_knob="requests_per_core",
        extras=(("num_servers", 2000), ("num_epochs", 6),
                ("num_shards", 2), ("base_load", 0.35),
                ("demand_sigma", 0.6),
                ("default_requests_per_core", 400))),
)}

"""Shared experiment methodology (paper Sec. 5.1--5.2).

Conventions used by every experiment module:

* **Latency bound**: the 95th-percentile latency of the fixed-frequency
  scheme at 50% load, measured on the same seed's demand stream the
  evaluation uses (demands are seed-determined and load-independent, so
  the bound tracks each trace's demand draw exactly as the paper's
  per-application measurement does).
* **Seeds**: every data point is averaged over ``DEFAULT_EVAL_SEEDS``
  independent runs (the paper runs each experiment until 95% confidence
  intervals are below 1%).
* **Training/evaluation split**: offline-tuned schemes (AdrenalineOracle)
  train on dedicated training seeds; per-trace oracles (StaticOracle,
  DynamicOracle) tune on the evaluation trace by definition.
* **Power savings**: relative to the fixed-frequency scheme at the same
  load, using time-averaged core power (the paper's "active core power").
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.core.controller import Rubik
from repro.experiments import artifacts, configs
from repro.perf import parallel_map
from repro.resilience import CellFailure, SweepFailure, execution
from repro.schemes.adrenaline import AdrenalineOracle
from repro.schemes.base import SchemeContext
from repro.schemes.replay import ReplayResult, replay
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import RunResult, run_trace
from repro.sim.trace import Trace
from repro.workloads.base import AppProfile

#: Load at which the latency bound is defined (paper Sec. 5.2).
BOUND_LOAD = 0.5

#: Evaluation seeds per data point (canonical copy in configs.py).
DEFAULT_EVAL_SEEDS: Tuple[int, ...] = configs.EVAL_SEEDS

#: Seed offset separating training traces from evaluation traces.
TRAINING_SEED_OFFSET = 1000


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One declarative, fingerprintable experiment cell.

    A cell is the unit every driver dispatches: a module-level picklable
    worker ``fn`` plus the one argument tuple it receives. The driver
    name resolves the :class:`~repro.experiments.configs.DriverConfig`
    whose version tag scopes invalidation; the fingerprint is the
    content address the artifact store files the result under.
    """

    driver: str
    version: str
    fn: Callable[[Any], Any]
    args: Any

    @property
    def fingerprint(self) -> str:
        return artifacts.cell_fingerprint(
            self.driver, self.version, self.fn, self.args)


def make_cells(driver: str, fn: Callable[[Any], Any],
               items: Sequence[Any]) -> List[CellSpec]:
    """One :class:`CellSpec` per item, versioned by the driver config."""
    version = configs.CONFIGS[driver].version
    return [CellSpec(driver, version, fn, item) for item in items]


def _compute_batch(fn: Callable[[Any], Any], batch: Sequence[Any],
                   indices: Sequence[int],
                   processes: Optional[int], chunksize: int) -> List[Any]:
    """Dispatch one batch of cells: exact ``parallel_map`` semantics
    without an active :class:`~repro.resilience.RetryPolicy`, the
    resilient per-cell executor with one. Failures come back as
    :class:`~repro.resilience.CellFailure` objects re-indexed to the
    *original* cell positions (``resilient_map`` numbers within the
    batch it was handed)."""
    policy = execution.active_policy()
    if policy is None:
        return parallel_map(fn, batch, processes=processes,
                            chunksize=chunksize)
    computed = execution.resilient_map(fn, batch, processes=processes,
                                       policy=policy)
    return [dataclasses.replace(v, index=indices[j])
            if isinstance(v, CellFailure) else v
            for j, v in enumerate(computed)]


def _raise_if_failed(driver: str, results: Sequence[Any]) -> None:
    failures = [r for r in results if isinstance(r, CellFailure)]
    if failures:
        raise SweepFailure(driver, failures, len(results))


def run_cells(driver: str, fn: Callable[[Any], Any],
              items: Sequence[Any],
              processes: Optional[int] = None,
              chunksize: int = 1) -> List[Any]:
    """``[fn(x) for x in items]`` through the artifact store.

    The store-free, policy-free path is exactly
    :func:`repro.perf.parallel_map` (bitwise-pinned by the runner
    equivalence tests). With a store active (regenerate CLI,
    ``REPRO_ARTIFACT_CACHE=1``, or an explicit
    :func:`repro.experiments.artifacts.activate`), each cell's
    fingerprint is consulted first and only the misses dispatch — in
    one batch, so pool load-balancing over the misses is unchanged.
    Hit values were pickled by an earlier identical computation, so
    cold and warm results are bitwise-identical.

    With an active :func:`repro.resilience.use_policy` policy (the
    runner's ``--keep-going``/``--max-retries`` flags), the batch runs
    through :func:`repro.resilience.resilient_map` instead: one
    raising/hung/crashed cell no longer aborts the sweep. Every
    *successful* cell is persisted to the store first, and then a
    :class:`~repro.resilience.SweepFailure` reports exactly the failed
    cells — so a rerun resumes from the survivors and recomputes only
    the failures (the resume-from-store workflow in
    ``docs/robustness.md``).
    """
    store = artifacts.active_store()
    if store is None:
        if execution.active_policy() is None:
            return parallel_map(fn, items, processes=processes,
                                chunksize=chunksize)
        results = _compute_batch(fn, items, list(range(len(items))),
                                 processes, chunksize)
        _raise_if_failed(driver, results)
        return results
    cells = make_cells(driver, fn, items)
    results: List[Any] = [None] * len(cells)
    missing: List[int] = []
    for i, cell in enumerate(cells):
        found, value = store.get(driver, cell.fingerprint)
        if found:
            results[i] = value
        else:
            missing.append(i)
    if missing:
        computed = _compute_batch(
            fn, [cells[i].args for i in missing], missing,
            processes, chunksize)
        for i, value in zip(missing, computed):
            results[i] = value
            if isinstance(value, CellFailure):
                continue  # never persist a failure record as a value
            store.put(driver, cells[i].fingerprint, value,
                      meta={"version": cells[i].version,
                            "fn": f"{fn.__module__}:{fn.__qualname__}"})
    _raise_if_failed(driver, results)
    return results


@functools.lru_cache(maxsize=None)
def latency_bound(app: AppProfile, seed: int,
                  num_requests: Optional[int] = None) -> float:
    """Tail-latency target: fixed-frequency tail at 50% load, same seed.

    Memoized process-wide on ``(app, seed, num_requests)``: the bound is
    defined at ``BOUND_LOAD`` regardless of the evaluation load, so every
    driver that sweeps loads (or ablation variants) used to replay the
    identical bound trace once per point. The replay is deterministic, so
    caching is bitwise-invisible; pool workers each hold their own cache,
    which the persistent :class:`repro.perf.WorkerPool` keeps warm across
    drivers. ``latency_bound.cache_clear()`` resets (tests)."""
    trace = Trace.generate_at_load(app, BOUND_LOAD, num_requests, seed)
    return replay(trace, NOMINAL_FREQUENCY_HZ).tail_latency()


def make_context(app: AppProfile, seed: int,
                 num_requests: Optional[int] = None) -> SchemeContext:
    """Context with the per-seed latency bound for ``app``."""
    return SchemeContext(
        latency_bound_s=latency_bound(app, seed, num_requests), app=app)


def training_traces(app: AppProfile, load: float, seed: int,
                    num_requests: Optional[int] = None,
                    count: int = 2) -> Tuple[List[Trace], List[float]]:
    """Traces for offline tuning, disjoint from the evaluation trace.

    Returns (traces, per-trace bounds), each bound computed on its own
    seed with the standard methodology.
    """
    seeds = [seed + TRAINING_SEED_OFFSET + k for k in range(count)]
    traces = [Trace.generate_at_load(app, load, num_requests, s)
              for s in seeds]
    bounds = [latency_bound(app, s, num_requests) for s in seeds]
    return traces, bounds


@dataclasses.dataclass
class SchemePoint:
    """One scheme at one (app, load) point, averaged over seeds."""

    scheme: str
    power_savings: float
    energy_per_request_mj: float
    tail_latency_ms: float
    violation_rate: float


def _power_and_tail(result, bound: float) -> Tuple[float, float, float]:
    """(mean power, tail, violation rate) for Run/Replay results."""
    if isinstance(result, RunResult):
        return (result.mean_core_power_w, result.tail_latency(),
                result.violation_rate(bound))
    assert isinstance(result, ReplayResult)
    return (result.mean_core_power_w, result.tail_latency(),
            result.violation_rate(bound))


def _compare_seed(args) -> Dict[str, Tuple[float, float, float, float]]:
    """One seed of the Fig. 6 scheme suite (module-level so the parallel
    sweep executor can fan seeds out across worker processes)."""
    app, load, seed, num_requests, include = args
    context = make_context(app, seed, num_requests)
    bound = context.latency_bound_s
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    base = replay(trace, NOMINAL_FREQUENCY_HZ)
    base_power = base.mean_core_power_w
    rows: Dict[str, Tuple[float, float, float, float]] = {}
    for name in include:
        if name == "StaticOracle":
            result = StaticOracle().evaluate(trace, context)
        elif name == "AdrenalineOracle":
            tr_traces, tr_bounds = training_traces(
                app, load, seed, num_requests)
            result = AdrenalineOracle().evaluate(
                trace, context, tr_traces, tr_bounds)
        elif name == "Rubik":
            result = run_trace(trace, Rubik(), context)
        elif name == "Rubik (No Feedback)":
            result = run_trace(trace, Rubik(feedback=False), context)
        else:
            raise ValueError(f"unknown scheme {name!r}")
        power, tail, viol = _power_and_tail(result, bound)
        energy = result.energy_per_request_j
        rows[name] = (1.0 - power / base_power, energy, tail, viol)
    return rows


def aggregate_seed_rows(
    include: Sequence[str],
    per_seed: Sequence[Dict[str, Tuple[float, float, float, float]]],
) -> Dict[str, SchemePoint]:
    """Average :func:`_compare_seed` rows (in seed order) per scheme.

    Shared by :func:`compare_schemes` and the flattened Fig. 6 driver so
    both aggregate with the exact same float operations.
    """
    acc: Dict[str, List[Tuple[float, float, float, float]]] = {
        name: [] for name in include}
    for rows in per_seed:
        for name, row in rows.items():
            acc[name].append(row)

    points: Dict[str, SchemePoint] = {}
    for name, rows in acc.items():
        arr = np.asarray(rows)
        points[name] = SchemePoint(
            scheme=name,
            power_savings=float(arr[:, 0].mean()),
            energy_per_request_mj=float(arr[:, 1].mean() * 1e3),
            tail_latency_ms=float(arr[:, 2].mean() * 1e3),
            violation_rate=float(arr[:, 3].mean()),
        )
    return points


def compare_schemes(
    app: AppProfile,
    load: float,
    seeds: Sequence[int] = DEFAULT_EVAL_SEEDS,
    num_requests: Optional[int] = None,
    include: Sequence[str] = ("StaticOracle", "AdrenalineOracle", "Rubik"),
    processes: Optional[int] = None,
) -> Dict[str, SchemePoint]:
    """Evaluate the Fig. 6 scheme suite at one (app, load) point.

    Returns per-scheme seed-averaged results, keyed by scheme name.
    Power savings are relative to fixed-frequency at the same load.
    Seeds are independent and fan out over the parallel sweep executor
    (serial fallback on one CPU; identical results either way).
    """
    if load <= 0:
        raise ValueError("load must be positive")
    per_seed = parallel_map(
        _compare_seed,
        [(app, load, seed, num_requests, tuple(include)) for seed in seeds],
        processes=processes,
    )
    return aggregate_seed_rows(tuple(include), per_seed)

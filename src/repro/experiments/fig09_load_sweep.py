"""Fig. 9 — trace-driven load sweeps (paper Sec. 5.3).

For each app and load in 10%..90%:

(a) 95th-percentile tail latency under Fixed-frequency, StaticOracle,
    DynamicOracle, Rubik without feedback, and Rubik.
(b) Core energy per request for the same schemes.

Expected shape: adaptive schemes produce a flat tail-latency curve up to
~50% load (the bound), then track the minimum achievable tail (shaded
region in the paper); DynamicOracle lower-bounds energy; Rubik tracks it
closely for tightly-clustered apps and conservatively for variable ones.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.core.controller import Rubik
from repro.experiments.common import make_context, run_cells
from repro.experiments.configs import CONFIGS
from repro.perf import shared_pool
from repro.schemes.base import SchemeContext
from repro.schemes.dynamic_oracle import evaluate_dynamic_oracle
from repro.schemes.replay import replay
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names
from repro.workloads.base import AppProfile

CONFIG = CONFIGS["fig09"]
DEFAULT_LOADS = CONFIG.loads
SCHEMES = CONFIG.schemes


@dataclasses.dataclass
class LoadSweepResult:
    """Per-scheme (tail ms, energy mJ/req) series for one app."""

    app: str
    loads: Tuple[float, ...]
    bound_ms: float
    tail_ms: Dict[str, List[float]]
    energy_mj: Dict[str, List[float]]

    def table(self) -> str:
        headers = ["Scheme"] + [f"{ld:.0%}" for ld in self.loads]
        tail_rows = [[s] + self.tail_ms[s] for s in SCHEMES]
        energy_rows = [[s] + self.energy_mj[s] for s in SCHEMES]
        return "\n".join([
            render_table(headers, tail_rows, float_fmt=".3f",
                         title=f"Fig. 9a ({self.app}): tail latency (ms), "
                               f"bound={self.bound_ms:.3f} ms"),
            render_table(headers, energy_rows, float_fmt=".3f",
                         title=f"Fig. 9b ({self.app}): core energy "
                               "(mJ/request)"),
        ])


def _sweep_point(args: Tuple[AppProfile, float, float, Optional[int],
                             int, int]) -> Dict[str, Tuple[float, float]]:
    """One (app, load) point under all five schemes.

    Module-level so :func:`repro.perf.parallel_map` can dispatch it to
    worker processes; the trace is regenerated in-process from (app,
    load, seed), not pickled.
    """
    app, load, bound_s, num_requests, seed, oracle_rounds = args
    context = SchemeContext(latency_bound_s=bound_s, app=app)
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    results = {
        "Fixed": replay(trace, NOMINAL_FREQUENCY_HZ),
        "StaticOracle": StaticOracle().evaluate(trace, context),
        "DynamicOracle": evaluate_dynamic_oracle(
            trace, context, max_rounds=oracle_rounds),
        "Rubik (No Feedback)": run_trace(
            trace, Rubik(feedback=False), context),
        "Rubik": run_trace(trace, Rubik(), context),
    }
    return {
        scheme: (res.tail_latency() * 1e3, res.energy_per_request_j * 1e3)
        for scheme, res in results.items()
    }


def run_load_sweep(app_name: str,
                   loads: Sequence[float] = DEFAULT_LOADS,
                   num_requests: Optional[int] = None,
                   seed: int = 21,
                   dynamic_oracle_rounds: int = 8,
                   processes: Optional[int] = None) -> LoadSweepResult:
    """Sweep one app across loads under all five schemes.

    Load points are independent and run through the parallel sweep
    executor; ``processes=None`` auto-sizes to the machine (serial on one
    CPU), and results are identical to a serial run either way.
    """
    app = APPS[app_name]
    context = make_context(app, seed, num_requests)
    points = run_cells(
        "fig09", _sweep_point,
        [(app, load, context.latency_bound_s, num_requests, seed,
          dynamic_oracle_rounds) for load in loads],
        processes=processes,
    )
    tail_ms: Dict[str, List[float]] = {s: [] for s in SCHEMES}
    energy_mj: Dict[str, List[float]] = {s: [] for s in SCHEMES}
    for point in points:
        for scheme, (tail, energy) in point.items():
            tail_ms[scheme].append(tail)
            energy_mj[scheme].append(energy)
    return LoadSweepResult(
        app=app_name,
        loads=tuple(loads),
        bound_ms=context.latency_bound_s * 1e3,
        tail_ms=tail_ms,
        energy_mj=energy_mj,
    )


def run_fig9(apps: Optional[Sequence[str]] = None,
             loads: Sequence[float] = DEFAULT_LOADS,
             num_requests: Optional[int] = None,
             seed: int = 21) -> Dict[str, LoadSweepResult]:
    """Full Fig. 9 matrix (all apps).

    The per-app sweeps share one worker pool (the regenerate-all CLI's
    pool when running under it, a local one otherwise).
    """
    with shared_pool():
        return {
            name: run_load_sweep(name, loads, num_requests, seed)
            for name in (apps or app_names())
        }


def main(num_requests: Optional[int] = None) -> str:
    results = run_fig9(num_requests=num_requests)
    report = "\n\n".join(r.table() for r in results.values())
    print(report)
    return report


if __name__ == "__main__":
    main()

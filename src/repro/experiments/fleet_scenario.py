"""Fleet scenario — power-aware routing across a sharded datacenter.

The first cluster-level result beyond the paper's representative-server
methodology (Sec. 7.2): thousands of servers with per-server offered
load drawn from a seeded distribution, a power-aware router re-splitting
each app's demand every epoch against simulation-calibrated power
curves, versus the clipped-affinity baseline (every server keeps its own
demand, excess shed). Execution is the Layer 9 sharded fleet
(:mod:`repro.fleet`): anchor/placement/integration cells of the
``fleet`` driver, bitwise-invariant across shard counts.

Expected shape: routing concentrates load on power-efficient servers,
cutting fleet energy against the affinity baseline while absorbing the
overload the baseline sheds (overloaded baseline servers report NaN
tails and are counted, not averaged).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import render_table
from repro.coloc.datacenter import datacenter_defaults
from repro.experiments.configs import CONFIGS
from repro.fleet import RoutedFleetResult, run_routed_fleet

CONFIG = CONFIGS["fleet"]


def run_fleet_scenario(
    num_servers: Optional[int] = None,
    seed: int = 21,
    num_epochs: Optional[int] = None,
    num_shards: Optional[int] = None,
    requests_per_core: Optional[int] = None,
    processes: Optional[int] = None,
) -> RoutedFleetResult:
    """The routed-fleet scenario at the config's paper-scale defaults."""
    if num_servers is None:
        num_servers = CONFIG.extra("num_servers")
    if num_epochs is None:
        num_epochs = CONFIG.extra("num_epochs")
    if num_shards is None:
        num_shards = CONFIG.extra("num_shards")
    if requests_per_core is None:
        requests_per_core = CONFIG.extra("default_requests_per_core")
    return run_routed_fleet(
        num_servers=num_servers,
        seed=seed,
        num_epochs=num_epochs,
        num_shards=num_shards,
        requests_per_core=requests_per_core,
        base_load=CONFIG.extra("base_load"),
        demand_sigma=CONFIG.extra("demand_sigma"),
        processes=processes,
    )


def render(result: RoutedFleetResult) -> str:
    rows = [
        ("servers", float(result.num_servers)),
        ("routing epochs", float(result.num_epochs)),
        ("shards", float(result.num_shards)),
        ("baseline energy (MJ)", result.baseline_energy_j / 1e6),
        ("routed energy (MJ)", result.routed_energy_j / 1e6),
        ("energy savings (%)", result.energy_savings_frac * 100),
        ("baseline shed load (server-epochs)", result.baseline_shed_load),
        ("routed shed load (server-epochs)", result.routed_shed_load),
        ("overloaded servers (baseline)", float(result.overloaded_servers)),
        ("baseline worst tail, fleet mean (ms)",
         result.baseline_tail_s * 1e3),
        ("routed worst tail, fleet mean (ms)", result.routed_tail_s * 1e3),
    ]
    return render_table(
        ("Metric", "Value"), rows, float_fmt=".2f",
        title="Fleet: power-aware routing vs clipped affinity "
              f"({result.num_servers} servers)")


def main(requests_per_core: Optional[int] = None) -> str:
    report = render(run_fleet_scenario(requests_per_core=requests_per_core))
    print(report)
    return report


if __name__ == "__main__":
    main()

"""Unified experiment runner: registry + regenerate-all flow.

Every paper table/figure driver is registered here behind a common
interface (:class:`ExperimentSpec`), so any subset of the evaluation
matrix can be regenerated in one invocation:

    PYTHONPATH=src python -m repro.experiments --list
    PYTHONPATH=src python -m repro.experiments table1 fig06 -n 2000
    PYTHONPATH=src python -m repro.experiments all

The drivers themselves flatten their nested loops (app x load x seed,
ablation variants, (app, mix) pairs ...) into independent picklable
points dispatched through :func:`repro.perf.parallel_map`; the runner
wraps the whole regeneration in one persistent
:class:`repro.perf.WorkerPool`, so *all* registered drivers share a
single pool (created lazily, at most once per invocation) and its
workers keep their per-process memo caches — notably
:func:`repro.experiments.common.latency_bound` — warm across figures.
Results are bitwise-identical to running each driver serially.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    ablations,
    fig01_intro,
    fig02_variability,
    fig06_power_savings,
    fig07_fig08_cdfs,
    fig09_load_sweep,
    fig10_load_steps,
    fig11_real_system,
    fig12_system_power,
    fig15_coloc_tails,
    fig16_datacenter,
    table1_correlations,
)
from repro.perf import WorkerPool


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment driver.

    ``run(num_requests)`` regenerates the table/figure (printing its
    report, as the module ``main()``s do) and returns the report string.
    ``num_requests=None`` means the driver's full paper-scale default;
    drivers whose natural size knob is named differently (Fig. 15/16's
    ``requests_per_core``) adapt it in their wrapper.
    """

    name: str
    title: str
    run: Callable[[Optional[int]], str]
    aliases: Tuple[str, ...] = ()


EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    for key in (spec.name,) + spec.aliases:
        if key in EXPERIMENTS or key == "all":
            raise ValueError(f"duplicate experiment name {key!r}")
        EXPERIMENTS[key] = spec
    return spec


register(ExperimentSpec(
    "fig01", "Fig. 1: intro energy comparison + load-step response",
    fig01_intro.main))
register(ExperimentSpec(
    "fig02", "Fig. 2: service-time variability panels",
    fig02_variability.main))
register(ExperimentSpec(
    "fig06", "Fig. 6: core power savings matrix",
    fig06_power_savings.main))
register(ExperimentSpec(
    "fig07_08", "Figs. 7/8: latency CDFs + frequency histograms",
    fig07_fig08_cdfs.main, aliases=("fig07", "fig08")))
register(ExperimentSpec(
    "fig09", "Fig. 9: trace-driven load sweeps",
    fig09_load_sweep.main))
register(ExperimentSpec(
    "fig10", "Fig. 10: load-step responses",
    fig10_load_steps.main))
register(ExperimentSpec(
    "fig11", "Fig. 11: real-system comparison (130us DVFS lag)",
    fig11_real_system.main))
register(ExperimentSpec(
    "fig12", "Fig. 12: full-system power savings",
    fig12_system_power.main))
register(ExperimentSpec(
    "fig15", "Fig. 15: colocation tail latencies",
    lambda n: fig15_coloc_tails.main(requests_per_core=n)))
register(ExperimentSpec(
    "fig16", "Fig. 16: datacenter power & server count",
    lambda n: (fig16_datacenter.main(requests_per_core=n)
               if n is not None else fig16_datacenter.main())))
register(ExperimentSpec(
    "table1", "Table 1: latency-predictor correlations",
    table1_correlations.main))
register(ExperimentSpec(
    "ablations", "Rubik design-choice ablations",
    ablations.main))


def experiment_names() -> List[str]:
    """Primary (alias-free) registered names, in registration order."""
    seen: List[str] = []
    for spec in EXPERIMENTS.values():
        if spec.name not in seen:
            seen.append(spec.name)
    return seen


def resolve(names: Optional[Sequence[str]] = None) -> List[ExperimentSpec]:
    """Specs for ``names`` (aliases ok, ``None``/``"all"`` = everything),
    deduplicated, in registration order."""
    if not names or "all" in names:
        keys = experiment_names()
    else:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown!r}; "
                f"known: {', '.join(experiment_names())}")
        keys = [EXPERIMENTS[n].name for n in names]
    specs: List[ExperimentSpec] = []
    for name in experiment_names():
        if name in keys and EXPERIMENTS[name] not in specs:
            specs.append(EXPERIMENTS[name])
    return specs


def regenerate(names: Optional[Sequence[str]] = None,
               num_requests: Optional[int] = None,
               processes: Optional[int] = None) -> Dict[str, str]:
    """Regenerate the selected figures/tables through one shared pool.

    Returns ``{name: report}`` in registration order. The
    :class:`~repro.perf.WorkerPool` context makes every
    ``parallel_map`` inside the selected drivers reuse a single
    persistent pool (lazily created, at most once) instead of spawning
    per call; on one CPU everything stays on the exact serial path.
    """
    specs = resolve(names)
    reports: Dict[str, str] = {}
    with WorkerPool(processes):
        for spec in specs:
            reports[spec.name] = spec.run(num_requests)
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper figures/tables through one shared "
                    "worker pool.")
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (see --list); omit or pass 'all' for "
             "the full matrix")
    parser.add_argument(
        "-n", "--num-requests", type=int, default=None,
        help="requests per run (default: each driver's paper-scale "
             "default; use a small value for smoke runs)")
    parser.add_argument(
        "--processes", type=int, default=None,
        help="shared-pool worker count (default: auto-size to the "
             "machine, capped by REPRO_MAX_WORKERS)")
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list registered experiments and exit")
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in experiment_names():
            spec = EXPERIMENTS[name]
            alias = f" (aliases: {', '.join(spec.aliases)})" \
                if spec.aliases else ""
            print(f"{name:<10} {spec.title}{alias}")
        return 0

    try:
        specs = resolve(args.experiments)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    print(f"Regenerating: {', '.join(s.name for s in specs)}")
    regenerate([s.name for s in specs],
               num_requests=args.num_requests,
               processes=args.processes)
    return 0

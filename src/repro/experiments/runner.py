"""Unified experiment runner: registry + regenerate-all flow.

Every paper table/figure driver is registered here behind a common
interface (:class:`ExperimentSpec`), so any subset of the evaluation
matrix can be regenerated in one invocation:

    PYTHONPATH=src python -m repro.experiments --list
    PYTHONPATH=src python -m repro.experiments table1 fig06 -n 2000
    PYTHONPATH=src python -m repro.experiments all
    PYTHONPATH=src python -m repro.experiments all --refresh fig06
    PYTHONPATH=src python -m repro.experiments all --no-cache

A spec is a :class:`repro.experiments.configs.DriverConfig` (title,
aliases, size knob, version tag) paired with the driver module's
``main`` — the config's ``size_kwargs`` replaces the old per-driver
lambda adapters for ``num_requests`` vs ``requests_per_core``.

The drivers flatten their nested loops (app x load x seed, ablation
variants, (app, mix) pairs ...) into independent picklable cells
dispatched through :func:`repro.experiments.common.run_cells`; the
runner wraps the whole regeneration in one persistent
:class:`repro.perf.WorkerPool` (shared across drivers, workers keep
their memo caches warm) and — unless ``--no-cache`` — activates the
content-addressed artifact store, so previously computed cells replay
from disk bitwise-identically and only misses hit the pool.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    ablations,
    artifacts,
    fig01_intro,
    fig02_variability,
    fig06_power_savings,
    fig07_fig08_cdfs,
    fig09_load_sweep,
    fig10_load_steps,
    fig11_real_system,
    fig12_system_power,
    fig15_coloc_tails,
    fig16_datacenter,
    fleet_scenario,
    table1_correlations,
)
from repro.experiments.configs import CONFIGS, DriverConfig
from repro.perf import WorkerPool
from repro.resilience import RetryPolicy, SweepFailure, use_policy


class RegenerationFailed(RuntimeError):
    """One or more drivers finished with failed cells.

    Carries the reports that *did* complete plus each failing driver's
    :class:`~repro.resilience.SweepFailure`, so the CLI can print a
    per-driver summary and callers can still use partial output. The
    successful cells of the failing drivers are already persisted in
    the artifact store — rerunning the same command resumes from them.
    """

    def __init__(self, reports: Dict[str, str],
                 failures: Dict[str, SweepFailure]):
        self.reports = dict(reports)
        self.failures = dict(failures)
        super().__init__(
            f"{len(self.failures)} driver(s) had failed cells: "
            + ", ".join(self.failures))

    def summary(self) -> str:
        return "\n".join(f.summary() for f in self.failures.values())


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment driver: its declarative config plus the
    module ``main``.

    ``run(num_requests)`` regenerates the table/figure (printing its
    report, as the module ``main()``s do) and returns the report string.
    ``num_requests=None`` means the driver's full paper-scale default;
    the config's ``size_kwargs`` maps the value onto the driver's size
    knob (``num_requests``, or ``requests_per_core`` for Fig. 15/16).
    """

    config: DriverConfig
    main: Callable[..., str]

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def title(self) -> str:
        return self.config.title

    @property
    def aliases(self) -> Tuple[str, ...]:
        return self.config.aliases

    def run(self, num_requests: Optional[int] = None) -> str:
        return self.main(**self.config.size_kwargs(num_requests))


#: Driver name -> module entry point; everything else a spec needs
#: (title, aliases, size knob, version tag) lives in its DriverConfig.
_MAINS: Dict[str, Callable[..., str]] = {
    "fig01": fig01_intro.main,
    "fig02": fig02_variability.main,
    "fig06": fig06_power_savings.main,
    "fig07_08": fig07_fig08_cdfs.main,
    "fig09": fig09_load_sweep.main,
    "fig10": fig10_load_steps.main,
    "fig11": fig11_real_system.main,
    "fig12": fig12_system_power.main,
    "fig15": fig15_coloc_tails.main,
    "fig16": fig16_datacenter.main,
    "table1": table1_correlations.main,
    "ablations": ablations.main,
    "fleet": fleet_scenario.main,
}

EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    for key in (spec.name,) + spec.aliases:
        if key in EXPERIMENTS or key == "all":
            raise ValueError(f"duplicate experiment name {key!r}")
        EXPERIMENTS[key] = spec
    return spec


for _name, _cfg in CONFIGS.items():
    register(ExperimentSpec(_cfg, _MAINS[_name]))
missing = set(_MAINS) - set(CONFIGS)
if missing:  # pragma: no cover - registry wiring error
    raise RuntimeError(f"drivers without configs: {sorted(missing)}")
del _name, _cfg, missing


def experiment_names() -> List[str]:
    """Primary (alias-free) registered names, in registration order."""
    seen: List[str] = []
    for spec in EXPERIMENTS.values():
        if spec.name not in seen:
            seen.append(spec.name)
    return seen


def resolve(names: Optional[Sequence[str]] = None) -> List[ExperimentSpec]:
    """Specs for ``names`` (aliases ok, ``None``/``"all"`` = everything),
    deduplicated, in registration order."""
    if not names or "all" in names:
        keys = experiment_names()
    else:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown!r}; "
                f"known: {', '.join(experiment_names())}")
        keys = [EXPERIMENTS[n].name for n in names]
    specs: List[ExperimentSpec] = []
    for name in experiment_names():
        if name in keys and EXPERIMENTS[name] not in specs:
            specs.append(EXPERIMENTS[name])
    return specs


def regenerate(names: Optional[Sequence[str]] = None,
               num_requests: Optional[int] = None,
               processes: Optional[int] = None,
               use_cache: bool = False,
               refresh: Sequence[str] = (),
               policy: Optional[RetryPolicy] = None,
               keep_going: bool = False) -> Dict[str, str]:
    """Regenerate the selected figures/tables through one shared pool.

    Returns ``{name: report}`` in registration order. The
    :class:`~repro.perf.WorkerPool` context makes every
    ``parallel_map`` inside the selected drivers reuse a single
    persistent pool (lazily created, at most once) instead of spawning
    per call; on one CPU everything stays on the exact serial path.

    With ``use_cache=True`` the env-resolved artifact store is activated
    for the duration: each driver's cells replay from disk when their
    fingerprints match and only misses dispatch to the pool, with
    results bitwise-identical either way. ``refresh`` names drivers
    (aliases ok) whose cached cells are deleted first — the targeted
    invalidation lever. The default is cache-off so library callers and
    the equivalence tests keep their direct compute semantics; the CLI
    flips it on.

    ``policy`` activates the resilient executor for every driver's
    cells (per-cell retry/timeout, crashed-worker recovery — see
    ``docs/robustness.md``). A driver whose sweep still ends with
    failed cells raises :class:`~repro.resilience.SweepFailure`, which
    aborts the remaining drivers unless ``keep_going`` is set; either
    way the failing drivers' *successful* cells are already persisted
    (when the store is on), and :class:`RegenerationFailed` is raised
    at the end with the completed reports attached — rerunning the same
    command resumes from the survivors.
    """
    specs = resolve(names)
    if refresh:
        store = artifacts.default_store()
        for spec in resolve(refresh):
            store.invalidate(spec.name)
    if use_cache:
        cache_ctx = artifacts.activate()
    else:
        cache_ctx = contextlib.nullcontext()
    policy_ctx = use_policy(policy) if policy is not None \
        else contextlib.nullcontext()
    reports: Dict[str, str] = {}
    failures: Dict[str, SweepFailure] = {}
    with cache_ctx, policy_ctx, WorkerPool(processes):
        for spec in specs:
            try:
                reports[spec.name] = spec.run(num_requests)
            except SweepFailure as exc:
                failures[spec.name] = exc
                if not keep_going:
                    break
    if failures:
        raise RegenerationFailed(reports, failures)
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper figures/tables through one shared "
                    "worker pool and a content-addressed artifact cache.")
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (see --list); omit or pass 'all' for "
             "the full matrix")
    parser.add_argument(
        "-n", "--num-requests", type=int, default=None,
        help="requests per run (default: each driver's paper-scale "
             "default; use a small value for smoke runs)")
    parser.add_argument(
        "--processes", type=int, default=None,
        help="shared-pool worker count (default: auto-size to the "
             "machine, capped by REPRO_MAX_WORKERS)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="compute every cell directly, neither reading nor writing "
             "the artifact store")
    parser.add_argument(
        "--refresh", action="append", default=[], metavar="EXPERIMENT",
        help="invalidate the named driver's cached cells before running "
             "(repeatable; aliases ok)")
    parser.add_argument(
        "--keep-going", action="store_true",
        help="keep running the remaining drivers after one finishes "
             "with failed cells (per-driver failure summary at the "
             "end; exit status 1)")
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="attempts after the first for a failing cell "
             "(default 1 when the resilient executor is active)")
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell soft timeout; a cell exceeding it is charged a "
             "failed attempt and its pool rebuilt (default: none)")
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list registered experiments (with cached-cell counts) "
             "and exit")
    args = parser.parse_args(argv)

    if args.list_experiments:
        store = artifacts.default_store()
        for name in experiment_names():
            spec = EXPERIMENTS[name]
            alias = f" (aliases: {', '.join(spec.aliases)})" \
                if spec.aliases else ""
            cached = store.cached_cells(name)
            print(f"{name:<10} [{cached:>3} cached] {spec.title}{alias}")
        return 0

    try:
        specs = resolve(args.experiments)
        if args.refresh:
            resolve(args.refresh)  # surface bad --refresh names early
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    use_cache = not args.no_cache
    # Any resilience flag activates the resilient executor; without
    # one, cells keep the exact parallel_map fail-fast semantics.
    policy: Optional[RetryPolicy] = None
    if args.keep_going or args.max_retries is not None \
            or args.cell_timeout is not None:
        policy = RetryPolicy(
            max_retries=(args.max_retries
                         if args.max_retries is not None else 1),
            timeout_s=args.cell_timeout)
    print(f"Regenerating: {', '.join(s.name for s in specs)}")
    store = artifacts.default_store() if use_cache else None
    before = store.stats() if store else None
    failed: Optional[RegenerationFailed] = None
    try:
        regenerate([s.name for s in specs],
                   num_requests=args.num_requests,
                   processes=args.processes,
                   use_cache=use_cache,
                   refresh=args.refresh,
                   policy=policy,
                   keep_going=args.keep_going)
    except RegenerationFailed as exc:
        failed = exc
    if store is not None:
        after = store.stats()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        print(f"[artifact-cache] {hits} hits, {misses} misses "
              f"({store.root})")
    if failed is not None:
        print(f"FAILED: {failed}", file=sys.stderr)
        print(failed.summary(), file=sys.stderr)
        if use_cache:
            print("(successful cells are cached; rerun the same "
                  "command to recompute only the failures)",
                  file=sys.stderr)
        return 1
    return 0

"""Fig. 10 — responsiveness to sudden load changes (paper Sec. 5.4).

Input load steps 25% -> 50% -> 75% over 12 seconds (steps at t=4s and
t=8s). For StaticOracle, AdrenalineOracle and Rubik we report tail latency
and active power over a rolling 200 ms window, plus Rubik's frequency
choices. The oracles are tuned for the *initial* (25%) load, as slow
controllers would be when the step hits — the paper's point is that they
under-provision after the step while Rubik adapts instantly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_series
from repro.analysis.windows import windowed_series
from repro.core.controller import Rubik
from repro.experiments.common import make_context, run_cells, training_traces
from repro.experiments.configs import CONFIGS
from repro.schemes.adrenaline import AdrenalineOracle
from repro.schemes.base import Scheme
from repro.schemes.static_oracle import StaticOracle
from repro.sim.arrivals import LoadSchedule
from repro.sim.server import RunResult, run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["fig10"]
#: Load fractions of the three phases (steps at T/3 and 2T/3).
STEP_FRACTIONS = CONFIG.extra("step_fractions")
TOTAL_TIME_S = CONFIG.extra("total_time_s")
WINDOW_S = 0.2


@dataclasses.dataclass
class StepResponseResult:
    """Rolling tail/power traces per scheme for one app."""

    app: str
    bound_ms: float
    tail_series_ms: Dict[str, Tuple[np.ndarray, np.ndarray]]
    power_series_w: Dict[str, Tuple[np.ndarray, np.ndarray]]
    rubik_freq: Tuple[np.ndarray, np.ndarray]

    total_time_s: float = TOTAL_TIME_S

    def max_tail_after_step(self, scheme: str) -> float:
        """Worst rolling tail (ms) after the last load step."""
        times, vals = self.tail_series_ms[scheme]
        mask = times >= 2.0 * self.total_time_s / 3.0
        return float(vals[mask].max()) if mask.any() else float("nan")

    def table(self) -> str:
        lines = [f"Fig. 10 ({self.app}): load steps 25->50->75%, "
                 f"bound={self.bound_ms:.3f} ms"]
        for scheme, (t, v) in self.tail_series_ms.items():
            # Subsample for readability.
            step = max(1, len(t) // 24)
            lines.append(render_series(
                f"{scheme} tail (ms)", t[::step], v[::step]))
        t, f = self.rubik_freq
        step = max(1, len(t) // 24)
        lines.append(render_series("Rubik freq (GHz)",
                                   t[::step], f[::step] / 1e9))
        return "\n".join(lines)


def _num_requests_for(app, total_time_s: float) -> int:
    """Requests so the arrival process spans the full schedule."""
    mean_load = float(sum(STEP_FRACTIONS)) / len(STEP_FRACTIONS)
    return int(app.saturation_qps * mean_load * total_time_s)


def run_step_response(app_name: str, seed: int = 21,
                      num_requests: Optional[int] = None,
                      total_time_s: float = TOTAL_TIME_S,
                      ) -> StepResponseResult:
    """Run the three schemes through the load-step schedule.

    ``total_time_s`` scales the schedule (steps at T/3 and 2T/3), so
    tests can run a shortened version of the paper's 12 s run.
    """
    app = APPS[app_name]
    n = num_requests or _num_requests_for(app, total_time_s)
    context = make_context(app, seed, n)
    steps = [(k * total_time_s / 3.0, frac)
             for k, frac in enumerate(STEP_FRACTIONS)]
    schedule = LoadSchedule.from_loads(steps, app.saturation_qps)
    trace = Trace.generate(app, schedule, n, seed)

    # Oracles tuned at the initial 25% load.
    tune_trace = Trace.generate_at_load(app, 0.25, n, seed)
    static = StaticOracle()
    static.tune(tune_trace, context)
    adren = AdrenalineOracle()
    tr_traces, tr_bounds = training_traces(app, 0.25, seed, n)
    adren.tune(tr_traces, context, bounds_s=tr_bounds)

    runs: Dict[str, RunResult] = {
        "StaticOracle": run_trace(trace, static, context),
        "AdrenalineOracle": run_trace(trace, adren, context),
    }
    # This driver consumes the segment log and the frequency-transition
    # history (both opt-in): Fig. 10 plots power over time and Rubik's
    # frequency choices.
    rubik_run = run_trace(trace, Rubik(), context, log_segments=True,
                          record_freq_history=True)
    runs["Rubik"] = rubik_run

    tails, powers = {}, {}
    for scheme, run in runs.items():
        finish = np.array([r.finish_time for r in run.requests])
        lats = np.array([r.response_time for r in run.requests])
        t, v = windowed_series(finish, lats, WINDOW_S, step_s=WINDOW_S / 2)
        tails[scheme] = (t, v * 1e3)
        powers[scheme] = _power_series(run)

    freq_t = np.array([t for t, _ in rubik_run.freq_history])
    freq_f = np.array([f for _, f in rubik_run.freq_history])
    return StepResponseResult(
        app=app_name,
        bound_ms=context.latency_bound_s * 1e3,
        tail_series_ms=tails,
        power_series_w=powers,
        rubik_freq=(freq_t, freq_f),
        total_time_s=total_time_s,
    )


def _power_series(run: RunResult) -> Tuple[np.ndarray, np.ndarray]:
    """Rolling mean power from the segment log (or busy approximation)."""
    if run.segment_log:
        mids = np.array([(a + b) / 2 for a, b, _ in run.segment_log])
        watts = np.array([p for _, _, p in run.segment_log])
        weights = np.array([b - a for a, b, _ in run.segment_log])
        t, v = windowed_series(
            mids, watts * weights, WINDOW_S, step_s=WINDOW_S / 2,
            reducer=np.sum)
        return t, v / WINDOW_S
    # Fallback: energy per completion smoothed over windows.
    finish = np.array([r.finish_time for r in run.requests])
    per_req = run.energy_j / max(1, len(run.requests))
    t, v = windowed_series(finish, np.full(len(finish), per_req),
                           WINDOW_S, step_s=WINDOW_S / 2, reducer=np.sum)
    return t, v / WINDOW_S


def _step_response_point(args) -> StepResponseResult:
    """One app's step response (module-level for the parallel executor;
    the result dataclass is plain arrays/dicts, so it pickles)."""
    name, seed, num_requests = args
    return run_step_response(name, seed, num_requests)


def run_fig10(apps: Optional[Sequence[str]] = None, seed: int = 21,
              num_requests: Optional[int] = None,
              processes: Optional[int] = None,
              ) -> Dict[str, StepResponseResult]:
    """Step-response traces for all five apps (one parallel point per
    app; identical to the serial per-app loop)."""
    names = tuple(apps or app_names())
    results = run_cells("fig10", _step_response_point,
                        [(name, seed, num_requests) for name in names],
                        processes=processes)
    return dict(zip(names, results))


def main(num_requests: Optional[int] = None) -> str:
    results = run_fig10(num_requests=num_requests)
    report = "\n\n".join(r.table() for r in results.values())
    print(report)
    return report


if __name__ == "__main__":
    main()

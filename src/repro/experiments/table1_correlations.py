"""Table 1 — Pearson correlations of response latency with service time,
instantaneous QPS, and queue length (paper Sec. 3).

The paper's table shows queue length is by far the best predictor of
response latency (0.63--0.94 across apps), service time matters only for
variable-service apps (shore, xapian), and instantaneous QPS is weak.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.stats import pearson
from repro.analysis.tables import render_table
from repro.analysis.windows import instantaneous_qps
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.experiments.common import run_cells
from repro.experiments.configs import CONFIGS
from repro.experiments.fig02_variability import queue_length_at_arrivals
from repro.schemes.replay import replay
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["table1"]

#: Paper Table 1 values, for side-by-side comparison in the report.
PAPER_TABLE1: Dict[str, Tuple[float, float, float]] = {
    "masstree": (0.03, 0.09, 0.94),
    "moses": (0.08, 0.40, 0.93),
    "specjbb": (0.40, 0.08, 0.66),
    "shore": (0.56, 0.17, 0.63),
    "xapian": (0.50, 0.32, 0.75),
}


@dataclasses.dataclass
class Table1Result:
    """Correlations per app: (service time, instantaneous QPS, queue)."""

    per_app: Dict[str, Tuple[float, float, float]]

    def table(self) -> str:
        rows = []
        for name, (svc, qps, queue) in self.per_app.items():
            paper = PAPER_TABLE1[name]
            rows.append((name, svc, qps, queue,
                         f"({paper[0]:.2f}/{paper[1]:.2f}/{paper[2]:.2f})"))
        return render_table(
            ("App", "ServiceTime", "InstQPS", "QueueLen", "paper(s/q/l)"),
            rows, float_fmt=".2f",
            title="Table 1: Pearson correlation of response latency")


def _table1_point(args: Tuple[str, float, Optional[int], int]
                  ) -> Tuple[float, float, float]:
    """One app's correlation triple (module-level for the parallel
    sweep executor; the trace is re-derived in-process from the seed)."""
    name, load, num_requests, seed = args
    app = APPS[name]
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    rep = replay(trace, NOMINAL_FREQUENCY_HZ)
    qps = instantaneous_qps(trace.arrivals, window_s=5e-3,
                            anchor="arrivals")
    queue = queue_length_at_arrivals(trace.arrivals, rep.response_times)
    return (
        pearson(rep.service_times, rep.response_times),
        pearson(qps, rep.response_times),
        pearson(queue.astype(float), rep.response_times),
    )


def run_table1(num_requests: Optional[int] = None, seed: int = 21,
               load: float = CONFIG.extra("load"),
               processes: Optional[int] = None) -> Table1Result:
    """Compute the correlation table at the paper's operating point.

    Apps are independent points and fan out over the parallel sweep
    executor (serial fallback on one CPU; identical results either way).
    """
    names = app_names()
    rows = run_cells(
        "table1", _table1_point,
        [(name, load, num_requests, seed) for name in names],
        processes=processes,
    )
    return Table1Result(dict(zip(names, rows)))


def main(num_requests: Optional[int] = None) -> str:
    report = run_table1(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

"""Fig. 15 — impact of colocation on tail latencies (paper Sec. 7.1).

Latency-critical apps run at 60% load colocated with batch mixes; each
(LC app, batch mix) pair is one colocated server. For each colocation
scheme, the distribution of normalized tail latencies (tail / bound)
across all pairs is reported, sorted worst-first as in the paper.

Expected shape: HW-T and HW-TPW grossly violate tails (paper: up to 8.2x
and 3.2x); StaticColoc violates for a substantial fraction of mixes (up
to 1.42x); RubikColoc holds the bound for every mix.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.coloc.batch import generate_mixes
from repro.coloc.server import COLOC_SCHEME_NAMES, run_colocated_server
from repro.experiments.common import make_context, run_cells
from repro.experiments.configs import CONFIGS
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["fig15"]
LC_LOAD = CONFIG.extra("lc_load")


@dataclasses.dataclass
class Fig15Result:
    """Normalized tails per scheme across all (app, mix) pairs."""

    normalized_tails: Dict[str, np.ndarray]  # sorted descending

    def worst(self, scheme: str) -> float:
        return float(self.normalized_tails[scheme][0])

    def violation_fraction(self, scheme: str) -> float:
        """Fraction of pairs whose tail exceeds the bound by >5%.

        Schemes that hold the tail *at* the bound sit within a few
        percent of 1.0 by construction (the 95th percentile rides the
        target); the 5% margin separates real degradations (StaticColoc's
        up-to-42%, HW governors' multiples) from estimator noise.
        """
        return float(np.mean(self.normalized_tails[scheme] > 1.05))

    def table(self) -> str:
        rows = []
        for scheme, tails in self.normalized_tails.items():
            rows.append((
                scheme,
                self.worst(scheme),
                float(np.median(tails)),
                self.violation_fraction(scheme) * 100,
            ))
        return render_table(
            ("Scheme", "Worst tail (xBound)", "Median", "% mixes violating"),
            rows, float_fmt=".2f",
            title="Fig. 15: colocation tail latency at 60% LC load")


def run_fig15(
    num_mixes: int = 20,
    apps: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    seed: int = 5,
    schemes: Sequence[str] = COLOC_SCHEME_NAMES,
    processes: Optional[int] = None,
) -> Fig15Result:
    """Evaluate all colocation schemes across (app, mix) pairs.

    ``num_mixes=20`` with all 5 apps gives the paper's 100 pairs; smaller
    values sub-sample for quick runs. ``requests_per_core`` defaults to
    the app's paper request count split across cores (Table 3) — tail
    estimates for heavy-tailed apps (specjbb) need those run lengths.
    The (app, mix) pairs dispatch onto the shared worker pool when one
    is active (regenerate-all CLI), a per-call pool otherwise.
    """
    mixes = generate_mixes(num_mixes=num_mixes, seed=0)
    pairs = []
    for name in (apps or app_names()):
        app = APPS[name]
        per_core = requests_per_core
        if per_core is None:
            per_core = max(800, app.num_requests // 6)
        context = make_context(app, seed, per_core * 2)
        for mix in mixes:
            pairs.append((app, mix, tuple(schemes), context, per_core, seed))
    results = run_cells("fig15", _fig15_pair, pairs, processes=processes)
    tails: Dict[str, List[float]] = {s: [] for s in schemes}
    for per_scheme in results:
        for scheme, tail in per_scheme.items():
            tails[scheme].append(tail)
    return Fig15Result({
        s: np.sort(np.asarray(v))[::-1] for s, v in tails.items()
    })


def _fig15_pair(args) -> Dict[str, float]:
    """All colocation schemes for one (LC app, batch mix) pair.

    Module-level for the parallel sweep executor; one pair is the unit of
    work so a pool load-balances across the app x mix matrix.
    """
    app, mix, schemes, context, per_core, seed = args
    out: Dict[str, float] = {}
    for scheme in schemes:
        result = run_colocated_server(
            app, LC_LOAD, mix, scheme, context, seed=seed,
            requests_per_core=per_core)
        out[scheme] = result.tail_latency() / context.latency_bound_s
    return out


def main(num_mixes: int = 20,
         requests_per_core: Optional[int] = None) -> str:
    report = run_fig15(num_mixes=num_mixes,
                       requests_per_core=requests_per_core).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

"""Fig. 6 — core power savings of StaticOracle, AdrenalineOracle, and
Rubik at 30/40/50% load for all five apps, plus the mean (paper Sec. 5.2).

Savings are relative to the fixed-frequency scheme at the same load.
Expected shape: Rubik best everywhere (paper: up to 66%, 37% average at
low load); at 50% load StaticOracle saves nothing, AdrenalineOracle saves
little, Rubik still saves (paper: 15% average, up to 28%).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import DEFAULT_EVAL_SEEDS, compare_schemes
from repro.workloads.apps import APPS, app_names

LOADS = (0.3, 0.4, 0.5)
SCHEMES = ("StaticOracle", "AdrenalineOracle", "Rubik")


@dataclasses.dataclass
class Fig6Result:
    """savings[app][load][scheme] plus cross-app means."""

    savings: Dict[str, Dict[float, Dict[str, float]]]
    loads: Tuple[float, ...] = LOADS

    def mean_savings(self, load: float, scheme: str) -> float:
        return float(np.mean(
            [self.savings[a][load][scheme] for a in self.savings]))

    def table(self) -> str:
        headers = ["App", "Load"] + [s for s in SCHEMES]
        rows = []
        for app in self.savings:
            for load in self.loads:
                cell = self.savings[app][load]
                rows.append([app, f"{load:.0%}"]
                            + [cell[s] * 100 for s in SCHEMES])
        for load in self.loads:
            rows.append(["mean", f"{load:.0%}"]
                        + [self.mean_savings(load, s) * 100 for s in SCHEMES])
        return render_table(
            headers, rows, float_fmt=".1f",
            title="Fig. 6: core power savings (%) vs fixed-frequency")


def run_fig6(
    num_requests: Optional[int] = None,
    seeds: Sequence[int] = DEFAULT_EVAL_SEEDS,
    loads: Tuple[float, ...] = LOADS,
    apps: Optional[Sequence[str]] = None,
) -> Fig6Result:
    """Compute the full savings matrix."""
    savings: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name in (apps or app_names()):
        app = APPS[name]
        savings[name] = {}
        for load in loads:
            points = compare_schemes(app, load, seeds, num_requests,
                                     include=SCHEMES)
            savings[name][load] = {
                s: points[s].power_savings for s in SCHEMES}
    return Fig6Result(savings, loads)


def main(num_requests: Optional[int] = None) -> str:
    report = run_fig6(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

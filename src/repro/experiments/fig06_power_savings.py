"""Fig. 6 — core power savings of StaticOracle, AdrenalineOracle, and
Rubik at 30/40/50% load for all five apps, plus the mean (paper Sec. 5.2).

Savings are relative to the fixed-frequency scheme at the same load.
Expected shape: Rubik best everywhere (paper: up to 66%, 37% average at
low load); at 50% load StaticOracle saves nothing, AdrenalineOracle saves
little, Rubik still saves (paper: 15% average, up to 28%).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import (
    _compare_seed,
    aggregate_seed_rows,
    run_cells,
)
from repro.experiments.configs import CONFIGS
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["fig06"]
LOADS = CONFIG.loads
SCHEMES = CONFIG.schemes
SEEDS = CONFIG.seeds


@dataclasses.dataclass
class Fig6Result:
    """savings[app][load][scheme] plus cross-app means.

    ``loads`` and ``schemes`` record what :func:`run_fig6` actually ran
    (subset runs used to KeyError against the module-level defaults).
    """

    savings: Dict[str, Dict[float, Dict[str, float]]]
    loads: Tuple[float, ...] = LOADS
    schemes: Tuple[str, ...] = SCHEMES

    def mean_savings(self, load: float, scheme: str) -> float:
        return float(np.mean(
            [self.savings[a][load][scheme] for a in self.savings]))

    def table(self) -> str:
        headers = ["App", "Load"] + [s for s in self.schemes]
        rows = []
        for app in self.savings:
            for load in self.loads:
                cell = self.savings[app][load]
                rows.append([app, f"{load:.0%}"]
                            + [cell[s] * 100 for s in self.schemes])
        for load in self.loads:
            rows.append(["mean", f"{load:.0%}"]
                        + [self.mean_savings(load, s) * 100
                           for s in self.schemes])
        return render_table(
            headers, rows, float_fmt=".1f",
            title="Fig. 6: core power savings (%) vs fixed-frequency")


def run_fig6(
    num_requests: Optional[int] = None,
    seeds: Sequence[int] = SEEDS,
    loads: Tuple[float, ...] = LOADS,
    apps: Optional[Sequence[str]] = None,
    include: Sequence[str] = SCHEMES,
    processes: Optional[int] = None,
) -> Fig6Result:
    """Compute the full savings matrix.

    The app x load x seed cube is flattened into one list of independent
    points and fanned out over the parallel sweep executor (reusing the
    shared :class:`repro.perf.WorkerPool` when one is active), then
    regrouped per (app, load) in seed order — the aggregation arithmetic
    is shared with :func:`~repro.experiments.common.compare_schemes`, so
    results are identical to the old serial per-point loop.
    """
    names = tuple(apps or app_names())
    schemes = tuple(include)
    points = [(APPS[name], load, seed, num_requests, schemes)
              for name in names for load in loads for seed in seeds]
    per_point = iter(run_cells("fig06", _compare_seed, points,
                               processes=processes))
    savings: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name in names:
        savings[name] = {}
        for load in loads:
            per_seed = [next(per_point) for _ in seeds]
            pts = aggregate_seed_rows(schemes, per_seed)
            savings[name][load] = {
                s: pts[s].power_savings for s in schemes}
    return Fig6Result(savings, tuple(loads), schemes)


def main(num_requests: Optional[int] = None) -> str:
    report = run_fig6(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

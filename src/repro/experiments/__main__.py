"""``python -m repro.experiments`` — regenerate-all CLI (see runner)."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())

"""Fig. 1 — Rubik vs StaticOracle on masstree (the paper's teaser).

(a) Core energy per request at 30/40/50% load.
(b) Response to a load step from 30% to 50% at t = 1 s: input load,
    tail latency over a rolling 200 ms window, and Rubik's frequency
    choices over time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_series, render_table
from repro.analysis.windows import windowed_series
from repro.core.controller import Rubik
from repro.experiments.common import make_context, run_cells
from repro.experiments.configs import CONFIGS
from repro.schemes.static_oracle import StaticOracle
from repro.sim.arrivals import LoadSchedule
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE

CONFIG = CONFIGS["fig01"]
LOADS = CONFIG.loads


@dataclasses.dataclass
class Fig1aResult:
    """Energy per request (mJ) for each scheme at each load."""

    loads: Tuple[float, ...]
    static_oracle_mj: List[float]
    rubik_mj: List[float]

    def table(self) -> str:
        rows = [
            (f"{ld:.0%}", s, r, 1.0 - r / s)
            for ld, s, r in zip(self.loads, self.static_oracle_mj,
                                self.rubik_mj)
        ]
        return render_table(
            ("Load", "StaticOracle mJ/req", "Rubik mJ/req", "Rubik saves"),
            rows, title="Fig. 1a: core energy per request (masstree)")


@dataclasses.dataclass
class Fig1bResult:
    """Load-step response traces."""

    window_times: np.ndarray
    static_tail_ms: np.ndarray
    rubik_window_times: np.ndarray
    rubik_tail_ms: np.ndarray
    freq_times: np.ndarray
    freq_ghz: np.ndarray
    bound_ms: float

    def table(self) -> str:
        lines = [
            "Fig. 1b: masstree load step 30% -> 50% at t=1s "
            f"(bound {self.bound_ms:.3f} ms)",
            render_series("StaticOracle tail (ms) vs t",
                          self.window_times, self.static_tail_ms),
            render_series("Rubik tail (ms) vs t",
                          self.rubik_window_times, self.rubik_tail_ms),
        ]
        return "\n".join(lines)


def _fig1a_point(args) -> Tuple[float, float]:
    """One load of the Fig. 1a comparison (module-level so the parallel
    sweep executor can fan loads out across worker processes)."""
    load, num_requests, seed = args
    app = MASSTREE
    context = make_context(app, seed, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    static_res = StaticOracle().evaluate(trace, context)
    rubik_res = run_trace(trace, Rubik(), context)
    return (static_res.energy_per_request_j * 1e3,
            rubik_res.energy_per_request_j * 1e3)


def run_fig1a(num_requests: Optional[int] = None, seed: int = 21,
              processes: Optional[int] = None) -> Fig1aResult:
    """Energy-per-request comparison (Fig. 1a).

    The per-load points are independent and fan out over
    :func:`repro.perf.parallel_map` (bitwise-identical to the serial
    loop; pinned in ``tests/experiments/test_runner_equivalence.py``).
    """
    rows = run_cells("fig01", _fig1a_point,
                     [(load, num_requests, seed) for load in LOADS],
                     processes=processes)
    return Fig1aResult(LOADS, [r[0] for r in rows], [r[1] for r in rows])


def run_fig1b(num_requests: int = 6000, seed: int = 21,
              step_time_s: float = 1.0,
              total_time_s: float = 2.0) -> Fig1bResult:
    """Load-step response (Fig. 1b).

    StaticOracle is tuned for the pre-step (30%) load, as a feedback
    controller would have settled there; Rubik adapts by itself.
    """
    app = MASSTREE
    context = make_context(app, seed, num_requests)
    schedule = LoadSchedule.from_loads(
        [(0.0, 0.3), (step_time_s, 0.5)], app.saturation_qps)
    trace = Trace.generate(app, schedule, num_requests, seed)

    # StaticOracle tuned on a 30%-only trace of the same length.
    pre_step = Trace.generate_at_load(app, 0.3, num_requests, seed)
    static = StaticOracle()
    static.tune(pre_step, context)
    static_run = run_trace(trace, static, context)

    rubik = Rubik()
    # Fig. 1b plots Rubik's frequency trace, so opt into history.
    rubik_run = run_trace(trace, rubik, context, record_freq_history=True)

    def tail_series(run) -> Tuple[np.ndarray, np.ndarray]:
        finish = np.array([r.finish_time for r in run.requests])
        lats = np.array([r.response_time for r in run.requests])
        keep = finish <= total_time_s
        return windowed_series(finish[keep], lats[keep],
                               window_s=0.2, step_s=0.05)

    st, sv = tail_series(static_run)
    rt, rv = tail_series(rubik_run)
    freq_t = np.array([t for t, _ in rubik_run.freq_history])
    freq_f = np.array([f for _, f in rubik_run.freq_history])
    keep = freq_t <= total_time_s
    return Fig1bResult(
        window_times=st,
        static_tail_ms=sv * 1e3,
        rubik_window_times=rt,
        rubik_tail_ms=rv * 1e3,
        freq_times=freq_t[keep],
        freq_ghz=freq_f[keep] / 1e9,
        bound_ms=context.latency_bound_s * 1e3,
    )


def _fig1b_cell(args) -> Fig1bResult:
    """Fig. 1b as a single cell (module-level, picklable result)."""
    num_requests, seed = args
    return run_fig1b(num_requests, seed)


def main(num_requests: Optional[int] = None) -> str:
    """Run both panels and return the formatted report."""
    fig1b_requests = num_requests or CONFIG.extra("fig1b_requests")
    (fig1b,) = run_cells("fig01", _fig1b_cell, [(fig1b_requests, 21)])
    parts = [run_fig1a(num_requests).table(), fig1b.table()]
    report = "\n\n".join(parts)
    print(report)
    return report


if __name__ == "__main__":
    main()

"""Fig. 16 — datacenter power and server count vs LC load (paper
Sec. 7.2).

A RubikColoc-colocated datacenter vs the segregated baseline, sweeping LC
load 10%..60%. Both values are normalized to the segregated datacenter at
60% load, as in the paper.

Expected shape: colocation saves power and servers at every load, with
the advantage growing as LC load falls (paper: at 10% load, 31% less
power and 41% fewer servers than the segregated datacenter at the same
load).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.coloc.datacenter import (
    DatacenterComparison,
    compare_datacenters,
    datacenter_defaults,
)
from repro.experiments.common import run_cells
from repro.experiments.configs import CONFIGS

CONFIG = CONFIGS["fig16"]
LC_LOADS = CONFIG.loads


@dataclasses.dataclass
class Fig16Result:
    """Normalized power/server curves for both datacenters."""

    loads: Tuple[float, ...]
    comparisons: List[DatacenterComparison]

    def _norm(self) -> Tuple[float, float]:
        # Segregated datacenter at the *highest* load is the paper's
        # normalization reference. Locate it by value: with a subset or
        # unsorted ``loads`` argument, comparisons[-1] is not the
        # highest-load point and would silently mis-normalize every
        # column (the Fig6Result bug class).
        ref = self.comparisons[self.loads.index(max(self.loads))].segregated
        return ref.total_power_w, ref.total_servers

    def table(self) -> str:
        ref_power, ref_servers = self._norm()
        rows = []
        for load, comp in zip(self.loads, self.comparisons):
            rows.append((
                f"{load:.0%}",
                comp.segregated.total_power_w / ref_power,
                comp.colocated.total_power_w / ref_power,
                comp.segregated.total_servers / ref_servers,
                comp.colocated.total_servers / ref_servers,
                comp.power_reduction * 100,
                comp.server_reduction * 100,
            ))
        return render_table(
            ("LC load", "Seg power", "Coloc power", "Seg servers",
             "Coloc servers", "Power red. %", "Server red. %"),
            rows, float_fmt=".2f",
            title="Fig. 16: datacenter power & servers "
                  "(normalized to segregated @60%)")


def _fig16_point(args: Tuple[float, int, int, int]) -> DatacenterComparison:
    """One LC-load point (module-level for the parallel executor)."""
    load, seed, num_mixes, requests_per_core = args
    return compare_datacenters(load, seed=seed, num_mixes=num_mixes,
                               requests_per_core=requests_per_core)


def run_fig16(
    loads: Sequence[float] = LC_LOADS,
    num_mixes: Optional[int] = None,
    requests_per_core: Optional[int] = None,
    seed: int = 21,
    processes: Optional[int] = None,
) -> Fig16Result:
    """Sweep LC load and compare datacenters at each point.

    Load points fan out over the parallel sweep executor (serial
    fallback on one CPU; identical results either way), reusing the
    shared worker pool when one is active (regenerate-all CLI).
    ``num_mixes``/``requests_per_core`` default from ``CONFIGS["fig16"]``
    via :func:`repro.coloc.datacenter.datacenter_defaults`, the same
    source :func:`~repro.coloc.datacenter.compare_datacenters` resolves
    its defaults from — driver cells and direct library calls agree.
    """
    num_mixes, requests_per_core = datacenter_defaults(
        num_mixes, requests_per_core)
    comparisons = run_cells(
        "fig16", _fig16_point,
        [(load, seed, num_mixes, requests_per_core) for load in loads],
        processes=processes,
    )
    return Fig16Result(tuple(loads), comparisons)


def main(num_mixes: Optional[int] = None,
         requests_per_core: Optional[int] = None) -> str:
    report = run_fig16(num_mixes=num_mixes,
                       requests_per_core=requests_per_core).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

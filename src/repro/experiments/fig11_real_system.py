"""Fig. 11 — real-system evaluation (paper Sec. 5.5).

The paper runs Rubik on a 4-core Haswell with FIVR and finds ~130 us
DVFS transition latencies (vs. the 4 us modeled in simulation) and a
larger per-app LLC share (the full 8 MB), which makes apps more
compute-bound with more variable service times. We reproduce the setup
as a configuration variant:

* DVFS transition latency 130 us,
* single core,
* "real-system" app variants: memory fraction halved, service CV +15%.

Expected shape: Rubik still meets the bound everywhere; for short-request
masstree the DVFS lag erodes Rubik's edge as load grows (Rubik ==
StaticOracle at 50%); for long-request moses Rubik keeps a wide edge.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.config import NOMINAL_FREQUENCY_HZ, real_system_dvfs
from repro.core.controller import Rubik
from repro.experiments.common import run_cells
from repro.experiments.configs import CONFIGS
from repro.schemes.base import SchemeContext
from repro.schemes.replay import replay
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS
from repro.workloads.base import AppProfile

CONFIG = CONFIGS["fig11"]
LOADS = CONFIG.loads
REAL_SYSTEM_APPS = CONFIG.apps


def real_system_variant(app: AppProfile) -> AppProfile:
    """App profile on the real system (full LLC: more compute-bound,
    more variable service times, Sec. 5.5)."""
    return dataclasses.replace(
        app,
        name=f"{app.name}-real",
        mem_fraction=app.mem_fraction * 0.5,
        service_cv=app.service_cv * 1.15,
    )


@dataclasses.dataclass
class Fig11Result:
    """Power savings on the real-system configuration."""

    loads: Tuple[float, ...]
    savings: Dict[str, Dict[float, Dict[str, float]]]
    rubik_meets_bound: bool

    def table(self) -> str:
        rows = []
        for app, per_load in self.savings.items():
            for load in self.loads:
                cell = per_load[load]
                rows.append([app, f"{load:.0%}",
                             cell["StaticOracle"] * 100,
                             cell["Rubik"] * 100])
        return render_table(
            ("App", "Load", "StaticOracle %", "Rubik %"), rows,
            float_fmt=".1f",
            title="Fig. 11: real-system core power savings "
                  f"(130us DVFS lag; Rubik meets bound: "
                  f"{self.rubik_meets_bound})")


def _fig11_app_point(args):
    """One real-system app (all loads) — module-level, picklable."""
    name, num_requests, seed = args
    dvfs = real_system_dvfs()
    app = real_system_variant(APPS[name])
    bound_trace = Trace.generate_at_load(app, 0.5, num_requests, seed)
    bound = replay(bound_trace, NOMINAL_FREQUENCY_HZ).tail_latency()
    context = SchemeContext(latency_bound_s=bound, dvfs=dvfs, app=app)
    per_load: Dict[float, Dict[str, float]] = {}
    meets = True
    for load in LOADS:
        trace = Trace.generate_at_load(app, load, num_requests, seed)
        base = replay(trace, NOMINAL_FREQUENCY_HZ).mean_core_power_w
        static_res = StaticOracle().evaluate(trace, context)
        rubik_run = run_trace(trace, Rubik(), context)
        if rubik_run.violation_rate(bound) > 0.07:
            meets = False
        per_load[load] = {
            "StaticOracle": 1.0 - static_res.mean_core_power_w / base,
            "Rubik": 1.0 - rubik_run.mean_core_power_w / base,
        }
    return per_load, meets


def run_fig11(num_requests: Optional[int] = None, seed: int = 21,
              processes: Optional[int] = None) -> Fig11Result:
    """Real-system comparison for masstree and moses (one parallel
    point per app; identical to the serial per-app loop)."""
    rows = run_cells(
        "fig11", _fig11_app_point,
        [(name, num_requests, seed) for name in REAL_SYSTEM_APPS],
        processes=processes)
    savings = {name: row[0]
               for name, row in zip(REAL_SYSTEM_APPS, rows)}
    meets = all(row[1] for row in rows)
    return Fig11Result(LOADS, savings, meets)


def main(num_requests: Optional[int] = None) -> str:
    report = run_fig11(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

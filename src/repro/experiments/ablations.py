"""Ablations of Rubik's design choices (DESIGN.md knobs).

Not a paper figure — these quantify the load-bearing pieces of Rubik's
design on a common workload point (masstree @40% load):

* **feedback** — PI trimmer on vs off (paper Fig. 9 evaluates both).
* **table rows** — octile conditioning rows (paper) vs quartiles vs a
  single unconditioned row.
* **CLT threshold** — 16 explicit convolution columns (paper) vs 4.
* **update period** — 100 ms table refresh (paper) vs 1 s.
* **Pegasus** — feedback-only control, bounding what coarse feedback
  alone achieves (its savings should not exceed StaticOracle's).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.core.controller import Rubik
from repro.experiments.common import make_context
from repro.schemes.pegasus import Pegasus
from repro.schemes.replay import replay
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE

LOAD = 0.4


@dataclasses.dataclass
class AblationResult:
    """Per-variant (power savings, tail/bound, violation rate)."""

    rows: Dict[str, Dict[str, float]]
    bound_ms: float

    def table(self) -> str:
        table_rows = [
            (name, vals["savings"] * 100, vals["tail_ratio"],
             vals["violations"] * 100)
            for name, vals in self.rows.items()
        ]
        return render_table(
            ("Variant", "Savings %", "Tail/Bound", "Viol %"),
            table_rows, float_fmt=".2f",
            title=f"Rubik ablations (masstree @{LOAD:.0%}, "
                  f"bound={self.bound_ms:.3f} ms)")


def run_ablations(num_requests: Optional[int] = None,
                  seed: int = 21) -> AblationResult:
    """Run every ablation variant on the same trace."""
    app = MASSTREE
    context = make_context(app, seed, num_requests)
    trace = Trace.generate_at_load(app, LOAD, num_requests, seed)
    base_power = replay(trace, NOMINAL_FREQUENCY_HZ).mean_core_power_w
    bound = context.latency_bound_s

    variants = {
        "Rubik (paper config)": Rubik(),
        "no feedback": Rubik(feedback=False),
        "quartile rows": Rubik(num_rows=4),
        "single row (no conditioning)": Rubik(num_rows=1),
        "CLT after 4 columns": Rubik(max_explicit=4),
        "1 s table refresh": Rubik(update_period_s=1.0),
        "Pegasus (feedback only)": Pegasus(),
    }
    static = StaticOracle()
    static_rep = static.evaluate(trace, context)

    rows: Dict[str, Dict[str, float]] = {}
    for name, scheme in variants.items():
        run = run_trace(trace, scheme, context)
        rows[name] = {
            "savings": 1.0 - run.mean_core_power_w / base_power,
            "tail_ratio": run.tail_latency() / bound,
            "violations": run.violation_rate(bound),
        }
    rows["StaticOracle (reference)"] = {
        "savings": 1.0 - static_rep.mean_core_power_w / base_power,
        "tail_ratio": static_rep.tail_latency() / bound,
        "violations": static_rep.violation_rate(bound),
    }
    return AblationResult(rows, bound * 1e3)


def main(num_requests: Optional[int] = None) -> str:
    report = run_ablations(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

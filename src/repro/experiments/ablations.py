"""Ablations of Rubik's design choices (DESIGN.md knobs).

Not a paper figure — these quantify the load-bearing pieces of Rubik's
design on a common workload point (masstree @40% load):

* **feedback** — PI trimmer on vs off (paper Fig. 9 evaluates both).
* **table rows** — octile conditioning rows (paper) vs quartiles vs a
  single unconditioned row.
* **CLT threshold** — 16 explicit convolution columns (paper) vs 4.
* **update period** — 100 ms table refresh (paper) vs 1 s.
* **Pegasus** — feedback-only control, bounding what coarse feedback
  alone achieves (its savings should not exceed StaticOracle's).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.tables import render_table
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.core.controller import Rubik
from repro.experiments.common import latency_bound, make_context, run_cells
from repro.experiments.configs import CONFIGS
from repro.schemes.base import Scheme
from repro.schemes.pegasus import Pegasus
from repro.schemes.replay import replay
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE

CONFIG = CONFIGS["ablations"]
LOAD = CONFIG.extra("load")

#: Variant name -> controller factory (fresh instance per run; built
#: inside the worker so only the name crosses the process boundary).
VARIANTS: Dict[str, Callable[[], Scheme]] = {
    "Rubik (paper config)": Rubik,
    "no feedback": lambda: Rubik(feedback=False),
    "quartile rows": lambda: Rubik(num_rows=4),
    "single row (no conditioning)": lambda: Rubik(num_rows=1),
    "CLT after 4 columns": lambda: Rubik(max_explicit=4),
    "1 s table refresh": lambda: Rubik(update_period_s=1.0),
    "Pegasus (feedback only)": Pegasus,
}

#: Pseudo-variants handled specially by the point worker.
_BASELINE = "__fixed_baseline__"
_STATIC_REF = "StaticOracle (reference)"


@dataclasses.dataclass
class AblationResult:
    """Per-variant (power savings, tail/bound, violation rate)."""

    rows: Dict[str, Dict[str, float]]
    bound_ms: float

    def table(self) -> str:
        table_rows = [
            (name, vals["savings"] * 100, vals["tail_ratio"],
             vals["violations"] * 100)
            for name, vals in self.rows.items()
        ]
        return render_table(
            ("Variant", "Savings %", "Tail/Bound", "Viol %"),
            table_rows, float_fmt=".2f",
            title=f"Rubik ablations (masstree @{LOAD:.0%}, "
                  f"bound={self.bound_ms:.3f} ms)")


def _ablation_point(args: Tuple[str, Optional[int], int]
                    ) -> Tuple[float, float, float]:
    """One variant run: (mean power, tail/bound, violation rate).

    Module-level for the parallel sweep executor. The trace and the
    (memoized) latency bound are re-derived in-process from the seed, so
    only ``(name, num_requests, seed)`` crosses the pipe; every variant
    replays the identical trace, exactly as the old serial loop did.
    """
    name, num_requests, seed = args
    app = MASSTREE
    context = make_context(app, seed, num_requests)
    bound = context.latency_bound_s
    trace = Trace.generate_at_load(app, LOAD, num_requests, seed)
    if name == _BASELINE:
        power = replay(trace, NOMINAL_FREQUENCY_HZ).mean_core_power_w
        return (power, 0.0, 0.0)
    if name == _STATIC_REF:
        result = StaticOracle().evaluate(trace, context)
    else:
        result = run_trace(trace, VARIANTS[name](), context)
    return (result.mean_core_power_w, result.tail_latency() / bound,
            result.violation_rate(bound))


def run_ablations(num_requests: Optional[int] = None,
                  seed: int = 21,
                  processes: Optional[int] = None) -> AblationResult:
    """Run every ablation variant on the same trace.

    Variants are independent runs over the identical trace, so they
    flatten into one parallel sweep (the fixed-frequency baseline is one
    more point); savings are computed from the returned mean powers with
    the same float arithmetic as the old serial loop.
    """
    names = [_BASELINE] + list(VARIANTS) + [_STATIC_REF]
    results = run_cells(
        "ablations", _ablation_point,
        [(name, num_requests, seed) for name in names],
        processes=processes,
    )
    base_power = results[0][0]
    rows: Dict[str, Dict[str, float]] = {}
    for name, (power, tail_ratio, violations) in zip(names[1:], results[1:]):
        rows[name] = {
            "savings": 1.0 - power / base_power,
            "tail_ratio": tail_ratio,
            "violations": violations,
        }
    bound = latency_bound(MASSTREE, seed, num_requests)
    return AblationResult(rows, bound * 1e3)


def main(num_requests: Optional[int] = None) -> str:
    report = run_ablations(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

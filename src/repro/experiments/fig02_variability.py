"""Fig. 2 — short-term variability analysis of LC workloads (paper Sec. 3).

(a) CDF of instantaneous QPS over rolling 5 ms windows, per app.
(b) masstree execution trace: QPS, service times, queue lengths, and
    response times over time.
(c) Normalized tail latency (tail / 95th-pct service time) vs load.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import empirical_cdf
from repro.analysis.tables import render_series, render_table
from repro.analysis.windows import instantaneous_qps, windowed_series
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.experiments.common import run_cells
from repro.experiments.configs import CONFIGS
from repro.schemes.replay import lindley_finish_times, replay
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["fig02"]
DEFAULT_LOAD = CONFIG.extra("default_load")
LOAD_SWEEP = CONFIG.loads


@dataclasses.dataclass
class Fig2aResult:
    """Normalized instantaneous-QPS CDF quantiles per app."""

    quantiles: Tuple[float, ...]
    per_app: Dict[str, List[float]]

    def table(self) -> str:
        rows = [
            [name] + vals for name, vals in self.per_app.items()
        ]
        headers = ["App"] + [f"p{int(q)}" for q in self.quantiles]
        return render_table(
            headers, rows, float_fmt=".2f",
            title="Fig. 2a: normalized instantaneous QPS "
                  "(5 ms windows; quantiles of CDF)")


def _fig2a_point(args) -> List[float]:
    """One app of Fig. 2a (module-level for the parallel executor)."""
    name, load, num_requests, seed, quantiles = args
    app = APPS[name]
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    qps = instantaneous_qps(trace.arrivals, window_s=5e-3)
    mean_rate = len(trace) / trace.duration()
    normalized = qps / mean_rate
    return [float(np.percentile(normalized, q)) for q in quantiles]


def run_fig2a(num_requests: Optional[int] = None, seed: int = 21,
              load: float = DEFAULT_LOAD,
              quantiles: Tuple[float, ...] = (10, 50, 90, 99),
              processes: Optional[int] = None,
              ) -> Fig2aResult:
    """Instantaneous-load CDFs (Fig. 2a), one parallel point per app."""
    names = app_names()
    rows = run_cells(
        "fig02", _fig2a_point,
        [(name, load, num_requests, seed, tuple(quantiles))
         for name in names],
        processes=processes)
    return Fig2aResult(quantiles, dict(zip(names, rows)))


@dataclasses.dataclass
class Fig2bResult:
    """masstree execution-trace series (1-per-window reductions)."""

    times: np.ndarray
    qps: np.ndarray
    service_ms: np.ndarray
    queue_len: np.ndarray
    response_ms: np.ndarray

    def table(self) -> str:
        lines = ["Fig. 2b: masstree execution trace (250 ms windows)"]
        lines.append(render_series("QPS", self.times, self.qps))
        lines.append(render_series("mean service (ms)", self.times,
                                   self.service_ms))
        lines.append(render_series("mean queue len", self.times,
                                   self.queue_len))
        lines.append(render_series("p95 response (ms)", self.times,
                                   self.response_ms))
        return "\n".join(lines)


def run_fig2b(num_requests: Optional[int] = None, seed: int = 21,
              load: float = DEFAULT_LOAD,
              window_s: float = 0.25) -> Fig2bResult:
    """masstree trace panels (Fig. 2b), from a nominal-frequency replay."""
    app = APPS["masstree"]
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    rep = replay(trace, NOMINAL_FREQUENCY_HZ)
    queue = queue_length_at_arrivals(trace.arrivals, rep.response_times)

    t_qps, qps = windowed_series(
        trace.arrivals, np.ones(len(trace)), window_s,
        reducer=lambda chunk: len(chunk) / window_s)
    t_svc, svc = windowed_series(
        trace.arrivals, rep.service_times, window_s, reducer=np.mean)
    t_q, q = windowed_series(
        trace.arrivals, queue.astype(float), window_s, reducer=np.mean)
    t_resp, resp = windowed_series(
        trace.arrivals, rep.response_times, window_s)
    # All series share window boundaries because they share timestamps.
    return Fig2bResult(times=t_qps, qps=qps, service_ms=svc * 1e3,
                       queue_len=q, response_ms=resp * 1e3)


def queue_length_at_arrivals(arrivals: np.ndarray,
                             response_times: np.ndarray) -> np.ndarray:
    """Number of requests in the system seen by each arrival (FIFO)."""
    finish = arrivals + response_times
    n = len(arrivals)
    queue = np.empty(n, dtype=int)
    for i in range(n):
        # Requests ahead that have not finished by this arrival. FIFO
        # finish times are nondecreasing, so search the prefix.
        lo = np.searchsorted(finish[:i], arrivals[i], side="right")
        queue[i] = i - lo
    return queue


@dataclasses.dataclass
class Fig2cResult:
    """Normalized tail latency vs load, per app."""

    loads: Tuple[float, ...]
    per_app: Dict[str, List[float]]

    def table(self) -> str:
        headers = ["App"] + [f"{ld:.0%}" for ld in self.loads]
        rows = [[name] + vals for name, vals in self.per_app.items()]
        return render_table(
            headers, rows, float_fmt=".2f",
            title="Fig. 2c: tail latency normalized to 95th-pct service "
                  "time, vs load")


def _fig2c_point(args) -> float:
    """One (app, load) cell of Fig. 2c (module-level, picklable)."""
    name, load, num_requests, seed = args
    trace = Trace.generate_at_load(APPS[name], load, num_requests, seed)
    rep = replay(trace, NOMINAL_FREQUENCY_HZ)
    svc95 = float(np.percentile(rep.service_times, 95))
    return rep.tail_latency() / svc95


def run_fig2c(num_requests: Optional[int] = None, seed: int = 21,
              loads: Tuple[float, ...] = LOAD_SWEEP,
              processes: Optional[int] = None) -> Fig2cResult:
    """Normalized tail latency vs load (Fig. 2c).

    The app x load matrix flattens into independent points over the
    parallel executor, regrouped per app in load order (identical to
    the old nested serial loops).
    """
    names = app_names()
    flat = iter(run_cells(
        "fig02", _fig2c_point,
        [(name, load, num_requests, seed)
         for name in names for load in loads],
        processes=processes))
    per_app = {name: [next(flat) for _ in loads] for name in names}
    return Fig2cResult(loads, per_app)


def _fig2b_cell(args) -> Fig2bResult:
    """Fig. 2b as a single cell (module-level, picklable result)."""
    num_requests, seed = args
    return run_fig2b(num_requests, seed)


def main(num_requests: Optional[int] = None) -> str:
    (fig2b,) = run_cells("fig02", _fig2b_cell, [(num_requests, 21)])
    parts = [
        run_fig2a(num_requests).table(),
        fig2b.table(),
        run_fig2c(num_requests).table(),
    ]
    report = "\n\n".join(parts)
    print(report)
    return report


if __name__ == "__main__":
    main()

"""Content-addressed experiment artifact store (perf layer 8; see
docs/performance.md).

Every experiment driver's unit of work is a **cell**: one picklable
point dispatched through :func:`repro.experiments.common.run_cells`
(an ``(app, load, seed)`` tuple of Fig. 6, one colocation pair of
Fig. 15, one ablation variant ...). A cell's result is a pure function
of its declarative inputs, so it can be persisted once and replayed
forever — the ``snapshot_fingerprint`` idiom of
:mod:`repro.core.table_cache`, lifted from tail tables to whole
experiment cells and from process memory to disk.

The store maps a **cell fingerprint** — a SHA-256 over the canonical
encoding of ``(schema version, driver name, driver version tag, worker
function reference, default kernel path, cell args)`` — to a pickle on
disk under one directory per driver::

    .repro-artifacts/<driver>/<fingerprint>.pkl

Each artifact file holds two consecutive pickles: a small metadata
header (driver, version, function reference, creation time) and the
cell's value, so the manifest can be indexed without loading payloads.
Writes go through a temp file + :func:`os.replace`, so concurrent
writers of the same cell race benignly (last atomic rename wins; a
reader never observes a partial file). Corrupted or truncated artifacts
warn once per file, are deleted, and fall back to recompute.

Activation is explicit: :func:`active_store` returns ``None`` (cells
compute directly) unless a store was activated via :func:`activate` —
the regenerate CLI does this by default — or ``REPRO_ARTIFACT_CACHE=1``
forces the default store on. Environment gates follow the
``REPRO_MAX_WORKERS``/``REPRO_NATIVE`` validation idiom (invalid values
warn once per distinct value and read as unset):

* ``REPRO_ARTIFACT_CACHE`` — ``"1"`` force-enable (even without an
  activation), ``"0"`` force-disable (even under the CLI), ``"auto"`` /
  unset — active only inside an :func:`activate` context.
* ``REPRO_ARTIFACT_DIR`` — store root (default ``.repro-artifacts``);
  an empty/whitespace value warns once and reads as unset.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import itertools
import os
import pickle
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro import config
from repro.resilience import faults

#: Environment variable naming the store root directory.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Environment tri-state gating the cache ("1"/"0"/"auto").
ARTIFACT_CACHE_ENV = "REPRO_ARTIFACT_CACHE"

#: Default store root, relative to the working directory.
DEFAULT_ARTIFACT_DIR = ".repro-artifacts"

#: Bumping this invalidates every artifact ever written (fingerprints
#: include it): raise on any change to the canonical encoding or the
#: on-disk layout.
STORE_SCHEMA_VERSION = 1

#: A ``.*.tmp`` staging file this old at store open is an orphan — its
#: writer died between tmp-write and the atomic ``os.replace`` — and is
#: swept. Generous relative to any real write (a cell pickle lands in
#: milliseconds), so a concurrent writer's live tmp is never touched.
STALE_TMP_AGE_S = 60.0

#: Invalid env values already warned about ((var, raw) — once each).
_warned_env_values: Set[Tuple[str, str]] = set()

#: Artifact files already warned about as corrupt (once per path).
_warned_corrupt_paths: Set[str] = set()

#: Innermost activated store (set by :func:`activate`).
_active_store: Optional["ArtifactStore"] = None

#: Memoized default stores, keyed by resolved root path — stats
#: accumulate per process per root.
_default_stores: Dict[Path, "ArtifactStore"] = {}

#: Unique suffixes for temp files (atomic-rename staging).
_tmp_counter = itertools.count()


def cache_mode() -> str:
    """The validated ``REPRO_ARTIFACT_CACHE`` mode: ``"1"``, ``"0"`` or
    ``"auto"``.

    Invalid values (``""``, ``"-3"``, ``"abc"``) warn once per distinct
    raw value (registry owned here, reset by the test fixtures) and
    read as unset (``"auto"``), via the shared gate helper in
    :mod:`repro.config`.
    """
    return config.env_tristate(ARTIFACT_CACHE_ENV, _warned_env_values)


def artifact_dir() -> Path:
    """The validated store root from ``REPRO_ARTIFACT_DIR``.

    An empty or whitespace-only value warns once and falls back to the
    default; any other string is a legitimate directory name (``"abc"``
    and ``"-3"`` are valid paths, unlike the integer envs).
    """
    return config.env_path(ARTIFACT_DIR_ENV, DEFAULT_ARTIFACT_DIR,
                           _warned_env_values)


def _function_ref(fn: Callable) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def default_kernel_tag() -> str:
    """The decision path a default ``Rubik()`` dispatches to.

    All four decision paths are pinned bitwise-identical, so this knob
    can never change a cell's *value* — but it is a code-relevant input
    (the code that actually ran), so it joins the fingerprint: a store
    filled under one kernel path never silently vouches for another.
    """
    from repro.core._native import build as native_build
    return "native" if native_build.available() else "kernel"


def canonical(obj: Any) -> Any:
    """A hashable, repr-stable canonical form of a cell argument tree.

    Handles the types experiment cells are declared with: primitives
    (floats via ``float.hex`` — exact, no repr rounding), tuples/lists,
    dicts, numpy scalars/arrays (dtype + shape + raw bytes), frozen
    dataclasses (``AppProfile``, ``SchemeContext``, ``BatchMix`` ...)
    by field recursion, and function references. Anything else raises:
    a silently mis-canonicalized argument would alias distinct cells,
    and the store must never serve the wrong artifact.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return (type(obj).__name__, obj)
    if isinstance(obj, float):
        return ("float", obj.hex())
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.dtype.str, obj.shape,
                np.ascontiguousarray(obj).tobytes())
    if isinstance(obj, (tuple, list)):
        return (type(obj).__name__, tuple(canonical(x) for x in obj))
    if isinstance(obj, dict):
        return ("dict", tuple(sorted(
            (canonical(k), canonical(v)) for k, v in obj.items())))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = tuple((f.name, canonical(getattr(obj, f.name)))
                       for f in dataclasses.fields(obj))
        return (f"{cls.__module__}.{cls.__qualname__}", fields)
    if callable(obj):
        return ("callable", _function_ref(obj))
    raise TypeError(
        f"cannot fingerprint cell argument of type {type(obj)!r}: {obj!r}; "
        "declare cells with primitives, numpy arrays, or dataclasses")


def cell_fingerprint(driver: str, version: str, fn: Callable,
                     args: Any) -> str:
    """SHA-256 hex digest identifying one cell's declarative inputs."""
    payload = (
        ("schema", STORE_SCHEMA_VERSION),
        ("driver", driver),
        ("version", version),
        ("fn", _function_ref(fn)),
        ("kernel", default_kernel_tag()),
        ("args", canonical(args)),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class ArtifactStore:
    """Disk-backed content-addressed store of experiment cell results.

    One subdirectory per driver; one ``<fingerprint>.pkl`` per cell.
    Counters (``hits``/``misses``/``puts``/``errors``, plus the same
    per driver) describe this process's traffic through this store
    object — the acceptance guards ("a warm run recomputes zero cells",
    "a version bump recomputes exactly one driver") are written against
    them.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else artifact_dir()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0
        self.stale_tmps_removed = 0
        self.per_driver: Dict[str, Dict[str, int]] = {}
        self._sweep_stale_tmps()

    def _sweep_stale_tmps(self) -> None:
        """Remove orphaned ``.*.tmp`` staging files at store open.

        A writer killed between tmp-write and ``os.replace`` leaks its
        temp file forever (the in-process cleanup only covers raising
        paths, not SIGKILL). Files older than :data:`STALE_TMP_AGE_S`
        cannot belong to a live writer, so they are deleted — one
        summary warning, counted in :meth:`stats`.
        """
        if not self.root.is_dir():
            return
        # repro-lint: allow(determinism) -- tmp-age housekeeping only
        cutoff = time.time() - STALE_TMP_AGE_S
        removed = 0
        for tmp in sorted(self.root.glob("*/.*.tmp")):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # raced with a concurrent sweep/writer
        if removed:
            self.stale_tmps_removed += removed
            warnings.warn(
                f"swept {removed} orphaned artifact tmp file(s) "
                f"under {self.root}", RuntimeWarning, stacklevel=3)

    # -- paths -----------------------------------------------------------

    def _driver_dir(self, driver: str) -> Path:
        return self.root / driver

    def path_for(self, driver: str, fingerprint: str) -> Path:
        return self._driver_dir(driver) / f"{fingerprint}.pkl"

    # -- counters --------------------------------------------------------

    def _count(self, driver: str, field: str) -> None:
        setattr(self, field, getattr(self, field) + 1)
        row = self.per_driver.setdefault(
            driver, {"hits": 0, "misses": 0, "puts": 0, "errors": 0})
        row[field] += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "stale_tmps_removed": self.stale_tmps_removed,
            "per_driver": {d: dict(row)
                           for d, row in self.per_driver.items()},
        }

    def reset_stats(self) -> None:
        self.hits = self.misses = self.puts = self.errors = 0
        self.per_driver.clear()

    # -- get / put -------------------------------------------------------

    def get(self, driver: str, fingerprint: str) -> Tuple[bool, Any]:
        """``(found, value)`` for one cell; corrupt artifacts warn once
        per file, are deleted, and read as a miss."""
        path = self.path_for(driver, fingerprint)
        try:
            with open(path, "rb") as fh:
                # Injected corrupt read: InjectedFault lands in the
                # same warn-once discard-and-recompute branch a truly
                # torn file would (only consulted for files that exist).
                faults.maybe_inject("artifact.corrupt_read")
                pickle.load(fh)          # metadata header
                value = pickle.load(fh)  # payload
        except FileNotFoundError:
            self._count(driver, "misses")
            return False, None
        except Exception as exc:
            self._count(driver, "errors")
            self._count(driver, "misses")
            key = str(path)
            if key not in _warned_corrupt_paths:
                _warned_corrupt_paths.add(key)
                warnings.warn(
                    f"discarding corrupt artifact {path} "
                    f"({type(exc).__name__}: {exc}); recomputing",
                    RuntimeWarning, stacklevel=3)
            with contextlib.suppress(OSError):
                path.unlink()
            return False, None
        self._count(driver, "hits")
        return True, value

    def put(self, driver: str, fingerprint: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> Path:
        """Persist one cell atomically (temp file + ``os.replace``).

        Concurrent writers of the same fingerprint write identical
        content (the value is a pure function of the fingerprinted
        inputs), so whichever rename lands last is indistinguishable
        from the first — readers never see a torn file.
        """
        path = self.path_for(driver, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"driver": driver, "fingerprint": fingerprint,
                  "schema": STORE_SCHEMA_VERSION,
                  # repro-lint: allow(determinism) -- header metadata only
                  "created": time.time()}
        if meta:
            header.update(meta)
        tmp = path.parent / (
            f".{fingerprint}.{os.getpid()}.{next(_tmp_counter)}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(header, fh, protocol=pickle.HIGHEST_PROTOCOL)
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                tmp.unlink()
            raise
        self._count(driver, "puts")
        return path

    # -- manifest / invalidation ----------------------------------------

    def _artifact_paths(self, driver: Optional[str] = None) -> List[Path]:
        if driver is not None:
            dirs = [self._driver_dir(driver)]
        elif self.root.is_dir():
            dirs = sorted(p for p in self.root.iterdir() if p.is_dir())
        else:
            dirs = []
        out: List[Path] = []
        for d in dirs:
            if d.is_dir():
                out.extend(sorted(d.glob("*.pkl")))
        return out

    def cached_cells(self, driver: Optional[str] = None) -> int:
        """How many cell artifacts are on disk (for one driver or all)."""
        return len(self._artifact_paths(driver))

    def manifest(self) -> List[Dict[str, Any]]:
        """Metadata headers of every artifact, without loading payloads
        (each file's header is its first pickle; unreadable files are
        listed with an ``error`` field rather than skipped silently)."""
        entries: List[Dict[str, Any]] = []
        for path in self._artifact_paths():
            try:
                with open(path, "rb") as fh:
                    header = dict(pickle.load(fh))
            except Exception as exc:
                header = {"error": f"{type(exc).__name__}: {exc}"}
            header["path"] = str(path)
            entries.append(header)
        return entries

    def invalidate(self, driver: str) -> int:
        """Delete exactly the named driver's artifacts; returns count."""
        removed = 0
        for path in self._artifact_paths(driver):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        with contextlib.suppress(OSError):
            self._driver_dir(driver).rmdir()
        return removed


def default_store() -> ArtifactStore:
    """The process-wide store at the env-resolved root (memoized per
    root, so counters accumulate across calls)."""
    root = artifact_dir()
    store = _default_stores.get(root)
    if store is None:
        store = ArtifactStore(root)
        _default_stores[root] = store
    return store


@contextlib.contextmanager
def activate(store: Optional[ArtifactStore] = None) -> Iterator[ArtifactStore]:
    """Make ``store`` (default: the env-resolved one) the active store
    for the duration of the block."""
    global _active_store
    if store is None:
        store = default_store()
    outer = _active_store
    _active_store = store
    try:
        yield store
    finally:
        _active_store = outer


def active_store() -> Optional[ArtifactStore]:
    """The store :func:`~repro.experiments.common.run_cells` consults,
    or ``None`` (compute directly).

    ``REPRO_ARTIFACT_CACHE=0`` beats everything (even an activation);
    ``1`` force-enables the default store with or without one; ``auto``
    (the default) defers to :func:`activate`.
    """
    mode = cache_mode()
    if mode == "0":
        return None
    if _active_store is not None:
        return _active_store
    if mode == "1":
        return default_store()
    return None

"""Fig. 12 — full-system power savings at 30% load (paper Sec. 6).

Rubik's large core-power savings translate into modest *system* savings
because idle platform power (uncore, DRAM, PSU, disks) dominates at low
load — the motivation for RubikColoc. Server power is modeled as 6 cores
(per-core power from simulation) plus the platform model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.analysis.tables import render_table
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.core.controller import Rubik
from repro.experiments.common import make_context, run_cells
from repro.experiments.configs import CONFIGS
from repro.power.model import DEFAULT_SYSTEM_POWER, SystemPowerModel
from repro.schemes.replay import replay
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

CONFIG = CONFIGS["fig12"]
LOAD = CONFIG.extra("load")


@dataclasses.dataclass
class Fig12Result:
    """System power savings per app at 30% load."""

    per_app: Dict[str, float]
    core_savings: Dict[str, float]

    def table(self) -> str:
        rows = [
            (name, self.core_savings[name] * 100, self.per_app[name] * 100)
            for name in self.per_app
        ]
        return render_table(
            ("App", "Core savings %", "System savings %"), rows,
            float_fmt=".1f",
            title="Fig. 12: Rubik full-system power savings at 30% load")


def _fig12_point(args):
    """One app of Fig. 12 (module-level for the parallel executor)."""
    name, load, num_requests, seed, system = args
    app = APPS[name]
    context = make_context(app, seed, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    fixed = replay(trace, NOMINAL_FREQUENCY_HZ)
    rubik = run_trace(trace, Rubik(), context)
    # Platform activity (uncore traffic, DRAM accesses) follows the
    # *work rate*, which is the same under both schemes — running the
    # same requests slower does not add memory accesses. Both servers
    # therefore see the platform at the offered load.
    fixed_server = system.server_power(
        fixed.mean_core_power_w, utilization=min(1.0, load))
    rubik_server = system.server_power(
        rubik.mean_core_power_w, utilization=min(1.0, load))
    return (1.0 - rubik_server / fixed_server,
            1.0 - rubik.mean_core_power_w / fixed.mean_core_power_w)


def run_fig12(num_requests: Optional[int] = None, seed: int = 21,
              load: float = LOAD,
              system: SystemPowerModel = DEFAULT_SYSTEM_POWER,
              processes: Optional[int] = None,
              ) -> Fig12Result:
    """System-level savings: Rubik vs fixed-frequency at 30% load (one
    parallel point per app; identical to the serial loop)."""
    names = app_names()
    rows = run_cells(
        "fig12", _fig12_point,
        [(name, load, num_requests, seed, system) for name in names],
        processes=processes)
    return Fig12Result({n: r[0] for n, r in zip(names, rows)},
                       {n: r[1] for n, r in zip(names, rows)})


def main(num_requests: Optional[int] = None) -> str:
    report = run_fig12(num_requests).table()
    print(report)
    return report


if __name__ == "__main__":
    main()

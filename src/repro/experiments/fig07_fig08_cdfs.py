"""Figs. 7 and 8 — response-latency CDFs and frequency histograms for
masstree (Fig. 7) and xapian (Fig. 8) at 50% load (paper Sec. 5.2).

Expected shape: all schemes meet the tail bound; Rubik shifts the *low*
end of the CDF right (short requests are served slowly to save power)
while pinning the tail at the bound, and spends most busy time at low
frequencies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.tables import render_series, render_table
from repro.core.controller import Rubik
from repro.experiments.common import make_context, run_cells, training_traces
from repro.experiments.configs import CONFIGS
from repro.perf import shared_pool
from repro.schemes.adrenaline import AdrenalineOracle
from repro.schemes.static_oracle import StaticOracle
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS

CONFIG = CONFIGS["fig07_08"]
LOAD = CONFIG.extra("load")
CDF_PERCENTILES = (5, 25, 50, 75, 90, 95, 99)


@dataclasses.dataclass
class CdfAndHistResult:
    """One app's latency CDF quantiles per scheme + Rubik's freq histogram."""

    app: str
    bound_ms: float
    cdf_quantiles_ms: Dict[str, List[float]]
    rubik_freq_hist: Dict[float, float]

    def table(self) -> str:
        headers = ["Scheme"] + [f"p{p}" for p in CDF_PERCENTILES]
        rows = [[scheme] + vals
                for scheme, vals in self.cdf_quantiles_ms.items()]
        cdf = render_table(
            headers, rows, float_fmt=".3f",
            title=f"Fig. 7a/8a ({self.app}): response-latency quantiles "
                  f"(ms), bound={self.bound_ms:.3f} ms")
        freqs = sorted(self.rubik_freq_hist)
        hist = render_series(
            f"Fig. 7b/8b ({self.app}): Rubik busy-time fraction vs GHz",
            [f / 1e9 for f in freqs],
            [self.rubik_freq_hist[f] for f in freqs])
        return cdf + "\n" + hist


def run_cdf_experiment(app_name: str, num_requests: Optional[int] = None,
                       seed: int = 21, load: float = LOAD) -> CdfAndHistResult:
    """Latency CDFs for StaticOracle/AdrenalineOracle/Rubik + Rubik's
    frequency histogram, for one app at 50% load."""
    app = APPS[app_name]
    context = make_context(app, seed, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, seed)

    static_res = StaticOracle().evaluate(trace, context)
    tr_traces, tr_bounds = training_traces(app, load, seed, num_requests)
    adren_res = AdrenalineOracle().evaluate(trace, context,
                                            tr_traces, tr_bounds)
    rubik_run = run_trace(trace, Rubik(), context)

    def quantiles(lats: np.ndarray) -> List[float]:
        return [float(np.percentile(lats, p)) * 1e3
                for p in CDF_PERCENTILES]

    return CdfAndHistResult(
        app=app_name,
        bound_ms=context.latency_bound_s * 1e3,
        cdf_quantiles_ms={
            "StaticOracle": quantiles(static_res.response_times),
            "AdrenalineOracle": quantiles(adren_res.response_times),
            "Rubik": quantiles(rubik_run.response_times()),
        },
        rubik_freq_hist=rubik_run.busy_freq_hist,
    )


def run_fig7(num_requests: Optional[int] = None,
             seed: int = 21) -> CdfAndHistResult:
    """Fig. 7: masstree."""
    return run_cdf_experiment("masstree", num_requests, seed)


def run_fig8(num_requests: Optional[int] = None,
             seed: int = 21) -> CdfAndHistResult:
    """Fig. 8: xapian."""
    return run_cdf_experiment("xapian", num_requests, seed)


def _cdf_point(args) -> CdfAndHistResult:
    """One app's CDF experiment (module-level for the parallel executor)."""
    app_name, num_requests, seed = args
    return run_cdf_experiment(app_name, num_requests, seed)


def main(num_requests: Optional[int] = None, seed: int = 21,
         processes: Optional[int] = None) -> str:
    """Figs. 7 and 8, the two apps fanned out over the sweep executor
    (reusing the shared pool when running under the regenerate CLI)."""
    with shared_pool(processes):
        fig7, fig8 = run_cells(
            "fig07_08", _cdf_point,
            [(name, num_requests, seed) for name in CONFIG.apps],
            processes=processes,
        )
    report = "\n\n".join([fig7.table(), fig8.table()])
    print(report)
    return report


if __name__ == "__main__":
    main()

"""The five latency-critical applications (paper Table 3 / Sec. 3).

Calibration anchors (see DESIGN.md Sec. 5):

* **masstree** — high-performance key-value store; very uniform, short
  requests (median service ~240 us on the real system); response latency
  almost entirely queueing-driven (corr 0.94 with queue length).
* **moses** — statistical machine translation; long (~4 ms), fairly
  uniform requests.
* **specjbb** — Java middleware; very short requests with highly variable
  service times (normalized tail is high even at 20% load).
* **shore** — OLTP database (TPC-C); variable service times
  (corr 0.56 with service time).
* **xapian** — web-search leaf node with zipfian query popularity;
  variable, right-skewed service times.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import AppProfile

MASSTREE = AppProfile(
    name="masstree",
    mean_service_s=0.26e-3,
    service_cv=0.15,
    mem_fraction=0.25,
    num_requests=9000,
    workload="mycsb-a (50% GETs/PUTs), 1.1GB table",
    hint_quality=0.9,
)

MOSES = AppProfile(
    name="moses",
    mean_service_s=4.2e-3,
    service_cv=0.22,
    mem_fraction=0.15,
    num_requests=900,
    workload="opensubtitles.org corpora, phrase mode",
    hint_quality=0.9,
)

SPECJBB = AppProfile(
    name="specjbb",
    mean_service_s=0.09e-3,
    service_cv=3.0,
    mem_fraction=0.20,
    num_requests=37500,
    workload="1 warehouse",
    # Service variability is JIT/GC-driven, invisible to request hints.
    hint_quality=0.2,
)

SHORE = AppProfile(
    name="shore",
    mean_service_s=0.42e-3,
    service_cv=0.60,
    mem_fraction=0.30,
    num_requests=7500,
    workload="TPC-C, 10 warehouses",
    # Transaction type hints at cost, but data-dependent work dominates.
    hint_quality=0.3,
    # TPC-C transaction mix: occasional heavyweight transactions.
    long_fraction=0.06,
    long_scale=6.0,
)

XAPIAN = AppProfile(
    name="xapian",
    mean_service_s=0.95e-3,
    service_cv=0.55,
    mem_fraction=0.20,
    num_requests=6000,
    workload="English Wikipedia, zipfian query popularity",
    # Query term count predicts cost only partially.
    hint_quality=0.5,
    # Zipfian query popularity: a minority of queries touch many terms.
    long_fraction=0.06,
    long_scale=5.0,
)

#: All five apps, in the paper's figure order.
APPS: Dict[str, AppProfile] = {
    app.name: app for app in (MASSTREE, MOSES, SHORE, SPECJBB, XAPIAN)
}


def app_names() -> List[str]:
    """Application names in canonical (paper figure) order."""
    return ["masstree", "moses", "shore", "specjbb", "xapian"]


def get_app(name: str) -> AppProfile:
    """Look up an application profile by name."""
    try:
        return APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {sorted(APPS)}") from None

"""Latency-critical application models.

Each application is a parametric service-demand distribution calibrated to
the paper's reported behaviour (DESIGN.md Sec. 5). A request's demand has
two independent lognormal components:

* compute cycles ``C`` (frequency-scalable),
* memory-bound time ``M`` (frequency-invariant),

chosen so that at the nominal frequency the total service time
``C/f_nom + M`` has the target mean and coefficient of variation, and the
memory component contributes ``mem_fraction`` of the mean.

Lognormals capture the right-skewed, strictly positive service times seen
in the paper's applications; the CV knob spans the paper's spectrum from
tightly clustered (masstree, moses) to highly variable (specjbb).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from repro.config import NOMINAL_FREQUENCY_HZ


def lognormal_params(mean: float, cv: float) -> Tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and CV."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


@dataclasses.dataclass(frozen=True)
class AppProfile:
    """A latency-critical application (paper Table 3 + Sec. 3 analysis).

    Attributes:
        name: application name.
        mean_service_s: mean service time at nominal frequency.
        service_cv: coefficient of variation of total service time.
        mem_fraction: fraction of mean service time that is memory-bound.
        num_requests: per-run request count (paper Table 3).
        workload: human-readable workload configuration (paper Table 3).
        long_fraction: fraction of requests drawn from a "long" class
            whose mean demand is ``long_scale`` times the short class's
            (0 disables the mixture). Captures bimodal workloads such as
            specjbb, where rare long requests dominate the response tail.
        long_scale: demand multiplier of the long class.
        hint_quality: how well a request's length can be predicted from
            application-level hints *at arrival*, in [0, 1]. 1 means fully
            predictable (query structure reveals cost, as Adrenaline
            assumes); 0 means unpredictable (e.g. JIT/GC-induced
            variability). The paper notes "not all applications are
            amenable to hints" (Sec. 2.2); this is that knob.
    """

    name: str
    mean_service_s: float
    service_cv: float
    mem_fraction: float
    num_requests: int
    workload: str = ""
    nominal_hz: float = NOMINAL_FREQUENCY_HZ
    long_fraction: float = 0.0
    long_scale: float = 1.0
    hint_quality: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_service_s <= 0:
            raise ValueError("mean service time must be positive")
        if self.service_cv < 0:
            raise ValueError("service CV must be non-negative")
        if not 0.0 <= self.mem_fraction < 1.0:
            raise ValueError("mem_fraction must be in [0, 1)")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if not 0.0 <= self.long_fraction < 1.0:
            raise ValueError("long_fraction must be in [0, 1)")
        if self.long_scale < 1.0:
            raise ValueError("long_scale must be >= 1")
        if not 0.0 <= self.hint_quality <= 1.0:
            raise ValueError("hint_quality must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def saturation_qps(self) -> float:
        """Arrival rate that saturates one core at nominal frequency.

        The paper's "100% load" (Sec. 5.3).
        """
        return 1.0 / self.mean_service_s

    def rate_for_load(self, load: float) -> float:
        """Arrival rate (QPS) for a load fraction of saturation."""
        if load < 0:
            raise ValueError("load must be non-negative")
        return load * self.saturation_qps

    # ------------------------------------------------------------------
    def _component_params(self) -> Tuple[float, float, float, float]:
        """Lognormal (mu, sigma) for the compute-time and memory-time parts.

        Both components get the same CV, scaled so the *total* service time
        hits ``service_cv`` (variances of independent components add).
        """
        mean_compute_s = (1.0 - self.mem_fraction) * self.mean_service_s
        mean_memory_s = self.mem_fraction * self.mean_service_s
        denom = math.sqrt((1.0 - self.mem_fraction) ** 2 + self.mem_fraction ** 2)
        comp_cv = self.service_cv / denom if denom > 0 else self.service_cv
        mu_c, sg_c = lognormal_params(mean_compute_s, comp_cv)
        if mean_memory_s > 0:
            mu_m, sg_m = lognormal_params(mean_memory_s, comp_cv)
        else:
            mu_m, sg_m = -math.inf, 0.0
        return mu_c, sg_c, mu_m, sg_m

    def sample_demands(
        self, num: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``num`` request demands.

        Returns:
            (compute_cycles, memory_time_s) arrays of length ``num``.
        """
        if num <= 0:
            raise ValueError("num must be positive")
        mu_c, sg_c, mu_m, sg_m = self._component_params()
        compute_s = rng.lognormal(mu_c, sg_c, size=num)
        if math.isinf(mu_m):
            memory_s = np.zeros(num)
        else:
            memory_s = rng.lognormal(mu_m, sg_m, size=num)
        if self.long_fraction > 0.0:
            # Mixture: scale a random subset up, keeping the overall mean.
            base_scale = 1.0 / (1.0 - self.long_fraction
                                + self.long_fraction * self.long_scale)
            is_long = rng.random(num) < self.long_fraction
            factor = base_scale * np.where(is_long, self.long_scale, 1.0)
            compute_s = compute_s * factor
            memory_s = memory_s * factor
        cycles = compute_s * self.nominal_hz
        return cycles, memory_s

    def predict_demands(self, cycles: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        """Hint-based per-request demand predictions (for Adrenaline).

        Blends the true demand with an independent draw in log space:
        ``hint_quality = 1`` returns the truth, ``0`` returns pure noise
        with the same marginal distribution.
        """
        q = self.hint_quality
        if q >= 1.0:
            return np.asarray(cycles, dtype=float).copy()
        independent, _ = self.sample_demands(len(cycles), rng)
        return np.exp(q * np.log(cycles) + (1.0 - q) * np.log(independent))

    def service_time_at(self, cycles: np.ndarray, memory_s: np.ndarray,
                        freq_hz: float) -> np.ndarray:
        """Vectorized service time of demands at a fixed frequency."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        return cycles / freq_hz + memory_s

    def mean_service_at(self, freq_hz: float) -> float:
        """Expected service time at ``freq_hz`` (analytic)."""
        compute_s = (1.0 - self.mem_fraction) * self.mean_service_s
        memory_s = self.mem_fraction * self.mean_service_s
        return compute_s * self.nominal_hz / freq_hz + memory_s

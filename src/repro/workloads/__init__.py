"""Latency-critical application models (paper Table 3 / Sec. 3)."""

from repro.workloads.apps import APPS, app_names, get_app
from repro.workloads.base import AppProfile

__all__ = ["APPS", "AppProfile", "app_names", "get_app"]

"""Analytical power models for cores, uncore, DRAM, and the full system.

The paper fits a regression power model to a Haswell server (Sec. 5.1).
We substitute a first-principles analytical model with the same structure
and knobs:

* per-core **dynamic** power ``C_eff * V(f)^2 * f`` while executing, with a
  reduced activity factor during memory stalls,
* per-core **leakage** ``k * V(f)^2`` whenever the core is powered,
* a deep-sleep state (Haswell C3-like) with a small residual power,
* constant-plus-utilization **uncore**/**DRAM** terms and a constant
  "other" platform component (PSU, disks, NIC), used for full-system
  numbers (Figs. 12 and 16).

Coefficients are calibrated (see ``DEFAULT_CORE_POWER``) so per-request
core energies land in the ranges of paper Fig. 9b (e.g. ~1.2 mJ/request
for masstree at nominal frequency).
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.config import (
    MAX_FREQUENCY_HZ,
    MIN_FREQUENCY_HZ,
    NOMINAL_FREQUENCY_HZ,
    NUM_CORES,
)


@dataclasses.dataclass(frozen=True)
class VoltageFrequencyCurve:
    """V(f) between the grid endpoints (FIVR-style operating points).

    Real chips need disproportionately more voltage near the top of the
    frequency range, so V(f) is modeled as
    ``v_min + (v_max - v_min) * x**shape`` with ``x`` the normalized
    frequency; ``shape > 1`` makes mid-range frequencies markedly cheaper
    than the nominal point, matching the convexity of the paper's
    regression-fit Haswell power model.
    """

    f_min_hz: float = MIN_FREQUENCY_HZ
    f_max_hz: float = MAX_FREQUENCY_HZ
    v_min: float = 0.55
    v_max: float = 1.15
    shape: float = 1.7

    def __post_init__(self) -> None:
        if self.f_min_hz <= 0 or self.f_max_hz <= self.f_min_hz:
            raise ValueError("need 0 < f_min < f_max")
        if self.v_min <= 0 or self.v_max < self.v_min:
            raise ValueError("need 0 < v_min <= v_max")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    def voltage(self, freq_hz: float) -> float:
        """Operating voltage at ``freq_hz`` (clamped to the curve range)."""
        if freq_hz <= self.f_min_hz:
            return self.v_min
        if freq_hz >= self.f_max_hz:
            return self.v_max
        frac = (freq_hz - self.f_min_hz) / (self.f_max_hz - self.f_min_hz)
        return self.v_min + frac ** self.shape * (self.v_max - self.v_min)


class CoreState(enum.Enum):
    """Execution state of a core, for power purposes."""

    BUSY = "busy"       # serving a latency-critical request
    BATCH = "batch"     # running a colocated batch app
    IDLE = "idle"       # deep sleep (C3-like)


@dataclasses.dataclass(frozen=True)
class CorePowerModel:
    """Power of one core (pipeline + L1s + L2, the paper's "core power").

    Attributes:
        curve: V(f) operating points.
        c_eff_farads: effective switched capacitance for dynamic power.
        leak_w_per_vk: leakage coefficient (watts per volt^leak_exponent).
        leak_exponent: voltage exponent of leakage (leakage grows
            superlinearly with voltage on real chips; 3 reproduces the
            convexity the paper's regression model exhibits).
        stall_activity: dynamic-activity factor during memory stalls,
            relative to compute activity.
        sleep_power_w: residual power in the deep-sleep state.
    """

    curve: VoltageFrequencyCurve = VoltageFrequencyCurve()
    c_eff_farads: float = 2.65e-9
    leak_w_per_vk: float = 1.30
    leak_exponent: float = 3.0
    stall_activity: float = 0.35
    sleep_power_w: float = 0.05

    def __post_init__(self) -> None:
        if self.c_eff_farads <= 0 or self.leak_w_per_vk < 0:
            raise ValueError("capacitance must be positive, leakage >= 0")
        if not 0.0 <= self.stall_activity <= 1.0:
            raise ValueError("stall_activity must be in [0, 1]")
        if self.sleep_power_w < 0:
            raise ValueError("sleep power must be non-negative")
        # Per-frequency (dynamic-at-full-activity, leakage) cache: energy
        # accounting evaluates busy_power on every segment close, and the
        # frequency grid is small. object.__setattr__ because frozen.
        object.__setattr__(self, "_fl_cache", {})

    def dynamic_power(self, freq_hz: float, activity: float = 1.0) -> float:
        """Dynamic switching power at ``freq_hz`` with the given activity."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        v = self.curve.voltage(freq_hz)
        return self.c_eff_farads * v * v * freq_hz * activity

    def leakage_power(self, freq_hz: float) -> float:
        """Static power at the voltage required for ``freq_hz``."""
        v = self.curve.voltage(freq_hz)
        return self.leak_w_per_vk * v ** self.leak_exponent

    def busy_power(self, freq_hz: float, mem_stall_frac: float = 0.0) -> float:
        """Average power while serving work at ``freq_hz``.

        Args:
            freq_hz: core frequency.
            mem_stall_frac: fraction of wall-clock time stalled on memory
                (dynamic activity drops to ``stall_activity`` there).
        """
        if not 0.0 <= mem_stall_frac <= 1.0:
            raise ValueError("mem_stall_frac must be in [0, 1]")
        cached = self._fl_cache.get(freq_hz)
        if cached is None:
            if freq_hz <= 0:
                raise ValueError("frequency must be positive")
            v = self.curve.voltage(freq_hz)
            cached = (self.c_eff_farads * v * v * freq_hz,
                      self.leak_w_per_vk * v ** self.leak_exponent)
            self._fl_cache[freq_hz] = cached
        dyn_full, leak = cached
        activity = (1.0 - mem_stall_frac) + self.stall_activity * mem_stall_frac
        return dyn_full * activity + leak

    def power(self, state: CoreState, freq_hz: float,
              mem_stall_frac: float = 0.0) -> float:
        """Instantaneous power in ``state`` at ``freq_hz``."""
        if state is CoreState.IDLE:
            return self.sleep_power_w
        return self.busy_power(freq_hz, mem_stall_frac)

    def busy_power_values(self, freqs, mem_stall_fracs):
        """Vectorized :meth:`busy_power` over parallel arrays.

        Element ``i`` is bitwise-identical to
        ``busy_power(freqs[i], mem_stall_fracs[i])``: the per-frequency
        (dynamic, leakage) pairs come from the same cache, and the
        combining arithmetic is the same two-operation expression applied
        elementwise. Used by the batched segment integrator.
        """
        freqs = np.asarray(freqs, dtype=float)
        mem_stall_fracs = np.asarray(mem_stall_fracs, dtype=float)
        if mem_stall_fracs.size and (
                float(mem_stall_fracs.min()) < 0.0
                or float(mem_stall_fracs.max()) > 1.0):
            # Same loud failure the scalar busy_power() raises — invalid
            # stall fractions must not be silently integrated.
            raise ValueError("mem_stall_frac must be in [0, 1]")
        uniq, inverse = np.unique(freqs, return_inverse=True)
        dyn_full = np.empty(uniq.shape)
        leak = np.empty(uniq.shape)
        for k, f in enumerate(uniq):
            pair = self._fl_cache.get(float(f))
            if pair is None:
                # Route through busy_power so validation and caching stay
                # in one place.
                self.busy_power(float(f))
                pair = self._fl_cache[float(f)]
            dyn_full[k], leak[k] = pair
        activity = (1.0 - mem_stall_fracs) + self.stall_activity * mem_stall_fracs
        return dyn_full[inverse] * activity + leak[inverse]

    def energy_per_cycle(self, freq_hz: float) -> float:
        """Joules per compute cycle at ``freq_hz`` (busy, no stalls)."""
        return self.busy_power(freq_hz) / freq_hz


@dataclasses.dataclass(frozen=True)
class PlatformPowerModel:
    """Non-core components for full-system numbers (Figs. 12 and 16).

    Uncore and DRAM have a constant (idle) part plus a part proportional to
    aggregate core utilization; "other" covers PSU losses, disks and NICs.
    Calibrated to a dual-digit idle platform power, matching the paper's
    observation that idle power dominates at low load.
    """

    uncore_idle_w: float = 7.0
    uncore_active_w: float = 5.0
    dram_idle_w: float = 6.0
    dram_active_w: float = 8.0
    other_w: float = 28.0

    def power(self, utilization: float) -> float:
        """Platform (non-core) power at the given mean core utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return (
            self.uncore_idle_w + self.uncore_active_w * utilization
            + self.dram_idle_w + self.dram_active_w * utilization
            + self.other_w
        )


@dataclasses.dataclass(frozen=True)
class SystemPowerModel:
    """Full server: ``num_cores`` cores plus the platform."""

    core: CorePowerModel = CorePowerModel()
    platform: PlatformPowerModel = PlatformPowerModel()
    num_cores: int = NUM_CORES

    def server_power(self, per_core_power_w: float, utilization: float) -> float:
        """Total server power given mean per-core power and utilization."""
        return self.num_cores * per_core_power_w + self.platform.power(utilization)


#: Shared default instances used across experiments.
DEFAULT_CORE_POWER = CorePowerModel()
DEFAULT_SYSTEM_POWER = SystemPowerModel()


def nominal_busy_power_w(model: CorePowerModel = DEFAULT_CORE_POWER) -> float:
    """Busy core power at the nominal 2.4 GHz (reference for savings)."""
    return model.busy_power(NOMINAL_FREQUENCY_HZ)

"""Analytical power models and energy metering (paper Sec. 5.1)."""

from repro.power.energy import EnergyMeter
from repro.power.model import (
    CorePowerModel,
    CoreState,
    DEFAULT_CORE_POWER,
    DEFAULT_SYSTEM_POWER,
    PlatformPowerModel,
    SystemPowerModel,
    VoltageFrequencyCurve,
)

__all__ = [
    "CorePowerModel", "CoreState", "DEFAULT_CORE_POWER",
    "DEFAULT_SYSTEM_POWER", "EnergyMeter", "PlatformPowerModel",
    "SystemPowerModel", "VoltageFrequencyCurve",
]

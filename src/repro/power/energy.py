"""Energy accounting over simulation runs.

:class:`EnergyMeter` accumulates per-core energy from (duration, state,
frequency) segments reported by the core model, and keeps the residency
bookkeeping needed by the paper's figures:

* total/active/idle energy (load-energy diagrams, Fig. 9b),
* busy time (server utilization, Figs. 12 and 16),
* time per frequency step (frequency histograms, Figs. 7b and 8b).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

import numpy as np

from repro.power.model import CorePowerModel, CoreState

#: Integer state codes for the batched segment interface (the hot path
#: buffers plain floats; enums would force per-segment object traffic).
BUSY_CODE, BATCH_CODE, IDLE_CODE = 0, 1, 2

#: CoreState -> batched code, shared with the core's segment buffer.
STATE_CODES = {
    CoreState.BUSY: BUSY_CODE,
    CoreState.BATCH: BATCH_CODE,
    CoreState.IDLE: IDLE_CODE,
}


def _first_occurrence_unique(values: np.ndarray) -> np.ndarray:
    """Unique values ordered by first occurrence (not sorted).

    Residency dicts must gain keys in chronological order: histogram
    normalization sums dict values in insertion order, and float addition
    is order-sensitive — sorted key creation would shift totals by a ULP
    relative to the one-record-per-segment accounting.
    """
    uniq, first_idx = np.unique(values, return_index=True)
    return uniq[np.argsort(first_idx)]


def _seq_add(acc: float, values: np.ndarray) -> float:
    """Fold ``values`` into ``acc`` in strict left-to-right order.

    Bitwise-identical to ``for v in values: acc += v``: cumulative sums
    are computed sequentially (unlike ``np.sum``, which uses pairwise
    summation and rounds differently), so batched integration reproduces
    the exact floats of the old one-``record``-per-segment accounting.
    """
    if values.size == 0:
        return acc
    return float(np.cumsum(np.concatenate(((acc,), values)))[-1])


class EnergyMeter:
    """Integrates core power over piecewise-constant segments.

    Segments arrive either one at a time (:meth:`record`) or as columnar
    batches (:meth:`record_segments`, the simulator's fast path). Both
    produce bitwise-identical totals for the same segment sequence.
    """

    def __init__(self, model: CorePowerModel) -> None:
        self.model = model
        self.energy_j = 0.0
        self.active_energy_j = 0.0
        self.batch_energy_j = 0.0
        self.idle_energy_j = 0.0
        self.total_time_s = 0.0
        self.busy_time_s = 0.0
        self.batch_time_s = 0.0
        self._freq_residency: Dict[float, float] = defaultdict(float)
        self._busy_freq_residency: Dict[float, float] = defaultdict(float)

    def record(self, duration_s: float, state: CoreState, freq_hz: float,
               mem_stall_frac: float = 0.0) -> float:
        """Account for ``duration_s`` seconds in ``state`` at ``freq_hz``.

        Returns the energy of the segment (joules).
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if duration_s == 0:
            return 0.0
        power = self.model.power(state, freq_hz, mem_stall_frac)
        energy = power * duration_s
        self.energy_j += energy
        self.total_time_s += duration_s
        self._freq_residency[freq_hz] += duration_s
        if state is CoreState.BUSY:
            self.active_energy_j += energy
            self.busy_time_s += duration_s
            self._busy_freq_residency[freq_hz] += duration_s
        elif state is CoreState.BATCH:
            self.batch_energy_j += energy
            self.batch_time_s += duration_s
        else:
            self.idle_energy_j += energy
        return energy

    def record_segments(
        self,
        durations_s: np.ndarray,
        state_codes: np.ndarray,
        freqs_hz: np.ndarray,
        mem_stall_fracs: np.ndarray,
    ) -> np.ndarray:
        """Account a chronological batch of segments in one shot.

        Args:
            durations_s: per-segment durations (non-negative).
            state_codes: per-segment ``STATE_CODES`` values.
            freqs_hz: per-segment core frequencies.
            mem_stall_fracs: per-segment memory-stall fractions.

        Returns:
            Per-segment energies (joules), e.g. for a segment log.

        Equivalent to calling :meth:`record` once per segment in order:
        per-segment powers use the same cached (dynamic, leakage) pairs
        and the same elementwise arithmetic, and every accumulator is
        folded strictly left-to-right (see ``_seq_add``).
        """
        durations_s = np.asarray(durations_s, dtype=float)
        if durations_s.size and float(durations_s.min()) < 0:
            raise ValueError("duration must be non-negative")
        state_codes = np.asarray(state_codes)
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        mem_stall_fracs = np.asarray(mem_stall_fracs, dtype=float)

        powers = np.empty_like(durations_s)
        active = state_codes != IDLE_CODE
        if active.any():
            powers[active] = self.model.busy_power_values(
                freqs_hz[active], mem_stall_fracs[active])
        powers[~active] = self.model.sleep_power_w
        all_energies = powers * durations_s

        # record() skips zero-duration segments before touching any
        # accumulator (including residency-dict key creation); match it.
        keep = durations_s > 0
        if keep.all():
            energies = all_energies
        else:
            durations_s = durations_s[keep]
            state_codes = state_codes[keep]
            freqs_hz = freqs_hz[keep]
            energies = all_energies[keep]

        self.energy_j = _seq_add(self.energy_j, energies)
        self.total_time_s = _seq_add(self.total_time_s, durations_s)
        for f in _first_occurrence_unique(freqs_hz):
            key = float(f)
            self._freq_residency[key] = _seq_add(
                self._freq_residency[key], durations_s[freqs_hz == f])

        busy = state_codes == BUSY_CODE
        self.active_energy_j = _seq_add(self.active_energy_j, energies[busy])
        self.busy_time_s = _seq_add(self.busy_time_s, durations_s[busy])
        if busy.any():
            busy_freqs = freqs_hz[busy]
            busy_durs = durations_s[busy]
            for f in _first_occurrence_unique(busy_freqs):
                key = float(f)
                self._busy_freq_residency[key] = _seq_add(
                    self._busy_freq_residency[key], busy_durs[busy_freqs == f])

        batch = state_codes == BATCH_CODE
        self.batch_energy_j = _seq_add(self.batch_energy_j, energies[batch])
        self.batch_time_s = _seq_add(self.batch_time_s, durations_s[batch])
        self.idle_energy_j = _seq_add(
            self.idle_energy_j, energies[state_codes == IDLE_CODE])
        return all_energies

    @property
    def mean_power_w(self) -> float:
        """Time-averaged core power over the whole run."""
        if self.total_time_s <= 0:
            return 0.0
        return self.energy_j / self.total_time_s

    @property
    def utilization(self) -> float:
        """Fraction of time serving latency-critical work."""
        if self.total_time_s <= 0:
            return 0.0
        return self.busy_time_s / self.total_time_s

    def busy_frequency_histogram(self) -> Dict[float, float]:
        """Fraction of *busy* time at each frequency (Figs. 7b, 8b)."""
        total = sum(self._busy_freq_residency.values())
        if total <= 0:
            return {}
        return {f: t / total for f, t in sorted(self._busy_freq_residency.items())}

    def frequency_histogram(self) -> Dict[float, float]:
        """Fraction of total time at each frequency."""
        if self.total_time_s <= 0:
            return {}
        return {
            f: t / self.total_time_s
            for f, t in sorted(self._freq_residency.items())
        }

"""Energy accounting over simulation runs.

:class:`EnergyMeter` accumulates per-core energy from (duration, state,
frequency) segments reported by the core model, and keeps the residency
bookkeeping needed by the paper's figures:

* total/active/idle energy (load-energy diagrams, Fig. 9b),
* busy time (server utilization, Figs. 12 and 16),
* time per frequency step (frequency histograms, Figs. 7b and 8b).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.power.model import CorePowerModel, CoreState


class EnergyMeter:
    """Integrates core power over piecewise-constant segments."""

    def __init__(self, model: CorePowerModel) -> None:
        self.model = model
        self.energy_j = 0.0
        self.active_energy_j = 0.0
        self.batch_energy_j = 0.0
        self.idle_energy_j = 0.0
        self.total_time_s = 0.0
        self.busy_time_s = 0.0
        self.batch_time_s = 0.0
        self._freq_residency: Dict[float, float] = defaultdict(float)
        self._busy_freq_residency: Dict[float, float] = defaultdict(float)

    def record(self, duration_s: float, state: CoreState, freq_hz: float,
               mem_stall_frac: float = 0.0) -> float:
        """Account for ``duration_s`` seconds in ``state`` at ``freq_hz``.

        Returns the energy of the segment (joules).
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if duration_s == 0:
            return 0.0
        power = self.model.power(state, freq_hz, mem_stall_frac)
        energy = power * duration_s
        self.energy_j += energy
        self.total_time_s += duration_s
        self._freq_residency[freq_hz] += duration_s
        if state is CoreState.BUSY:
            self.active_energy_j += energy
            self.busy_time_s += duration_s
            self._busy_freq_residency[freq_hz] += duration_s
        elif state is CoreState.BATCH:
            self.batch_energy_j += energy
            self.batch_time_s += duration_s
        else:
            self.idle_energy_j += energy
        return energy

    @property
    def mean_power_w(self) -> float:
        """Time-averaged core power over the whole run."""
        if self.total_time_s <= 0:
            return 0.0
        return self.energy_j / self.total_time_s

    @property
    def utilization(self) -> float:
        """Fraction of time serving latency-critical work."""
        if self.total_time_s <= 0:
            return 0.0
        return self.busy_time_s / self.total_time_s

    def busy_frequency_histogram(self) -> Dict[float, float]:
        """Fraction of *busy* time at each frequency (Figs. 7b, 8b)."""
        total = sum(self._busy_freq_residency.values())
        if total <= 0:
            return {}
        return {f: t / total for f, t in sorted(self._busy_freq_residency.items())}

    def frequency_histogram(self) -> Dict[float, float]:
        """Fraction of total time at each frequency."""
        if self.total_time_s <= 0:
            return {}
        return {
            f: t / self.total_time_s
            for f, t in sorted(self._freq_residency.items())
        }

"""Lint engine: file collection, rule dispatch, suppression accounting.

Entry points:

* :func:`lint_paths` — files and/or directories (directories collect
  ``*.py`` and ``*.c`` recursively, in sorted order);
* :func:`lint_files` — an explicit file list;
* :func:`lint_sources` — ``{path: source}`` mappings, used by the rule
  unit tests to lint snippets without touching the filesystem;
* :func:`default_paths` — the installed ``repro`` package tree, so
  ``python -m repro.lint`` checks the real sources regardless of cwd.

Suppression semantics: a finding is dropped when a pragma in its file
covers its line *and* names its rule; the pragma is then marked used.
Framework findings (malformed pragmas, syntax errors) are not
suppressible. After all selected rules ran, every unused pragma whose
rules were all selected becomes an ``unused-suppression`` finding — a
stale pragma is itself a lint violation.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.lint.base import (
    PARSE_RULE,
    UNUSED_SUPPRESSION_RULE,
    FileContext,
    Finding,
    Rule,
    all_rules,
)

#: Extensions the engine knows how to lint.
_EXTENSIONS = (".py", ".c")


@dataclasses.dataclass
class Project:
    """The full parsed file set, handed to project-scoped rules."""

    files: List[FileContext]


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_scanned: int
    rules_run: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        noun = "file" if self.files_scanned == 1 else "files"
        if self.findings:
            n = len(self.findings)
            lines.append(f"{n} finding{'s' if n != 1 else ''} in "
                         f"{self.files_scanned} {noun}")
        else:
            lines.append(f"clean: {self.files_scanned} {noun}, "
                         f"{len(self.rules_run)} rules")
        return "\n".join(lines)


def default_paths() -> List[Path]:
    """The ``repro`` package source tree (works from any cwd)."""
    import repro
    return [Path(repro.__file__).resolve().parent]


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for ext in _EXTENSIONS:
                files.extend(sorted(path.rglob(f"*{ext}")))
        elif path.suffix in _EXTENSIONS:
            files.append(path)
    # De-duplicate while preserving order (overlapping path arguments).
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _select_rules(rule_ids: Optional[Sequence[str]]) -> Dict[str, Rule]:
    registry = all_rules()
    if rule_ids is None:
        return registry
    unknown = sorted(set(rule_ids) - set(registry))
    if unknown:
        known = ", ".join(registry)
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)} (known: {known})")
    return {rid: registry[rid] for rid in registry if rid in set(rule_ids)}


def _build_context(path: str, source: str) -> FileContext:
    """Parse one source into a FileContext; Python syntax errors become
    ``parse`` findings carried on the context."""
    if path.endswith(".py"):
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            ctx = FileContext(path, source, tree=None)
            ctx.pragma_findings.append(Finding(
                path, exc.lineno or 1, PARSE_RULE,
                f"syntax error: {exc.msg}"))
            return ctx
        return FileContext(path, source, tree=tree)
    return FileContext(path, source, tree=None)


def _run(contexts: List[FileContext],
         rules: Dict[str, Rule]) -> LintResult:
    project = Project(files=contexts)
    raw: List[Finding] = []
    for rule in rules.values():
        if rule.scope == "project":
            raw.extend(rule.check_project(project))
        else:
            for ctx in contexts:
                raw.extend(rule.check_file(ctx))

    by_path = {ctx.path: ctx for ctx in contexts}
    kept: List[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppressed = False
        if ctx is not None:
            for sup in ctx.suppressions:
                if finding.rule in sup.rules and sup.covers(finding.line):
                    sup.used = True
                    suppressed = True
                    # keep scanning: one line may carry several pragmas
        if not suppressed:
            kept.append(finding)

    # Framework findings: malformed pragmas, parse errors (never
    # suppressible), then stale pragmas for fully-selected rule sets.
    for ctx in contexts:
        kept.extend(ctx.pragma_findings)
        for sup in ctx.suppressions:
            if not sup.used and set(sup.rules) <= set(rules):
                kept.append(Finding(
                    ctx.path, sup.line, UNUSED_SUPPRESSION_RULE,
                    f"pragma allows {', '.join(sup.rules)} but suppresses "
                    "nothing; remove it or fix the justification"))

    kept.sort()
    return LintResult(findings=kept, files_scanned=len(contexts),
                      rules_run=list(rules))


def lint_sources(sources: Mapping[str, str],
                 rules: Optional[Sequence[str]] = None) -> LintResult:
    """Lint in-memory ``{path: source}`` pairs (rule unit tests)."""
    selected = _select_rules(rules)
    contexts = [_build_context(path, text)
                for path, text in sources.items()]
    return _run(contexts, selected)


def lint_files(files: Iterable[Path],
               rules: Optional[Sequence[str]] = None) -> LintResult:
    selected = _select_rules(rules)
    contexts = []
    for path in files:
        path = Path(path)
        contexts.append(_build_context(
            str(path), path.read_text(encoding="utf-8")))
    return _run(contexts, selected)


def lint_paths(paths: Optional[Sequence[Path]] = None,
               rules: Optional[Sequence[str]] = None) -> LintResult:
    """Lint files/directories; ``None`` means :func:`default_paths`."""
    if not paths:
        paths = default_paths()
    return lint_files(_collect_files(list(paths)), rules=rules)

"""`repro.lint` — AST-based invariant checkers for this repo's contracts.

The repo's correctness story rests on cross-layer invariants that used
to exist only as prose in ``docs/performance.md``: bitwise determinism
of every experiment output, the ``core.flush_accounting()`` flush-hook
contract, the hand-mirrored ``rk_state`` struct between
``rubik_native.c`` and its ctypes ``Structure``, artifact-fingerprint
coverage of every ``DriverConfig`` field, validated warn-once ``REPRO_*``
env gates, and picklable sweep workers. This package enforces them
mechanically:

* ``python -m repro.lint`` — report ``file:line: [rule] message``, exit
  nonzero on findings (``--rules``/``--list-rules`` filter/describe).
* ``tests/lint/test_repo_clean.py`` — tier-1 asserts the tree is clean.
* ``benchmarks/run_bench.py`` — refuses to record a bench point on a
  dirty tree.

Rules live in :mod:`repro.lint.rules` (one module each, registered via
:func:`repro.lint.base.register`); the catalog with the invariant each
rule guards is ``docs/static_analysis.md``. Intentional violations are
suppressed inline::

    something_nondeterministic()  # repro-lint: allow(determinism) -- why

Suppressions must name the rule and give a reason; suppressions that no
longer match a finding are themselves findings (``unused-suppression``).
"""

from repro.lint.base import Finding, Rule, all_rules, register
from repro.lint.engine import (
    LintResult,
    default_paths,
    lint_files,
    lint_paths,
    lint_sources,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "default_paths",
    "lint_files",
    "lint_paths",
    "lint_sources",
    "register",
]

"""Command line for the invariant checkers: ``python -m repro.lint``.

Exit status 0 when the tree is clean, 1 when there are findings, 2 on
usage errors (unknown rule ids, missing paths). Also installed as the
``repro-lint`` console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.base import all_rules
from repro.lint.engine import default_paths, lint_paths


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("AST-based invariant checkers for the repro tree "
                     "(determinism, native ABI, flush-hook, fingerprint "
                     "coverage, env gates, picklable workers)."))
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the installed "
             "repro package tree)")
    parser.add_argument(
        "--rules", metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    registry = all_rules()

    if args.list_rules:
        width = max(len(rid) for rid in registry)
        for rid, rule in registry.items():
            print(f"{rid:<{width}}  {rule.title}")
            if rule.invariant:
                print(f"{'':<{width}}  guards: {rule.invariant}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]

    paths = args.paths or default_paths()
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        result = lint_paths(paths, rules=rule_ids)
    except ValueError as exc:  # unknown rule ids
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(result.render())
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())

"""Lint framework core: findings, the rule registry, file contexts and
the inline suppression pragma.

A checker is a :class:`Rule` subclass registered with :func:`register`;
the engine (:mod:`repro.lint.engine`) feeds it parsed
:class:`FileContext` objects (``scope = "file"``) or the whole
:class:`~repro.lint.engine.Project` (``scope = "project"`` — for
cross-file checks like the native-ABI mirror). Adding a checker is:
subclass, set ``id``/``title``/``invariant``, yield
:class:`Finding` objects from ``check_file`` or ``check_project``, and
import the module from :mod:`repro.lint.rules`.

Suppression pragma (same line as the finding, or a comment-only line
directly above it)::

    # repro-lint: allow(rule-id) -- reason the violation is intentional

Multiple rules separate with commas. The reason is mandatory; a pragma
that suppresses nothing is reported by the engine as
``unused-suppression``, so stale justifications cannot linger.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Rule ids owned by the framework itself (not in the registry).
PRAGMA_RULE = "pragma"
UNUSED_SUPPRESSION_RULE = "unused-suppression"
PARSE_RULE = "parse"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    """One parsed ``repro-lint: allow(...)`` pragma."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Pragma sits on a comment-only line and covers the next line.
    standalone: bool
    used: bool = False

    def covers(self, finding_line: int) -> bool:
        if self.line == finding_line:
            return True
        return self.standalone and finding_line == self.line + 1


#: Any occurrence of the pragma keyword — used to catch malformed ones.
_PRAGMA_HINT_RE = re.compile(r"repro-lint\s*:")

#: The well-formed pragma.
_PRAGMA_RE = re.compile(
    r"repro-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)\s*--\s*(\S.*)")

#: Comment-only line (python or C flavors).
_COMMENT_ONLY_RE = re.compile(r"^\s*(#|//|/\*)")


def _python_comments(source: str,
                     lines: List[str]) -> Iterator[Tuple[int, str]]:
    """(lineno, comment text) for real ``#`` comments only — string
    literals and docstrings mentioning the pragma are documentation,
    not suppressions."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable file: fall back to whole-line scanning so the
        # pragma check still runs alongside the parse finding.
        for lineno, text in enumerate(lines, start=1):
            yield lineno, text


def _c_comments(lines: List[str]) -> Iterator[Tuple[int, str]]:
    """(lineno, comment text) for ``//`` and single-line ``/* */``."""
    for lineno, text in enumerate(lines, start=1):
        for marker in ("//", "/*"):
            pos = text.find(marker)
            if pos != -1:
                yield lineno, text[pos:]
                break


def parse_suppressions(
        path: str, source: str,
        lines: List[str]) -> Tuple[List[Suppression], List[Finding]]:
    """Extract pragmas from the file's comments.

    Returns (suppressions, findings-for-malformed-pragmas). Malformed
    means: the ``repro-lint:`` keyword appears in a comment but does not
    match ``allow(<rules>) -- <reason>``; such findings are not
    themselves suppressible.
    """
    comments = (_python_comments(source, lines) if path.endswith(".py")
                else _c_comments(lines))
    sups: List[Suppression] = []
    findings: List[Finding] = []
    for lineno, text in comments:
        if not _PRAGMA_HINT_RE.search(text):
            continue
        m = _PRAGMA_RE.search(text)
        if not m:
            findings.append(Finding(
                path, lineno, PRAGMA_RULE,
                "malformed repro-lint pragma; expected "
                "'repro-lint: allow(<rule>) -- <reason>'"))
            continue
        rules = tuple(sorted(
            r.strip() for r in m.group(1).split(",") if r.strip()))
        if not rules:
            findings.append(Finding(
                path, lineno, PRAGMA_RULE,
                "repro-lint pragma allows no rules"))
            continue
        line_text = lines[lineno - 1] if lineno <= len(lines) else text
        sups.append(Suppression(
            line=lineno, rules=rules, reason=m.group(2).strip(),
            standalone=bool(_COMMENT_ONLY_RE.match(line_text))))
    return sups, findings


class FileContext:
    """One parsed source file handed to the rules.

    ``tree`` is the :mod:`ast` module tree for ``.py`` files and
    ``None`` for C sources (rules that read C parse the raw ``source``).
    ``parents`` maps every AST node to its parent, built lazily — rules
    use it for ancestor checks (e.g. "is this call wrapped in
    ``sorted()``").
    """

    def __init__(self, path: str, source: str,
                 tree: Optional[ast.AST] = None) -> None:
        self.path = path
        #: Posix-style path used for module whitelists/matching.
        self.posix = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions, self.pragma_findings = parse_suppressions(
            path, source, self.lines)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def is_python(self) -> bool:
        return self.tree is not None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        self._parents[child] = node
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node


class Rule:
    """Base checker. Subclass, register, yield findings."""

    #: Kebab-case rule id (used in reports, ``--rules`` and pragmas).
    id: str = ""
    #: One-line description shown by ``--list-rules``.
    title: str = ""
    #: The docs/performance.md invariant this rule guards (catalog
    #: cross-reference; empty for framework-internal rules).
    invariant: str = ""
    #: "file" rules run once per file; "project" rules once per run.
    scope: str = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        return ()


#: Registered rules, in registration (== documentation) order.
_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one :class:`Rule` to the registry."""
    rule = cls()
    if not rule.id or not rule.title:
        raise ValueError(f"rule {cls.__name__} needs an id and a title")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """id -> rule, in registration order (imports the rule modules)."""
    # Deferred so `import repro.lint.base` stays cycle-free for rules.
    import repro.lint.rules  # noqa: F401
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# shared AST helpers used by several rules
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def chain_root(node: ast.AST) -> Optional[str]:
    """The root ``Name`` id of an attribute chain (``a`` for ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Last segment of the called name (``map`` for ``pool.map(...)``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None

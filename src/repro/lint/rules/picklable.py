"""Rule ``picklable-worker`` — sweep workers must be module-level
functions.

``parallel_map`` / ``run_cells`` / ``make_cells`` ship their callable
to worker processes by pickle (docs/performance.md invariant 4), and
the artifact store fingerprints it by ``module:qualname``
(invariant 17). Lambdas, ``functools.partial`` objects, closures
(functions defined inside another function) and bound methods either
fail to pickle outright — but only on the multi-process path, so a
single-CPU CI box never sees the crash — or carry state the
fingerprint cannot see. This rule rejects them at the call site:

* ``parallel_map(<fn>, items)`` — first argument;
* ``run_cells(driver, <fn>, items)`` / ``make_cells`` — second;

where ``<fn>`` is a lambda, a ``partial(...)`` call, a name bound to a
nested ``def``/lambda in an enclosing function scope, or a
``self.``/``cls.``-rooted attribute (bound method). Names this rule
cannot resolve (parameters, imports) pass — no false positives on
dispatch helpers that forward a worker they were handed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.base import FileContext, Finding, Rule, register

#: Callee name -> positional index of the worker argument.
_TARGETS = {"parallel_map": 0, "run_cells": 1, "make_cells": 1}

#: Keyword name of the worker argument at those call sites.
_FN_KEYWORD = "fn"

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _worker_arg(call: ast.Call) -> Optional[ast.AST]:
    func = call.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None)
    if name not in _TARGETS:
        return None
    idx = _TARGETS[name]
    if len(call.args) > idx:
        return call.args[idx]
    for kw in call.keywords:
        if kw.arg == _FN_KEYWORD:
            return kw.value
    return None


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``scope``'s own body, not descending into nested
    function definitions (those are their own scopes)."""
    for child in ast.iter_child_nodes(scope):
        yield child
        if not isinstance(child, _FUNC_DEFS):
            yield from _own_nodes(child)


def _local_callables(scope: ast.AST) -> Set[str]:
    """Names bound to defs or lambdas directly in ``scope``'s body."""
    names: Set[str] = set()
    for node in _own_nodes(scope):
        if isinstance(node, _FUNC_DEFS):
            names.add(node.name)
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class PicklableWorkerRule(Rule):
    id = "picklable-worker"
    title = "parallel_map/run_cells workers are module-level functions"
    invariant = ("docs/performance.md invariants 4 (picklable workers) "
                 "and 17 (fn module:qualname joins the fingerprint)")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_python:
            return
        yield from self._visit(ctx, ctx.tree, closure_names=set())

    def _visit(self, ctx: FileContext, scope: ast.AST,
               closure_names: Set[str]) -> Iterator[Finding]:
        """Check ``scope``; ``closure_names`` are callables that would be
        closures if referenced here (defined in enclosing *functions* —
        module-level defs never qualify)."""
        if not isinstance(scope, ast.Module):
            # A function's own nested defs are closures for calls both
            # in its body and in deeper scopes.
            closure_names = closure_names | _local_callables(scope)
        for node in _own_nodes(scope):
            if isinstance(node, _FUNC_DEFS):
                inner = (closure_names if not isinstance(scope, ast.Module)
                         else set())
                yield from self._visit(ctx, node, inner)
            elif isinstance(node, ast.Call):
                worker = _worker_arg(node)
                if worker is not None:
                    names = (closure_names
                             if not isinstance(scope, ast.Module) else set())
                    finding = self._classify(ctx, worker, names)
                    if finding is not None:
                        yield finding

    # ------------------------------------------------------------------
    def _classify(self, ctx: FileContext, worker: ast.AST,
                  closure_names: Set[str]) -> Optional[Finding]:
        if isinstance(worker, ast.Lambda):
            return self._finding(ctx, worker.lineno,
                                 "a lambda cannot be pickled to worker "
                                 "processes and has no stable qualname")
        if isinstance(worker, ast.Call):
            func = worker.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name == "partial":
                return self._finding(
                    ctx, worker.lineno,
                    "functools.partial carries bound state the "
                    "fingerprint cannot see; use a module-level worker "
                    "taking an args tuple")
            return None
        if isinstance(worker, ast.Name) and worker.id in closure_names:
            return self._finding(
                ctx, worker.lineno,
                f"{worker.id!r} is defined inside an enclosing function "
                "(a closure); move it to module level")
        if isinstance(worker, ast.Attribute):
            root = worker.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in ("self", "cls"):
                return self._finding(
                    ctx, worker.lineno,
                    f"bound method {ast.unparse(worker)!r} pickles its "
                    "instance (or fails to); use a module-level worker")
        return None

    def _finding(self, ctx: FileContext, line: int, why: str) -> Finding:
        return Finding(ctx.path, line, self.id,
                       f"worker must be a module-level function: {why}")

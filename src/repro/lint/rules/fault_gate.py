"""Rule ``fault-gate`` — faults are injected only through the
``repro.resilience`` hook helpers, and never silently swallowed.

The fault-injection plane (:mod:`repro.resilience.faults`) is the one
sanctioned source of injected process death, hangs, and raised faults:
every hook is declarative, seeded, and inert without an explicitly
activated :class:`~repro.resilience.FaultPlan`, which is what makes
chaos runs reproducible and fault-free runs provably fault-free. An
ad-hoc ``os._exit`` or ``signal`` call buried in library code is an
injection point the plane cannot see — it fires on its own schedule,
breaks the "no active plan, no faults" invariant, and is exactly the
kind of brittleness the resilient executor exists to contain.

Two checks:

* process-control calls (``os._exit``, ``os.kill``, ``os.abort``,
  ``signal.signal``, ``signal.raise_signal``, ``signal.alarm``,
  ``signal.pthread_kill``) anywhere outside ``repro/resilience/`` —
  library code hosts faults via
  :func:`repro.resilience.maybe_inject`, never raw process control;
* ``except:`` / ``except Exception:`` / ``except BaseException:``
  handlers whose whole body is ``pass`` — a swallowed failure is a
  resilience bug, not resilience: failures must surface as
  :class:`~repro.resilience.CellFailure` records, warn-once notices,
  or propagate. (``contextlib.suppress(OSError)`` and friends stay
  fine: they name the exception they forgive.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register,
)

#: The one package allowed to own process-control fault machinery.
_PLANE_FRAGMENT = "repro/resilience/"

#: Process-control calls that amount to ad-hoc fault injection.
_PROCESS_CALLS = frozenset({
    "os._exit",
    "os.kill",
    "os.abort",
    "signal.signal",
    "signal.raise_signal",
    "signal.alarm",
    "signal.pthread_kill",
})

#: Handler types that catch everything (None = bare ``except:``).
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return isinstance(handler.type, ast.Name) \
        and handler.type.id in _BROAD_HANDLERS


@register
class FaultGateRule(Rule):
    id = "fault-gate"
    title = "faults only through repro.resilience hooks, never swallowed"
    invariant = ("deterministic fault plane: no active FaultPlan means "
                 "no faults, and no failure disappears silently")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_python or _PLANE_FRAGMENT in ctx.posix:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _PROCESS_CALLS:
                    yield Finding(
                        ctx.path, node.lineno, self.id,
                        f"ad-hoc {dotted}(): inject faults through "
                        "repro.resilience.maybe_inject hooks so they "
                        "stay declarative, seeded, and inert without "
                        "an active FaultPlan")
            elif isinstance(node, ast.ExceptHandler):
                if _is_broad(node) and len(node.body) == 1 \
                        and isinstance(node.body[0], ast.Pass):
                    caught = "bare except" if node.type is None \
                        else f"except {node.type.id}"
                    yield Finding(
                        ctx.path, node.lineno, self.id,
                        f"{caught}: pass swallows every failure; "
                        "surface it (CellFailure, warn-once, re-raise) "
                        "or suppress the specific exception type")

"""Rule ``determinism`` — no nondeterminism sources in library code.

Every experiment output in this repo is pinned bitwise (ROADMAP
guardrails; docs/performance.md invariant 1), so library code must not
consult wall clocks, unseeded random number generators, or
order-unstable iterables on any path that can feed outputs or
fingerprints:

* wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``,
  ``time.strftime`` ...) — timestamps differ run to run;
* the global :mod:`random` module and numpy's legacy global RNG
  (``np.random.rand`` ...), plus ``np.random.default_rng()`` with no
  seed — unseeded draws;
* ``os.listdir`` / ``os.scandir`` / ``os.walk`` / ``Path.iterdir`` /
  ``Path.glob``/``rglob`` not wrapped in ``sorted(...)`` — filesystem
  order is arbitrary;
* iterating a ``set``/``frozenset`` constructed inline — iteration
  order depends on hash seeding.

Fleet scope (``repro/fleet/``): the shard-invariance contract
(docs/performance.md invariant 22) additionally requires every RNG to
derive from logical coordinates — ``(seed, shard_index)`` or
``(seed, server_index)`` — so ``np.random.default_rng`` there must be
seeded by a :func:`repro.fleet.seeding.shard_seed`/``server_seed``
derivation (or code must use the ``shard_rng``/``server_rng``
constructors). ``seeding.py`` itself, the owner module, is exempt. A
literal seed would be deterministic but placement-coupled the moment a
shard count or worker id leaks into it; requiring the derivation calls
makes the provenance auditable.

Metadata-only uses (an artifact header's creation timestamp, build-time
diagnostics) are legitimate: suppress with a pragma naming the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.base import (
    FileContext,
    Finding,
    Rule,
    call_name,
    dotted_name,
    register,
)

#: Fully-dotted calls that read wall-clock / host entropy.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.strftime", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
    "os.urandom",
})

#: numpy legacy global-RNG entry points (module-level state).
_NP_LEGACY_RNG = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson",
})

#: Directory-order producers that must be wrapped in sorted(...).
_FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir", "os.walk"})
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: Sanctioned seed-derivation functions for fleet-scoped RNGs.
_FLEET_SEED_FNS = frozenset({"shard_seed", "server_seed"})

#: The one fleet module allowed to construct RNGs directly.
_FLEET_SEED_OWNER = "seeding.py"


def _in_fleet_scope(ctx: FileContext) -> bool:
    """Whether the file is fleet library code (owner module exempt)."""
    return "repro/fleet/" in ctx.posix \
        and not ctx.posix.endswith("/" + _FLEET_SEED_OWNER)


def _derives_fleet_seed(node: ast.Call) -> bool:
    """Whether the ``default_rng`` call's seed argument is a
    ``shard_seed``/``server_seed`` derivation."""
    seed_args = list(node.args)
    seed_args += [kw.value for kw in node.keywords if kw.arg == "seed"]
    for arg in seed_args:
        if isinstance(arg, ast.Call):
            fn = dotted_name(arg.func)
            if fn is not None and fn.split(".")[-1] in _FLEET_SEED_FNS:
                return True
    return False


def _in_sorted(ctx: FileContext, node: ast.AST) -> bool:
    """Whether some ancestor (within the statement) sorts the result."""
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.Call) and isinstance(anc.func, ast.Name) \
                and anc.func.id == "sorted":
            return True
        if isinstance(anc, ast.stmt):
            break
    return False


@register
class DeterminismRule(Rule):
    id = "determinism"
    title = "no wall clocks, unseeded RNGs, or unsorted FS/set iteration"
    invariant = ("docs/performance.md invariant 1 (bitwise decision/"
                 "output equivalence) and 17 (fingerprint stability)")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_python:
            return
        imports_random = any(
            isinstance(n, ast.Import)
            and any(a.name == "random" for a in n.names)
            for n in ast.walk(ctx.tree))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                finding = self._check_call(ctx, node, imports_random)
                if finding is not None:
                    yield finding
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                finding = self._check_iterable(ctx, node.iter)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.comprehension):
                finding = self._check_iterable(ctx, node.iter)
                if finding is not None:
                    yield finding

    # ------------------------------------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call,
                    imports_random: bool) -> Optional[Finding]:
        dotted = dotted_name(node.func)
        if dotted in _CLOCK_CALLS:
            return Finding(
                ctx.path, node.lineno, self.id,
                f"wall-clock/entropy read {dotted}() is nondeterministic "
                "across runs; derive times from the simulated clock or "
                "suppress for metadata-only uses")
        if dotted is not None:
            if imports_random and dotted.startswith("random."):
                return Finding(
                    ctx.path, node.lineno, self.id,
                    f"{dotted}() uses the global random module; use a "
                    "seeded np.random.default_rng(seed) instead")
            parts = dotted.split(".")
            if len(parts) >= 3 and parts[-2] == "random" \
                    and parts[0] in ("np", "numpy"):
                leaf = parts[-1]
                if leaf in _NP_LEGACY_RNG:
                    return Finding(
                        ctx.path, node.lineno, self.id,
                        f"{dotted}() drives numpy's legacy global RNG; "
                        "use a seeded np.random.default_rng(seed)")
                if leaf == "default_rng" and not node.args \
                        and not node.keywords:
                    return Finding(
                        ctx.path, node.lineno, self.id,
                        f"{dotted}() without a seed draws from OS "
                        "entropy; pass an explicit seed")
                if leaf == "default_rng" and _in_fleet_scope(ctx) \
                        and not _derives_fleet_seed(node):
                    return Finding(
                        ctx.path, node.lineno, self.id,
                        f"{dotted}() in repro/fleet/ must derive its "
                        "seed from logical coordinates via "
                        "repro.fleet.seeding — shard_seed(seed, "
                        "shard_index)/server_seed(seed, server_index), "
                        "or the shard_rng/server_rng constructors — so "
                        "shard invariance never couples to placement")
        if dotted in _FS_ORDER_CALLS and not _in_sorted(ctx, node):
            return Finding(
                ctx.path, node.lineno, self.id,
                f"{dotted}() yields files in arbitrary order; wrap in "
                "sorted(...) before anything order-sensitive consumes it")
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _FS_ORDER_METHODS \
                and dotted not in _FS_ORDER_CALLS \
                and not _in_sorted(ctx, node):
            return Finding(
                ctx.path, node.lineno, self.id,
                f".{node.func.attr}() yields files in arbitrary order; "
                "wrap in sorted(...) before anything order-sensitive "
                "consumes it")
        return None

    def _check_iterable(self, ctx: FileContext,
                        it: ast.AST) -> Optional[Finding]:
        if isinstance(it, ast.Set):
            return Finding(
                ctx.path, it.lineno, self.id,
                "iterating a set literal: order depends on hash seeding; "
                "iterate a sorted(...) view or a tuple")
        if isinstance(it, ast.Call) and call_name(it) in ("set", "frozenset") \
                and isinstance(it.func, ast.Name):
            return Finding(
                ctx.path, it.lineno, self.id,
                f"iterating {it.func.id}(...): order depends on hash "
                "seeding; iterate a sorted(...) view instead")
        return None

"""Rule ``env-gate`` — ``REPRO_*`` environment reads go through the
shared validated helper.

Every ``REPRO_*`` variable is a behavior gate with a warn-once
validation contract (invalid values warn once per distinct value and
read as unset — ``REPRO_MAX_WORKERS``, ``REPRO_NATIVE``,
``REPRO_ARTIFACT_CACHE``/``_DIR`` all pin this in tests). Ad-hoc
``os.environ`` reads scattered around the tree re-implement that
contract slightly differently each time, or skip it — which is exactly
how three near-identical validation blocks accumulated before they
were consolidated into :mod:`repro.config`'s ``env_*`` helpers.

This rule flags any ``os.environ.get(...)`` / ``os.environ[...]`` /
``os.getenv(...)`` (and ``setdefault``/``pop``) whose key is a
``REPRO_*`` string literal — or a module-level constant bound to one —
outside ``repro/config.py``. Modules keep exporting their ``*_ENV``
name constants; only the *read + validate* must live in the helper.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.base import (
    FileContext,
    Finding,
    Rule,
    const_str,
    dotted_name,
    register,
)

#: The one module allowed to read REPRO_* out of the environment.
_HELPER_SUFFIX = "repro/config.py"

_READ_CALLS = frozenset({
    "os.environ.get", "os.getenv", "os.environ.setdefault",
    "os.environ.pop",
})

_PREFIX = "REPRO_"


def _env_constants(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``X_ENV = "REPRO_..."`` constants."""
    consts: Dict[str, str] = {}
    if isinstance(tree, ast.Module):
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = const_str(node.value)
                if value is not None and value.startswith(_PREFIX):
                    consts[node.targets[0].id] = value
    return consts


def _key_value(node: ast.AST, consts: Dict[str, str]) -> Optional[str]:
    value = const_str(node)
    if value is not None:
        return value if value.startswith(_PREFIX) else None
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


@register
class EnvGateRule(Rule):
    id = "env-gate"
    title = "REPRO_* env reads use the shared warn-once helper"
    invariant = ("warn-once env validation idiom (REPRO_MAX_WORKERS/"
                 "REPRO_NATIVE/REPRO_ARTIFACT_* test contracts)")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_python or ctx.posix.endswith(_HELPER_SUFFIX):
            return
        consts = _env_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            key: Optional[str] = None
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _READ_CALLS and node.args:
                    key = _key_value(node.args[0], consts)
            elif isinstance(node, ast.Subscript):
                base = dotted_name(node.value)
                if base == "os.environ":
                    key = _key_value(node.slice, consts)
            if key is not None:
                yield Finding(
                    ctx.path, node.lineno, self.id,
                    f"ad-hoc read of {key}: go through the validated "
                    "warn-once helpers in repro.config (env_tristate/"
                    "env_nonneg_int/env_path) so invalid values keep "
                    "the warn-once contract")

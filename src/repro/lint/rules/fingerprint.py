"""Rule ``fingerprint-coverage`` — every ``DriverConfig`` field must be
able to reach the cell-fingerprint path.

A cell's artifact fingerprint covers ``(schema, driver, version, fn,
kernel, args)`` (docs/performance.md invariant 17). Config fields
influence cells only through that tuple — the version tag directly, the
sweep axes by shaping the args drivers hand to ``run_cells``. A field
nobody consumes is a sweep axis that *cannot* reach the fingerprint: a
PR could key new behavior on it and every cached artifact would alias
across its values.

Checks (project scope):

* every field declared on the ``DriverConfig`` dataclass is consumed —
  read as an attribute (``cfg.loads``, ``self.size_knob`` inside the
  config's own adapters) somewhere in the scanned experiment modules
  beyond its declaration;
* the ``cell_fingerprint`` payload literally carries the six required
  keys (``schema``, ``driver``, ``version``, ``fn``, ``kernel``,
  ``args``) — dropping one silently aliases artifacts across that axis.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import FileContext, Finding, Rule, register

#: Keys the fingerprint payload must carry (invariant 17).
REQUIRED_PAYLOAD_KEYS = frozenset(
    {"schema", "driver", "version", "fn", "kernel", "args"})

#: The config dataclass and fingerprint function this rule anchors on.
CONFIG_CLASS = "DriverConfig"
FINGERPRINT_FN = "cell_fingerprint"


def _config_fields(tree: ast.AST) -> Optional[
        Tuple[ast.ClassDef, List[Tuple[str, int]]]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            fields = [(stmt.target.id, stmt.lineno)
                      for stmt in node.body
                      if isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)
                      and not stmt.target.id.startswith("_")]
            return node, fields
    return None


def _attribute_reads(tree: ast.AST, config_cls: Optional[ast.ClassDef]
                     ) -> Set[str]:
    """All attribute names read in ``tree``.

    Attribute *reads* only — ``DriverConfig(loads=...)`` keywords are
    population, not consumption, and must not count.
    """
    reads: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            reads.add(node.attr)
    return reads


def _payload_keys(fn: ast.FunctionDef) -> Optional[Set[str]]:
    """First elements of the payload tuple-of-tuples, or None."""
    for node in ast.walk(fn):
        value = None
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.Return):
            value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        keys: Set[str] = set()
        for elt in value.elts:
            if isinstance(elt, (ast.Tuple, ast.List)) and elt.elts \
                    and isinstance(elt.elts[0], ast.Constant) \
                    and isinstance(elt.elts[0].value, str):
                keys.add(elt.elts[0].value)
        if keys:
            return keys
    return None


@register
class FingerprintCoverageRule(Rule):
    id = "fingerprint-coverage"
    title = "every DriverConfig field reaches the cell-fingerprint path"
    invariant = "docs/performance.md invariant 17 (fingerprint coverage)"
    scope = "project"

    def check_project(self, project) -> Iterator[Finding]:
        config_ctx: Optional[FileContext] = None
        config_info = None
        fingerprint_ctx: Optional[FileContext] = None
        fingerprint_fn: Optional[ast.FunctionDef] = None
        consumed: Set[str] = set()

        for ctx in project.files:
            if not ctx.is_python:
                continue
            if config_info is None and CONFIG_CLASS in ctx.source:
                found = _config_fields(ctx.tree)
                if found is not None:
                    config_ctx, config_info = ctx, found
            if fingerprint_fn is None and FINGERPRINT_FN in ctx.source:
                for node in ast.walk(ctx.tree):
                    if isinstance(node, ast.FunctionDef) \
                            and node.name == FINGERPRINT_FN:
                        fingerprint_ctx, fingerprint_fn = ctx, node
                        break
            consumed |= _attribute_reads(ctx.tree, None)

        if config_info is not None:
            _cls, fields = config_info
            for name, line in fields:
                if name not in consumed:
                    yield Finding(
                        config_ctx.path, line, self.id,
                        f"DriverConfig field {name!r} is never read: a "
                        "sweep axis no driver consumes cannot reach "
                        "cell args, so cached artifacts would alias "
                        "across its values (bump-or-consume it)")

        if fingerprint_fn is not None:
            keys = _payload_keys(fingerprint_fn)
            if keys is None:
                yield Finding(
                    fingerprint_ctx.path, fingerprint_fn.lineno, self.id,
                    f"{FINGERPRINT_FN}: could not find the literal "
                    "payload tuple; the fingerprint key set cannot be "
                    "statically verified")
            else:
                for missing in sorted(REQUIRED_PAYLOAD_KEYS - keys):
                    yield Finding(
                        fingerprint_ctx.path, fingerprint_fn.lineno,
                        self.id,
                        f"{FINGERPRINT_FN} payload dropped the "
                        f"{missing!r} key: artifacts would alias across "
                        "that axis (invariant 17)")

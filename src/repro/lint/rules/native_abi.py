"""Rule ``native-abi`` — the ctypes ``RKState`` mirror must match the
C ``rk_state`` struct, statically.

``rubik_native.c`` and the ctypes ``Structure`` in
``repro/core/_native/kernel.py`` declare the same struct by hand
(docs/performance.md invariant 14). The runtime guard
(``rk_state_size()`` vs ``ctypes.sizeof``) only fires when a compiler
is present and only catches *size* drift — two swapped same-size fields
sail through it and corrupt every decision. This rule re-derives both
field lists from source (no compiler needed) and verifies:

* same field count, names and order, name-for-name;
* 8-byte type agreement per field (``double`` vs ``c_double``,
  ``i64`` vs ``c_int64``, ``double*`` vs ``POINTER(c_double)``,
  ``double[8]`` vs ``c_double * 8`` ...);
* no field of a non-8-byte type on either side (padding would make the
  layouts disagree silently).

The rule is project-scoped: it pairs any scanned ``.c`` file containing
a ``rk_state`` typedef with any scanned Python file defining a ctypes
``Structure`` carrying ``_fields_``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint import c_abi
from repro.lint.base import FileContext, Finding, Rule, dotted_name, register

#: ctypes leaf types -> canonical 8-byte spelling.
_CTYPES_LEAVES = {
    "c_double": "double",
    "c_int64": "i64",
    "c_longlong": "i64",
    "c_void_p": "void*",
}

#: The struct name this repo mirrors.
STRUCT_NAME = "rk_state"


def _alias_map(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``_DP = ctypes.POINTER(ctypes.c_double)`` aliases."""
    aliases: Dict[str, str] = {}
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            canon = _canon_ctype(node.value, aliases)
            if canon is not None:
                aliases[node.targets[0].id] = canon
    return aliases


def _canon_ctype(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical type string for a ctypes type expression, or None."""
    if isinstance(node, ast.Name) and node.id in aliases:
        return aliases[node.id]
    dotted = dotted_name(node)
    if dotted is not None:
        leaf = dotted.split(".")[-1]
        if leaf in _CTYPES_LEAVES:
            return _CTYPES_LEAVES[leaf]
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] == "POINTER" \
                and len(node.args) == 1:
            inner = _canon_ctype(node.args[0], aliases)
            if inner is not None:
                return inner + "*"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        inner = _canon_ctype(node.left, aliases)
        if inner is not None and isinstance(node.right, ast.Constant) \
                and isinstance(node.right.value, int):
            return f"{inner}[{node.right.value}]"
    return None


def _find_fields_assign(tree: ast.AST) -> Optional[Tuple[str, ast.Assign]]:
    """(class name, the ``_fields_ = [...]`` assign) of a ctypes mirror."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "_fields_"
                    for t in stmt.targets):
                return node.name, stmt
    return None


def _is_8byte(ctype: str) -> bool:
    base = ctype.split("[")[0]
    return base in ("double", "i64", "double*", "i64*")


@register
class NativeAbiRule(Rule):
    id = "native-abi"
    title = "ctypes RKState mirror matches the C rk_state struct"
    invariant = "docs/performance.md invariant 14 (struct mirror parity)"
    scope = "project"

    def check_project(self, project) -> Iterator[Finding]:
        c_ctxs = [f for f in project.files
                  if not f.is_python and STRUCT_NAME in f.source]
        py_ctxs = [f for f in project.files
                   if f.is_python and "_fields_" in f.source
                   and _find_fields_assign(f.tree) is not None]
        if not c_ctxs and not py_ctxs:
            return  # rule not applicable to this file set
        if not c_ctxs:
            yield Finding(
                py_ctxs[0].path, 1, self.id,
                f"found a ctypes Structure mirror but no C source "
                f"declaring '{STRUCT_NAME}' in the scanned tree")
            return
        if not py_ctxs:
            yield Finding(
                c_ctxs[0].path, 1, self.id,
                f"found the C '{STRUCT_NAME}' struct but no ctypes "
                "Structure mirror in the scanned tree")
            return
        yield from self._compare(c_ctxs[0], py_ctxs[0])

    # ------------------------------------------------------------------
    def _parse_c(self, ctx: FileContext):
        try:
            return c_abi.parse_struct(ctx.source, STRUCT_NAME), None
        except c_abi.CParseError as exc:
            return None, Finding(ctx.path, exc.line, self.id, str(exc))

    def _parse_py(self, ctx: FileContext) -> Tuple[
            Optional[List[Tuple[str, str, int]]], List[Finding]]:
        found = _find_fields_assign(ctx.tree)
        assert found is not None
        _cls, assign = found
        if not isinstance(assign.value, (ast.List, ast.Tuple)):
            return None, [Finding(
                ctx.path, assign.lineno, self.id,
                "_fields_ is not a literal list; the mirror cannot be "
                "statically verified")]
        aliases = _alias_map(ctx.tree)
        fields: List[Tuple[str, str, int]] = []
        findings: List[Finding] = []
        for item in assign.value.elts:
            if not (isinstance(item, ast.Tuple) and len(item.elts) == 2
                    and isinstance(item.elts[0], ast.Constant)
                    and isinstance(item.elts[0].value, str)):
                findings.append(Finding(
                    ctx.path, item.lineno, self.id,
                    "_fields_ entry is not a literal ('name', ctype) "
                    "pair; the mirror cannot be statically verified"))
                continue
            name = item.elts[0].value
            canon = _canon_ctype(item.elts[1], aliases)
            if canon is None:
                findings.append(Finding(
                    ctx.path, item.lineno, self.id,
                    f"field {name!r}: unrecognized ctypes type "
                    "expression (extend the native-abi rule if this is "
                    "a new 8-byte type)"))
                canon = "?"
            fields.append((name, canon, item.lineno))
        return fields, findings

    def _compare(self, c_ctx: FileContext,
                 py_ctx: FileContext) -> Iterator[Finding]:
        struct, c_err = self._parse_c(c_ctx)
        if c_err is not None:
            yield c_err
            return
        if struct is None:
            yield Finding(
                c_ctx.path, 1, self.id,
                f"'{STRUCT_NAME}' typedef not found in {c_ctx.path}")
            return
        py_fields, py_findings = self._parse_py(py_ctx)
        yield from py_findings
        if py_fields is None:
            return

        c_fields = struct.fields
        for cf in c_fields:
            if not _is_8byte(cf.ctype):
                yield Finding(
                    c_ctx.path, cf.line, self.id,
                    f"C field {cf.name!r} has non-8-byte type "
                    f"{cf.ctype!r}; padding would desync the mirror")
        for name, canon, line in py_fields:
            if canon != "?" and not _is_8byte(canon):
                yield Finding(
                    py_ctx.path, line, self.id,
                    f"ctypes field {name!r} has non-8-byte type "
                    f"{canon!r}; padding would desync the mirror")

        if len(c_fields) != len(py_fields):
            yield Finding(
                py_ctx.path, py_fields[0][2] if py_fields else 1, self.id,
                f"field count drift: C {STRUCT_NAME} has "
                f"{len(c_fields)} fields, the ctypes mirror has "
                f"{len(py_fields)}")
        for idx, (cf, (pname, ptype, pline)) in enumerate(
                zip(c_fields, py_fields)):
            if cf.name != pname:
                yield Finding(
                    py_ctx.path, pline, self.id,
                    f"field #{idx} name drift: C declares {cf.name!r} "
                    f"({c_ctx.path}:{cf.line}) but the ctypes mirror "
                    f"declares {pname!r}")
            elif ptype != "?" and cf.ctype != ptype:
                yield Finding(
                    py_ctx.path, pline, self.id,
                    f"field {pname!r} type drift: C declares "
                    f"{cf.ctype!r} ({c_ctx.path}:{cf.line}) but the "
                    f"ctypes mirror declares {ptype!r}")

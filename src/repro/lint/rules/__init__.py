"""Rule modules — importing this package populates the registry.

Registration order here is the order findings list in reports and
``--list-rules``; keep it matching the catalog in
``docs/static_analysis.md``.
"""

from repro.lint.rules import (  # noqa: F401
    determinism,
    native_abi,
    flush_hook,
    fingerprint,
    env_gate,
    picklable,
    fault_gate,
)

"""Rule ``flush-hook`` — mid-run accounting reads must flush first.

DVFS segment accounting batches into buffers that are only integrated
into :class:`~repro.power.energy.EnergyMeter` (and the segment log /
frequency history) when ``core.flush_accounting()`` runs — the PR 2
flush-hook contract, docs/performance.md invariant 5. A read of
``core.meter`` / ``core.segment_log`` / ``core.dvfs.history`` that is
not preceded by the flush hook observes stale totals — off by exactly
the buffered tail, which is how the Pegasus telemetry bug class looks.

Static model (function-scoped, per file):

* an attribute read ending in ``.meter`` / ``.segment_log``, or a
  ``.dvfs.history`` chain, is a *guarded read*;
* it is satisfied when the same function body contains an earlier call
  to ``flush_accounting(...)`` or ``finalize(...)`` (``finalize``
  flushes internally) — on any receiver, since colocation code flushes
  whole core lists in loops;
* reads rooted at ``self`` are exempt (a class touching its own state
  is the owner, not a mid-run reader), as are reads off completed
  result objects — parameters/locals whose annotation or constructor
  names a ``*Result`` type, or values of ``run_trace``/``replay``/
  ``*.evaluate`` calls, which are finalized before they return;
* the owning modules (``repro/sim/core.py``, ``repro/sim/dvfs.py``,
  ``repro/power/energy.py``, ``repro/core/_native/session.py``) are
  whitelisted — they implement the contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.base import FileContext, Finding, Rule, chain_root, register

#: Modules that own the buffers / implement the flush itself.
_WHITELIST_SUFFIXES = (
    "repro/sim/core.py",
    "repro/sim/dvfs.py",
    "repro/power/energy.py",
    "repro/core/_native/session.py",
)

#: Calls that satisfy the contract for subsequent reads.
_FLUSH_CALLS = frozenset({"flush_accounting", "finalize"})

#: Attribute reads the contract guards.
_GUARDED_ATTRS = frozenset({"meter", "segment_log"})

#: Callees whose return value is a finalized result, not a live core.
_RESULT_CALLS = frozenset({"run_trace", "replay"})


def _is_result_annotation(node: ast.AST) -> bool:
    """Whether an annotation expression names a ``*Result`` type."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.endswith("Result"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.endswith("Result"):
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) \
                and "Result" in sub.value:
            return True
    return False


def _result_names(func: ast.AST) -> Set[str]:
    """Names in ``func`` bound to finalized result objects."""
    names: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None \
                    and _is_result_annotation(arg.annotation):
                names.add(arg.arg)
    for node in ast.walk(func):
        value = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
            if _is_result_annotation(node.annotation):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        if value is None or not isinstance(value, ast.Call):
            continue
        callee = value.func
        is_result = (
            (isinstance(callee, ast.Name)
             and (callee.id in _RESULT_CALLS
                  or callee.id.endswith("Result")))
            or (isinstance(callee, ast.Attribute)
                and (callee.attr in _RESULT_CALLS
                     or callee.attr == "evaluate"
                     or callee.attr.endswith("Result"))))
        if not is_result:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _guarded_read(node: ast.Attribute) -> bool:
    if not isinstance(node.ctx, ast.Load):
        return False
    if node.attr in _GUARDED_ATTRS:
        return True
    return (node.attr == "history"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "dvfs")


@register
class FlushHookRule(Rule):
    id = "flush-hook"
    title = "meter/segment-log/DVFS-history reads flush accounting first"
    invariant = "docs/performance.md invariant 5 (flush-hook contract)"
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_python:
            return
        if ctx.posix.endswith(_WHITELIST_SUFFIXES):
            return
        # Each function body (and the module body) is its own scope;
        # nested defs are visited as scopes of their own.
        scopes: List[ast.AST] = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext,
                     scope: ast.AST) -> Iterator[Finding]:
        own = (scope.body if not isinstance(scope, ast.Module)
               else scope.body)
        # Nodes belonging to this scope but not to nested functions.
        nested: Set[ast.AST] = set()
        for stmt in ast.walk(scope):
            if stmt is scope:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(stmt):
                    if sub is not stmt:
                        nested.add(sub)
        flush_lines: List[int] = []
        reads: List[ast.Attribute] = []
        for node in ast.walk(scope):
            if node is scope or node in nested:
                continue
            if isinstance(node, ast.Call):
                func = node.func
                name = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None)
                if name in _FLUSH_CALLS:
                    flush_lines.append(node.lineno)
            elif isinstance(node, ast.Attribute) and _guarded_read(node):
                reads.append(node)
        if not reads:
            return
        result_names = _result_names(scope)
        first_flush = min(flush_lines) if flush_lines else None
        for node in reads:
            root = chain_root(node.value)
            if root in ("self", "cls"):
                continue
            if root is not None and root in result_names:
                continue
            # Reads directly off a result-returning call, e.g.
            # run_trace(...).segment_log.
            base = node.value
            if isinstance(base, ast.Attribute):
                base = base.value  # unwrap .dvfs for .dvfs.history
            if isinstance(base, ast.Call):
                callee = base.func
                cname = (callee.attr if isinstance(callee, ast.Attribute)
                         else callee.id if isinstance(callee, ast.Name)
                         else None)
                if cname in _RESULT_CALLS or cname == "evaluate":
                    continue
            if first_flush is None or node.lineno < first_flush:
                what = (".dvfs.history" if node.attr == "history"
                        else f".{node.attr}")
                yield Finding(
                    ctx.path, node.lineno, self.id,
                    f"read of {what} without a preceding "
                    "core.flush_accounting()/finalize() in this "
                    "function: buffered segments/history would be "
                    "missing (flush-hook contract)")

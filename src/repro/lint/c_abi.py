"""Lightweight C-source parser for the ``rk_state`` ABI cross-check.

Just enough C to read the one struct this repo ships: a
``typedef struct { ... } <name>;`` whose members are scalar, pointer or
fixed-array declarations of 8-byte base types (``double``, ``i64`` /
``int64_t``). No compiler, no preprocessor — comments are stripped
statefully line-by-line so every parsed field keeps its source line for
findings.

Canonical type strings (shared with the ctypes side of the
``native-abi`` rule): ``"double"``, ``"i64"``, ``"double*"``,
``"i64*"``, ``"double[8]"`` ...
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Tuple

#: 8-byte base types and their canonical spelling.
_BASE_TYPES = {"double": "double", "i64": "i64", "int64_t": "i64"}

_DECL_RE = re.compile(
    r"^\s*(?P<base>[A-Za-z_]\w*)\s*"
    r"(?P<ptr>\*?)\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:\[(?P<arr>\d+)\])?\s*$")


@dataclasses.dataclass(frozen=True)
class CField:
    """One struct member: name, canonical type, source line."""

    name: str
    ctype: str
    line: int


@dataclasses.dataclass(frozen=True)
class CStruct:
    name: str
    fields: Tuple[CField, ...]
    line: int


class CParseError(ValueError):
    """Raised with a (message, line) payload on unparseable input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(message)
        self.line = line


def strip_comments(source: str) -> List[str]:
    """Source lines with ``/* */`` and ``//`` comments blanked.

    Line count and per-line offsets of surviving code are preserved, so
    downstream line numbers match the original file.
    """
    out: List[str] = []
    in_block = False
    for line in source.splitlines():
        buf: List[str] = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    buf.append(" " * (len(line) - i))
                    i = len(line)
                else:
                    buf.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
            elif line.startswith("/*", i):
                in_block = True
            elif line.startswith("//", i):
                buf.append(" " * (len(line) - i))
                i = len(line)
            else:
                buf.append(line[i])
                i += 1
        out.append("".join(buf))
    return out


def parse_struct(source: str, name: str = "rk_state") -> Optional[CStruct]:
    """Parse ``typedef struct { ... } <name>;`` out of ``source``.

    Returns None when no such typedef exists; raises :class:`CParseError`
    on members the 8-byte grammar cannot express (that is a finding for
    the caller — an unparseable field can hide an ABI drift).
    """
    lines = strip_comments(source)
    end_re = re.compile(r"^\s*\}\s*" + re.escape(name) + r"\s*;")
    start = end = None
    for idx, line in enumerate(lines):
        if end_re.match(line):
            end = idx
            break
    if end is None:
        return None
    for idx in range(end - 1, -1, -1):
        if re.search(r"typedef\s+struct\s*\{", lines[idx]):
            start = idx
            break
    if start is None:
        raise CParseError(
            f"found '}} {name};' but no 'typedef struct {{' opener",
            end + 1)

    fields: List[CField] = []
    pending = ""
    pending_line = start + 2
    for idx in range(start + 1, end):
        text = lines[idx]
        if not pending.strip():
            pending_line = idx + 1
        pending += " " + text
        while ";" in pending:
            decl, pending = pending.split(";", 1)
            if not decl.strip():
                continue
            m = _DECL_RE.match(decl.strip())
            if not m:
                raise CParseError(
                    f"cannot parse struct member {decl.strip()!r}",
                    pending_line)
            base = _BASE_TYPES.get(m.group("base"))
            if base is None:
                raise CParseError(
                    f"struct member {m.group('name')!r} has non-8-byte "
                    f"(or unknown) base type {m.group('base')!r}",
                    pending_line)
            ctype = base + ("*" if m.group("ptr") else "")
            if m.group("arr") is not None:
                if m.group("ptr"):
                    raise CParseError(
                        f"array-of-pointer member {m.group('name')!r} "
                        "is not part of the 8-byte ABI grammar",
                        pending_line)
                ctype = f"{base}[{int(m.group('arr'))}]"
            fields.append(CField(m.group("name"), ctype, pending_line))
            if pending.strip():
                # More declarations on the same physical region.
                pass
        if pending.strip():
            continue
    if pending.strip():
        raise CParseError(
            f"unterminated struct member {pending.strip()!r}", pending_line)
    return CStruct(name=name, fields=tuple(fields), line=start + 1)

"""StaticOracle (paper Sec. 5.2).

For a given request trace, StaticOracle picks the *lowest static frequency*
whose replay meets the tail-latency bound. It is oracular (it sees the
whole trace offline) and upper-bounds feedback controllers such as Pegasus:
the paper notes it is identical to the iso-latency oracle that bounds
Pegasus's savings.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.fixed import FixedFrequency
from repro.schemes.replay import ReplayResult, replay
from repro.sim.trace import Trace


def find_static_frequency(
    trace: Trace,
    bound_s: float,
    context: SchemeContext,
) -> float:
    """Lowest grid frequency whose static replay meets the bound.

    Returns the maximum frequency when even it cannot meet the bound
    (the shaded high-load region of Fig. 9).
    """
    for f in context.dvfs.frequencies:
        result = replay(trace, f)
        if result.tail_latency(context.tail_percentile) <= bound_s:
            return f
    return context.dvfs.max_hz


class StaticOracle(FixedFrequency):
    """Fixed-frequency scheme tuned oracularly per trace."""

    def __init__(self) -> None:
        super().__init__(freq_hz=None)
        self._tuned_hz: Optional[float] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return "StaticOracle"

    @property
    def tuned_hz(self) -> Optional[float]:
        """The chosen static frequency (None before tuning)."""
        return self._tuned_hz

    def tune(self, trace: Trace, context: SchemeContext) -> float:
        """Pick the lowest feasible static frequency for ``trace``."""
        self._tuned_hz = find_static_frequency(
            trace, context.latency_bound_s, context)
        self._freq_hz = self._tuned_hz
        return self._tuned_hz

    def initial_frequency(self) -> float:
        if self._tuned_hz is None:
            raise RuntimeError("StaticOracle must be tuned before running")
        return self._tuned_hz

    def evaluate(self, trace: Trace, context: SchemeContext) -> ReplayResult:
        """Tune on ``trace`` and return its analytic replay."""
        self.tune(trace, context)
        return replay(trace, self._tuned_hz)

"""Fixed-frequency baseline (paper Sec. 5.2).

Runs every request at a single static frequency — by default the nominal
2.4 GHz, which defines both the 100% load point and the latency bounds
used by all adaptive schemes (the fixed-frequency tail at 50% load).
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.base import Scheme


class FixedFrequency(Scheme):
    """Always run at one frequency; never issues DVFS transitions."""

    def __init__(self, freq_hz: Optional[float] = None) -> None:
        """Args:
            freq_hz: the static frequency; defaults to nominal. Must lie
                on the DVFS grid (validated at setup).
        """
        self._freq_hz = freq_hz

    @property
    def name(self) -> str:  # type: ignore[override]
        if self._freq_hz is None:
            return "Fixed-frequency"
        return f"Fixed@{self._freq_hz / 1e9:.1f}GHz"

    def initial_frequency(self) -> float:
        if self._freq_hz is None:
            return self.context.dvfs.nominal_hz
        if self._freq_hz not in self.context.dvfs.frequencies:
            raise ValueError(
                f"fixed frequency {self._freq_hz} is not on the DVFS grid")
        return self._freq_hz

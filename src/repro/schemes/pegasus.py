"""Pegasus-style feedback controller (paper Sec. 2.2; Lo et al., ISCA'14).

Pegasus measures tail latency over a coarse window and adjusts a single
chip-wide frequency every few seconds. It adapts to diurnal load changes
but not to sub-millisecond variability — StaticOracle upper-bounds its
savings (the paper evaluates StaticOracle for exactly that reason). We
include an executable Pegasus for completeness and for the ablation
bench that quantifies the feedback-only gap against Rubik.

The controller follows Pegasus's published rules: large violation ->
jump to max; small violation -> step up; comfortably below the target ->
step down; otherwise hold.

The real system also watches server power (it reads RAPL alongside the
latency histogram), so each adjustment here records the mean core power
of the window it just acted on. That observation reads ``core.meter``
*mid-run*, which under the batched segment accounting requires the
explicit flush hook: ``core.flush_accounting()`` integrates the pending
segment buffer first (a no-op for totals — integration is
order-preserving — so telemetry never perturbs the energy results).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.windows import RollingTailEstimator
from repro.schemes.base import Scheme, SchemeContext
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request


class Pegasus(Scheme):
    """Coarse-grain feedback DVFS: one frequency, adjusted per window."""

    name = "Pegasus"

    def __init__(
        self,
        window_s: float = 1.0,
        adjust_period_s: float = 1.0,
        high_violation: float = 1.0,
        step_down_margin: float = 0.85,
        min_window_samples: int = 30,
    ) -> None:
        """Args:
            window_s: tail-measurement window.
            adjust_period_s: how often the frequency is re-decided (the
                real system uses seconds; we default to 1 s).
            high_violation: measured/target ratio above which the
                controller panics to max frequency.
            step_down_margin: measured/target ratio below which it steps
                one grid notch down.
            min_window_samples: completions needed before acting.
        """
        if window_s <= 0 or adjust_period_s <= 0:
            raise ValueError("window and period must be positive")
        if not 0 < step_down_margin < high_violation:
            raise ValueError("need 0 < step_down_margin < high_violation")
        self.window_s = window_s
        self.adjust_period_s = adjust_period_s
        self.high_violation = high_violation
        self.step_down_margin = step_down_margin
        self.min_window_samples = min_window_samples
        self._last_adjust = float("-inf")
        self.adjustments = 0
        #: (time, mean core watts since the previous adjustment) — the
        #: power feed a deployed Pegasus reads next to its latency feed.
        self.power_log: List[Tuple[float, float]] = []
        self._last_energy_j = 0.0
        self._last_time_s = 0.0

    def setup(self, sim: Simulator, core: Core, context: SchemeContext) -> None:
        super().setup(sim, core, context)
        self._estimator = RollingTailEstimator(
            self.window_s, context.tail_percentile)
        self._level = len(context.dvfs.frequencies) - 1  # start at max

    def initial_frequency(self) -> float:
        return self.context.dvfs.max_hz

    def on_completion(self, core: Core, request: Request) -> None:
        now = self.sim.now
        self._estimator.observe(now, request.response_time)
        if now - self._last_adjust < self.adjust_period_s:
            return
        if self._estimator.count() < self.min_window_samples:
            return
        self._last_adjust = now
        self._observe_power(core, now)
        measured = self._estimator.tail(now)
        assert measured is not None
        ratio = measured / self.context.latency_bound_s
        grid = self.context.dvfs.frequencies
        if ratio > self.high_violation:
            self._level = len(grid) - 1
        elif ratio > 1.0:
            self._level = min(len(grid) - 1, self._level + 1)
        elif ratio < self.step_down_margin:
            self._level = max(0, self._level - 1)
        self.adjustments += 1
        core.request_frequency(grid[self._level])

    def _observe_power(self, core: Core, now: float) -> None:
        """Record the window's mean core power (the flush-hook contract:
        integrate buffered segments before reading the meter mid-run)."""
        core.flush_accounting()
        meter = core.meter
        d_energy = meter.energy_j - self._last_energy_j
        d_time = meter.total_time_s - self._last_time_s
        if d_time > 0:
            self.power_log.append((now, d_energy / d_time))
        self._last_energy_j = meter.energy_j
        self._last_time_s = meter.total_time_s

"""Analytic trace replay: queueing recurrences without event simulation.

The oracles (StaticOracle, AdrenalineOracle, DynamicOracle) are defined on
a captured trace (paper Sec. 5.3), so they can be evaluated with the
Lindley-style recurrence for a FIFO single server:

    start_i  = max(arrival_i, finish_{i-1})
    finish_i = start_i + C_i / f_i + M_i

where ``f_i`` is the frequency assigned to request ``i``. This is exact
when frequency only changes at request boundaries (true for all three
oracles) and orders of magnitude faster than event simulation, which makes
the oracles' offline tuning sweeps affordable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Union

import numpy as np

from repro.power.model import DEFAULT_CORE_POWER, CorePowerModel
from repro.sim.trace import Trace


@dataclasses.dataclass
class ReplayResult:
    """Latency and energy of an analytic replay."""

    response_times: np.ndarray
    service_times: np.ndarray
    busy_energy_j: np.ndarray  # per request
    duration_s: float
    busy_time_s: float
    freqs_hz: np.ndarray

    def tail_latency(self, pct: float = 95.0) -> float:
        return float(np.percentile(self.response_times, pct))

    def violation_rate(self, bound_s: float) -> float:
        return float(np.mean(self.response_times > bound_s))

    @property
    def total_energy_j(self) -> float:
        """Total core energy including idle sleep between requests."""
        idle = max(0.0, self.duration_s - self.busy_time_s)
        return float(self.busy_energy_j.sum()
                     + idle * DEFAULT_CORE_POWER.sleep_power_w)

    @property
    def energy_per_request_j(self) -> float:
        return self.total_energy_j / len(self.response_times)

    @property
    def mean_core_power_w(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j / self.duration_s

    def busy_freq_hist(self) -> Dict[float, float]:
        """Fraction of busy time per frequency."""
        hist: Dict[float, float] = {}
        for f, s in zip(self.freqs_hz, self.service_times):
            hist[float(f)] = hist.get(float(f), 0.0) + float(s)
        total = sum(hist.values())
        return {f: t / total for f, t in sorted(hist.items())} if total else {}


def lindley_finish_times(arrivals: np.ndarray,
                         service: np.ndarray) -> np.ndarray:
    """Vectorized FIFO finish times.

    ``finish_i = max_{j<=i}(arrival_j + sum_{k=j..i} service_k)``, computed
    as ``cumsum(service) + running-max(arrival - cumsum(service) shifted)``
    — O(n) with no Python loop, which keeps the oracles' tuning sweeps
    (hundreds of replays) cheap.
    """
    cs = np.cumsum(service)
    offsets = arrivals - (cs - service)
    return np.maximum.accumulate(offsets) + cs


def replay(
    trace: Trace,
    freqs_hz: Union[float, Sequence[float]],
    power_model: CorePowerModel = DEFAULT_CORE_POWER,
) -> ReplayResult:
    """Replay ``trace`` with per-request frequencies ``freqs_hz``.

    Args:
        trace: the captured trace.
        freqs_hz: a scalar (static frequency) or one frequency per request.
        power_model: busy-power model for per-request energy.
    """
    n = len(trace)
    freqs = np.broadcast_to(np.asarray(freqs_hz, dtype=float), (n,))
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be positive")

    service = trace.compute_cycles / freqs + trace.memory_time_s
    finish = lindley_finish_times(trace.arrivals, service)

    response = finish - trace.arrivals
    mem_frac = np.where(service > 0, trace.memory_time_s / service, 0.0)
    # busy_power is scalar per unique frequency; vectorize over the grid.
    energy = np.empty(n)
    for f in np.unique(freqs):
        mask = freqs == f
        activity = (1.0 - mem_frac[mask]) \
            + power_model.stall_activity * mem_frac[mask]
        v = power_model.curve.voltage(float(f))
        dyn = power_model.c_eff_farads * v * v * float(f) * activity
        leak = power_model.leak_w_per_vk * v ** power_model.leak_exponent
        energy[mask] = (dyn + leak) * service[mask]

    return ReplayResult(
        response_times=response,
        service_times=service,
        busy_energy_j=energy,
        duration_s=float(finish[-1]),
        busy_time_s=float(service.sum()),
        freqs_hz=np.asarray(freqs, dtype=float).copy(),
    )

"""Scheme interface: how power-management policies plug into the core.

A scheme observes request arrivals and completions (the same events Rubik
uses, Fig. 3) and drives the core's DVFS domain. Schemes also receive a
:class:`SchemeContext` carrying the run's latency bound and machine
configuration, and may register periodic timers through the simulator
(used by Pegasus-style feedback and the HW colocation schemes).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

from repro.config import DEFAULT_DVFS, TAIL_PERCENTILE, DvfsConfig
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request
from repro.workloads.base import AppProfile


@dataclasses.dataclass
class SchemeContext:
    """Run parameters shared with the active scheme.

    Attributes:
        latency_bound_s: the tail-latency target ``L`` (paper: tail latency
            of the fixed-frequency scheme at 50% load).
        tail_percentile: the percentile the bound applies to (95th).
        dvfs: frequency grid and transition latency.
        app: the application being served, when known (oracles use its
            profile; Rubik must not — it is application-agnostic).
    """

    latency_bound_s: float
    tail_percentile: float = TAIL_PERCENTILE
    dvfs: DvfsConfig = DEFAULT_DVFS
    app: Optional[AppProfile] = None

    def __post_init__(self) -> None:
        if self.latency_bound_s <= 0:
            raise ValueError("latency bound must be positive")
        if not 0.0 < self.tail_percentile < 100.0:
            raise ValueError("tail percentile must be in (0, 100)")

    @property
    def tail_quantile(self) -> float:
        """Tail percentile as a fraction in (0, 1)."""
        return self.tail_percentile / 100.0


class Scheme(abc.ABC):
    """A DVFS policy driving one core."""

    #: Human-readable scheme name (used in tables).
    name: str = "scheme"

    def setup(self, sim: Simulator, core: Core, context: SchemeContext) -> None:
        """Bind to a core before the run starts.

        Subclasses that override this must call ``super().setup(...)``.
        The default registers the scheme for arrival/completion events and
        applies :meth:`initial_frequency`.
        """
        self.sim = sim
        self.core = core
        self.context = context
        core.add_listener(self)
        core.dvfs.request(self.initial_frequency())

    def initial_frequency(self) -> float:
        """Frequency to start the run at (defaults to nominal)."""
        return self.context.dvfs.nominal_hz

    def native_session(self, sim: Simulator, core: Core, trace):
        """Optional whole-run native event loop for this scheme.

        Called by :func:`repro.sim.server.run_trace` after :meth:`setup`;
        a non-None return value takes over the entire event loop (see
        :class:`repro.core._native.session.NativeRunSession`). The
        default — any scheme without a native port — returns None and
        the Python event loop runs as always.
        """
        return None

    # Event hooks (CoreListener protocol) -------------------------------
    def on_arrival(self, core: Core, request: Request) -> None:
        """Called after ``request`` was admitted (queued or in service)."""

    def on_completion(self, core: Core, request: Request) -> None:
        """Called after ``request`` finished and the next one started."""

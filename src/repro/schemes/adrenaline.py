"""AdrenalineOracle (paper Sec. 5.2, idealized version of Adrenaline
[Hsu et al., HPCA 2015]).

Adrenaline's intuition: long requests are the likely tail contributors, so
boost *them* to a higher frequency and run short requests slow. The paper
evaluates an oracular variant that (a) perfectly distinguishes long from
short requests at arrival (real Adrenaline needs application-level hints)
and (b) tunes the long/short threshold and the two frequency settings
offline per application and load, picking the most efficient feasible
combination.

This module reproduces that offline search: sweep threshold quantiles of
the service-demand distribution and all (f_short <= f_boost) pairs on the
DVFS grid, evaluate each by analytic replay, and keep the lowest-energy
setting whose tail meets the bound. Queuing is never modeled explicitly —
exactly the limitation the paper highlights (Sec. 2.2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.replay import ReplayResult, replay
from repro.sim.core import Core
from repro.sim.request import Request
from repro.sim.trace import Trace

#: Threshold candidates, as quantiles of per-request service demand.
DEFAULT_THRESHOLD_QUANTILES = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


@dataclasses.dataclass(frozen=True)
class AdrenalineSetting:
    """A tuned operating point."""

    threshold_cycles: float
    f_short_hz: float
    f_boost_hz: float
    energy_per_request_j: float
    tail_latency_s: float


def _classify(trace: Trace, threshold_cycles: float) -> np.ndarray:
    """Boolean mask of boosted (long) requests.

    Classification uses the *hint-based prediction* available at arrival
    (``trace.predicted_cycles``): for hint-friendly apps this equals the
    true demand (the paper's "perfectly distinguish" oracle); for apps
    whose variability is invisible to hints (e.g. specjbb's JIT/GC
    effects) the prediction is noisy and boosting misfires — the paper's
    "not all applications are amenable to hints" (Secs. 2.2 and 3).
    """
    return trace.predicted_cycles >= threshold_cycles


def tune_adrenaline(
    traces: Sequence[Trace],
    context: SchemeContext,
    threshold_quantiles: Sequence[float] = DEFAULT_THRESHOLD_QUANTILES,
    bounds_s: Optional[Sequence[float]] = None,
) -> AdrenalineSetting:
    """Offline search for the best feasible (threshold, f_short, f_boost).

    Feasible = replay tail within the bound on *every* training trace
    (the paper's settings come from an offline training phase and must
    hold across runs); best = lowest mean busy energy. Falls back to
    everything-at-max when nothing is feasible (high load).

    Args:
        traces: training traces.
        context: carries the default latency bound.
        threshold_quantiles: candidate long/short split points.
        bounds_s: optional per-training-trace bounds (when each trace's
            bound is defined by the same methodology on its own seed).
    """
    if not traces:
        raise ValueError("need at least one training trace")
    if bounds_s is None:
        bounds_s = [context.latency_bound_s] * len(traces)
    if len(bounds_s) != len(traces):
        raise ValueError("bounds_s must match traces")
    pct = context.tail_percentile
    grid = context.dvfs.frequencies
    best: Optional[AdrenalineSetting] = None

    for q in threshold_quantiles:
        threshold = float(np.quantile(traces[0].predicted_cycles, q))
        for bi, f_boost in enumerate(grid):
            for f_short in grid[: bi + 1]:
                results = []
                feasible = True
                for trace, bound in zip(traces, bounds_s):
                    boosted = _classify(trace, threshold)
                    freqs = np.where(boosted, f_boost, f_short)
                    result = replay(trace, freqs)
                    if result.tail_latency(pct) > bound:
                        feasible = False
                        break
                    results.append(result)
                if not feasible:
                    continue
                energy = float(np.mean(
                    [r.energy_per_request_j for r in results]))
                tail = float(np.max([r.tail_latency(pct) for r in results]))
                candidate = AdrenalineSetting(
                    threshold_cycles=threshold,
                    f_short_hz=float(f_short),
                    f_boost_hz=float(f_boost),
                    energy_per_request_j=energy,
                    tail_latency_s=tail,
                )
                if best is None or (candidate.energy_per_request_j
                                    < best.energy_per_request_j):
                    best = candidate
                break  # larger f_short only costs more at this f_boost

    if best is None:
        f_max = context.dvfs.max_hz
        result = replay(traces[0], f_max)
        best = AdrenalineSetting(
            threshold_cycles=0.0,
            f_short_hz=f_max,
            f_boost_hz=f_max,
            energy_per_request_j=result.energy_per_request_j,
            tail_latency_s=result.tail_latency(pct),
        )
    return best


class AdrenalineOracle(Scheme):
    """Per-request two-level DVFS with oracular request classification."""

    name = "AdrenalineOracle"

    def __init__(self) -> None:
        self.setting: Optional[AdrenalineSetting] = None

    def tune(self, traces: Sequence[Trace], context: SchemeContext,
             threshold_quantiles: Sequence[float] = DEFAULT_THRESHOLD_QUANTILES,
             bounds_s: Optional[Sequence[float]] = None,
             ) -> AdrenalineSetting:
        """Run the offline search on training ``traces``."""
        self.setting = tune_adrenaline(
            traces, context, threshold_quantiles, bounds_s)
        return self.setting

    def evaluate(self, trace: Trace, context: SchemeContext,
                 training_traces: Optional[Sequence[Trace]] = None,
                 training_bounds_s: Optional[Sequence[float]] = None,
                 ) -> ReplayResult:
        """Tune (on ``training_traces``, default: the eval trace itself,
        which is the most oracular variant) and replay ``trace``."""
        setting = self.tune(training_traces or [trace], context,
                            bounds_s=training_bounds_s)
        boosted = _classify(trace, setting.threshold_cycles)
        freqs = np.where(boosted, setting.f_boost_hz, setting.f_short_hz)
        return replay(trace, freqs)

    # Event-driven operation (used when mixed with DVFS-lag simulation):
    # set frequency per request at service start, oracularly.
    def initial_frequency(self) -> float:
        if self.setting is None:
            raise RuntimeError("AdrenalineOracle must be tuned before running")
        return self.setting.f_short_hz

    def _is_long(self, request: Request) -> bool:
        """Hint-predicted demand at/above the tuned long/short split."""
        assert self.setting is not None
        predicted = (request.predicted_cycles
                     if request.predicted_cycles is not None
                     else request.compute_cycles)
        return predicted >= self.setting.threshold_cycles

    def _frequency_for(self, request: Request) -> float:
        assert self.setting is not None
        if self._is_long(request):
            return self.setting.f_boost_hz
        return self.setting.f_short_hz

    def _retarget(self, core: Core) -> None:
        """Run at the boost frequency iff any pending request is long.

        Walks the in-service request and the queue directly (no
        ``pending_requests()`` list build — this runs on every arrival
        and completion) and stops at the first long request: with only
        two levels, one boosted request decides the outcome.

        Mid-run meter reads are not needed here, but any subclass that
        adds energy feedback must honour the flush-hook contract:
        ``core.flush_accounting()`` before touching ``core.meter``.
        """
        setting = self.setting
        if core.current is not None and self._is_long(core.current):
            core.request_frequency(setting.f_boost_hz)
            return
        for request in core.queue:
            if self._is_long(request):
                core.request_frequency(setting.f_boost_hz)
                return
        core.request_frequency(setting.f_short_hz)

    def on_arrival(self, core: Core, request: Request) -> None:
        self._retarget(core)

    def on_completion(self, core: Core, request: Request) -> None:
        self._retarget(core)

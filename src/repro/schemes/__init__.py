"""DVFS schemes: the fixed-frequency baseline, the paper's oracles, a
Pegasus-style feedback controller, and the scheme/replay plumbing."""

from repro.schemes.adrenaline import AdrenalineOracle
from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.dynamic_oracle import evaluate_dynamic_oracle
from repro.schemes.fixed import FixedFrequency
from repro.schemes.pegasus import Pegasus
from repro.schemes.replay import ReplayResult, replay
from repro.schemes.static_oracle import StaticOracle

__all__ = [
    "AdrenalineOracle", "FixedFrequency", "Pegasus", "ReplayResult",
    "Scheme", "SchemeContext", "StaticOracle", "evaluate_dynamic_oracle",
    "replay",
]

"""DynamicOracle (paper Sec. 5.3).

The per-request frequency schedule that minimizes power subject to the
tail bound, computed with full knowledge of the trace:

1. Start from a globally feasible schedule — every request at the lowest
   *static* frequency that meets the bound (StaticOracle's choice), so
   DynamicOracle's energy is upper-bounded by StaticOracle's from the
   first step.
2. Progressively reduce per-request frequencies until the allowed 5% of
   requests exceed the bound, prioritizing the reductions that save the
   most energy (the paper's construction).

Reductions are evaluated with an *incremental* Lindley update: lowering
request ``i``'s frequency only delays requests until the busy period
containing ``i`` drains, so each trial touches a short suffix instead of
the whole trace.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.power.model import DEFAULT_CORE_POWER, CorePowerModel
from repro.schemes.base import SchemeContext
from repro.schemes.replay import ReplayResult, lindley_finish_times, replay
from repro.schemes.static_oracle import find_static_frequency
from repro.sim.trace import Trace


def _busy_power_per_freq(grid, model: CorePowerModel) -> dict:
    return {f: model.busy_power(f) for f in grid}


def _propagate(
    arr: List[float],
    C: List[float],
    M: List[float],
    freqs: List[float],
    finish: List[float],
    i: int,
    new_freq: float,
) -> Tuple[List[Tuple[int, float]], int]:
    """Finish-time updates caused by slowing request ``i`` to ``new_freq``.

    Operates on plain Python lists: this loop runs once per candidate
    reduction per round, and list indexing avoids the ndarray scalar
    boxing that used to dominate the oracle's runtime. Returns (list of
    (index, new_finish), first untouched index). The violation change is
    computed against the *caller's* bound via the closure-free convention:
    the caller compares old/new against it.
    """
    updates: List[Tuple[int, float]] = []
    prev_finish = finish[i - 1] if i > 0 else -np.inf
    start = arr[i] if arr[i] > prev_finish else prev_finish
    new_f = start + C[i] / new_freq + M[i]
    updates.append((i, new_f))
    j = i + 1
    n = len(arr)
    prev = new_f
    while j < n:
        start = arr[j] if arr[j] > prev else prev
        cand = start + C[j] / freqs[j] + M[j]
        if cand == finish[j]:
            break  # busy period drained; suffix unchanged
        updates.append((j, cand))
        prev = cand
        j += 1
    return updates, j


def dynamic_oracle_schedule(
    trace: Trace,
    context: SchemeContext,
    model: CorePowerModel = DEFAULT_CORE_POWER,
    max_rounds: int = 20,
) -> np.ndarray:
    """Compute DynamicOracle's per-request frequency schedule."""
    bound = context.latency_bound_s
    grid = context.dvfs.frequencies
    n = len(trace)
    budget = int((1.0 - context.tail_percentile / 100.0) * n)

    static_hz = find_static_frequency(trace, bound, context)
    freqs = np.full(n, static_hz)
    service = trace.compute_cycles / freqs + trace.memory_time_s
    finish = lindley_finish_times(trace.arrivals, service)
    viol = int(np.sum(finish - trace.arrivals > bound))

    step_of = {f: i for i, f in enumerate(grid)}
    power_at = _busy_power_per_freq(grid, model)
    grid_arr = np.asarray(grid, dtype=float)
    power_arr = np.array([power_at[f] for f in grid])

    # The accept loop below runs per candidate per round; plain lists keep
    # its scalar indexing off the ndarray boxing path. ``freqs``/``finish``
    # live as lists inside the loop and are re-materialized as arrays for
    # the vectorized ranking each round.
    arr_l = trace.arrivals.tolist()
    cyc_l = trace.compute_cycles.tolist()
    mem_l = trace.memory_time_s.tolist()
    finish_l = finish.tolist()
    freqs_l = freqs.tolist()

    for _ in range(max_rounds):
        freqs = np.asarray(freqs_l)
        # Rank one-step reductions by energy saved (larger first),
        # vectorized over the whole trace: energy-per-request at the
        # current and next-lower grid step, same float arithmetic as the
        # scalar formulation (power * cycles / freq).
        steps = np.searchsorted(grid_arr, freqs)
        reducible = steps > 0
        lower_steps = np.maximum(steps - 1, 0)
        e_now = power_arr[steps] * trace.compute_cycles / freqs
        e_low = (power_arr[lower_steps] * trace.compute_cycles
                 / grid_arr[lower_steps])
        saving = e_now - e_low
        cand = np.flatnonzero(reducible & (saving > 0))
        if cand.size == 0:
            break
        # Descending (saving, index) — matches sorted(..., reverse=True)
        # on (saving, i) tuples, ties broken toward the later request.
        order = cand[np.lexsort((-cand, -saving[cand]))]

        accepted = 0
        for i in order.tolist():
            s = step_of[freqs_l[i]]
            if s == 0:
                continue
            lower = grid[s - 1]
            updates, _ = _propagate(arr_l, cyc_l, mem_l, freqs_l,
                                    finish_l, i, lower)
            delta_viol = 0
            for j, new_f in updates:
                old_bad = finish_l[j] - arr_l[j] > bound
                new_bad = new_f - arr_l[j] > bound
                delta_viol += int(new_bad) - int(old_bad)
            if viol + delta_viol <= budget:
                for j, new_f in updates:
                    finish_l[j] = new_f
                freqs_l[i] = lower
                viol += delta_viol
                accepted += 1
        if accepted == 0:
            break
    return np.asarray(freqs_l)


def evaluate_dynamic_oracle(
    trace: Trace,
    context: SchemeContext,
    model: CorePowerModel = DEFAULT_CORE_POWER,
    max_rounds: int = 20,
) -> ReplayResult:
    """Schedule + analytic replay of DynamicOracle on ``trace``."""
    freqs = dynamic_oracle_schedule(trace, context, model, max_rounds)
    return replay(trace, freqs, model)

"""Deterministic fault injection + resilient sweep execution.

Two halves (see ``docs/robustness.md``):

* :mod:`repro.resilience.faults` — the sanctioned fault-injection
  plane: a seeded, declarative :class:`FaultPlan` firing at named hook
  points, activated explicitly (:func:`activate` context or the
  ``REPRO_FAULT_PLAN`` environment gate), never ambient.
* :mod:`repro.resilience.execution` — the hardened executor:
  :func:`resilient_map` with per-cell retry, soft timeouts,
  crashed/hung-worker recovery, and serial degradation, plus the
  :class:`RetryPolicy`/:class:`CellFailure`/:class:`SweepFailure`
  vocabulary ``run_cells`` and the runner CLI speak.
"""

from repro.resilience.execution import (
    CellFailure,
    RetryPolicy,
    SweepFailure,
    SweepStats,
    active_policy,
    resilient_map,
    use_policy,
)
from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    HOOKS,
    InjectedFault,
    activate,
    active_plan,
    maybe_inject,
    should_fire,
    unit_interval,
)

__all__ = [
    "CellFailure",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HOOKS",
    "InjectedFault",
    "RetryPolicy",
    "SweepFailure",
    "SweepStats",
    "activate",
    "active_plan",
    "active_policy",
    "maybe_inject",
    "resilient_map",
    "should_fire",
    "unit_interval",
    "use_policy",
]

"""Resilient sweep execution: per-cell retry, soft timeout, and
crashed-worker recovery (see ``docs/robustness.md``).

:func:`resilient_map` is the hardened sibling of
:func:`repro.perf.parallel_map`: the same "list of independent cells
in, list of results in input order out" contract, but one failing cell
no longer aborts the sweep. Instead of one ``map`` batch, every cell is
dispatched as its own :meth:`repro.perf.WorkerPool.submit` handle
wrapped in :func:`_run_cell`, which converts worker-side exceptions
into picklable ``("error", ...)`` records (and hosts the cell-scoped
fault hooks). The parent polls the handles and worker liveness, and:

* a cell **exception** is retried up to ``max_retries`` times with
  deterministic seeded backoff, then surfaces as a :class:`CellFailure`
  carrying the remote traceback — the sweep's other cells complete;
* a cell exceeding the **soft timeout** is charged a failed attempt;
  the pool is rebuilt (a hung worker cannot be cancelled, only its
  pool discarded) and unexpired in-flight cells are re-dispatched
  *uncharged*;
* a **lost worker** (SIGKILL, OOM, ``os._exit``) is detected by pid
  liveness; every still-unfinished in-flight cell is charged a
  ``worker-lost`` attempt (the pool API cannot attribute the death to
  one cell) and the pool is rebuilt;
* after ``max_pool_losses`` rebuilds the sweep **degrades to serial**
  in-process execution for the remaining cells — forward progress over
  parallelism.

Determinism: cell *values* never depend on scheduling. Retries re-run
the same pure cell function, backoff is seeded (hash-derived, no RNG
state), and the only wall-clock reads feed scheduling decisions
(timeouts), never results. A fault-free ``resilient_map`` returns
bitwise-identical values to ``parallel_map`` (guarded by the
resilience bench smoke).

Serial execution (one CPU, ``processes=1``, degraded mode) retries and
injects ``cell.raise`` identically, but cannot enforce timeouts or
survive ``worker.crash``/``worker.hang`` — those two hooks only fire
inside pool workers, so a serial run never kills its own process.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
import traceback
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.perf import parallel
from repro.resilience import faults


def _now() -> float:
    """Scheduling clock (timeouts, backoff); never feeds results.

    The one sanctioned wall-clock read in the executor, so the
    determinism argument stays auditable at a single site.
    """
    # repro-lint: allow(determinism) -- scheduling clock, never results
    return time.monotonic()


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Declarative knobs for :func:`resilient_map`.

    Attributes:
        max_retries: attempts after the first, per cell (0 = fail fast).
        timeout_s: per-cell soft timeout; ``None`` disables (serial
            execution never enforces it — there is no second process to
            keep the clock).
        backoff_s: base backoff before retry *k* (seconds); the actual
            sleep is ``backoff_s * 2**(k-1)`` scaled by a seeded jitter
            in ``[0.5, 1.5)`` — deterministic per (seed, cell, attempt).
        seed: backoff-jitter seed.
        max_pool_losses: pool rebuilds tolerated before degrading the
            remaining cells to serial in-process execution.
        poll_interval_s: parent poll cadence while cells are in flight.
        grace_s: after a loss/timeout is detected, how long surviving
            in-flight cells get to finish before being classified.
    """

    max_retries: int = 1
    timeout_s: Optional[float] = None
    backoff_s: float = 0.0
    seed: int = 0
    max_pool_losses: int = 3
    poll_interval_s: float = 0.02
    grace_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.max_pool_losses < 0:
            raise ValueError("max_pool_losses must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.grace_s < 0:
            raise ValueError("grace_s must be >= 0")

    def backoff_for(self, index: int, attempt: int) -> float:
        """Deterministic backoff before attempt ``attempt`` (1-based
        retry number) of cell ``index``."""
        if self.backoff_s <= 0 or attempt <= 0:
            return 0.0
        jitter = 0.5 + faults.unit_interval(self.seed, index, attempt)
        return self.backoff_s * (2 ** (attempt - 1)) * jitter


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """One cell's terminal failure, in the result slot its value would
    have occupied.

    Attributes:
        index: the cell's position in the input sequence.
        kind: ``"exception"`` (the cell raised), ``"timeout"`` (soft
            timeout expired), or ``"worker-lost"`` (its worker died).
        error: ``"ExcType: message"`` of the last failing attempt.
        traceback: remote traceback text ("" for timeout/worker-lost).
        attempts: total attempts charged to the cell.
    """

    index: int
    kind: str
    error: str
    traceback: str = ""
    attempts: int = 1

    def __str__(self) -> str:
        return (f"cell {self.index}: {self.kind} after "
                f"{self.attempts} attempt(s): {self.error}")


@dataclasses.dataclass
class SweepStats:
    """Mutable counters one :func:`resilient_map` call fills in.

    Pass an instance in to observe what the executor had to do; the
    bench resilience smoke asserts all-zero on the fault-free path.
    """

    cells: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    worker_losses: int = 0
    pool_rebuilds: int = 0
    degraded_serial: bool = False


class SweepFailure(RuntimeError):
    """A sweep finished with at least one :class:`CellFailure`.

    Raised by :func:`repro.experiments.common.run_cells` *after*
    persisting every successful cell to the active artifact store, so a
    rerun resumes from the survivors and recomputes only the failures.
    """

    def __init__(self, driver: str, failures: Sequence[CellFailure],
                 total: int):
        self.driver = driver
        self.failures = tuple(failures)
        self.total = total
        super().__init__(
            f"{driver}: {len(self.failures)}/{total} cell(s) failed")

    def summary(self) -> str:
        lines = [str(self)]
        lines.extend(f"  {f}" for f in self.failures)
        return "\n".join(lines)


#: Innermost active policy (set by :func:`use_policy`).
_active_policy: Optional[RetryPolicy] = None


@contextlib.contextmanager
def use_policy(policy: RetryPolicy) -> Iterator[RetryPolicy]:
    """Make ``policy`` the active retry policy for the duration; the
    runner wraps ``regenerate`` in this so every driver's ``run_cells``
    routes through :func:`resilient_map` without plumbing arguments
    through twelve driver modules."""
    global _active_policy
    outer = _active_policy
    _active_policy = policy
    try:
        yield policy
    finally:
        _active_policy = outer


def active_policy() -> Optional[RetryPolicy]:
    """The policy ``run_cells`` consults, or ``None`` (plain
    ``parallel_map`` semantics, bitwise-pinned)."""
    return _active_policy


def _run_cell(payload: Tuple[Callable[[Any], Any], Any, int, int,
                             Optional[faults.FaultPlan]]) -> Tuple:
    """Worker-side cell wrapper: run one cell, never raise.

    Returns ``("ok", value)`` or ``("error", etype, message,
    traceback_text)`` — a picklable record either way, so the parent's
    polling loop distinguishes application failures from transport
    failures (lost workers) structurally.

    Fault hooks: the parent ships the resolved :class:`faults.FaultPlan`
    inside the payload and it is activated *fresh per cell* — pool
    workers may have been forked before the plan existed, and firing
    decisions must depend only on ``(seed, hook, cell index, attempt)``,
    never on which worker ran the cell. The process-level hooks
    (``worker.crash``/``worker.hang``) are gated on actually being in a
    pool worker: a serial (in-parent) run must never ``os._exit`` the
    driver itself. In-parent runs pass ``plan=None`` and rely on the
    ambient plan instead, so parent-side consult counters keep their
    activation-wide ``nth`` semantics.
    """
    fn, item, index, attempt, plan = payload
    ctx = faults.activate(plan) if plan is not None \
        else contextlib.nullcontext()
    with ctx:
        try:
            if parallel._in_worker:
                faults.maybe_inject("worker.crash", index=index,
                                    attempt=attempt)
                faults.maybe_inject("worker.hang", index=index,
                                    attempt=attempt)
            faults.maybe_inject("cell.raise", index=index, attempt=attempt)
            return ("ok", fn(item))
        except BaseException as exc:
            return ("error", type(exc).__name__, str(exc),
                    traceback.format_exc())


def _outcome(record: Tuple, index: int, attempts: int):
    """Map a ``_run_cell`` record to ``(value, CellFailure | None)``."""
    if record[0] == "ok":
        return record[1], None
    _, etype, message, tb = record
    return None, CellFailure(index=index, kind="exception",
                             error=f"{etype}: {message}", traceback=tb,
                             attempts=attempts)


def _sleep_backoff(policy: RetryPolicy, index: int, attempt: int) -> None:
    delay = policy.backoff_for(index, attempt)
    if delay > 0:
        time.sleep(delay)


def _serial_run(fn: Callable[[Any], Any], items: Sequence[Any],
                indices: Sequence[int], policy: RetryPolicy,
                stats: SweepStats, results: List[Any]) -> None:
    """In-process execution with retries (no timeout enforcement: there
    is no second process to keep the clock, and killing the parent is
    never an option). Fills ``results`` at ``indices``."""
    for index, item in zip(indices, items):
        attempt = 0
        while True:
            record = _run_cell((fn, item, index, attempt, None))
            value, failure = _outcome(record, index, attempt + 1)
            if failure is None:
                results[index] = value
                break
            if attempt < policy.max_retries:
                attempt += 1
                stats.retries += 1
                _sleep_backoff(policy, index, attempt)
                continue
            stats.failures += 1
            results[index] = failure
            break


@dataclasses.dataclass
class _InFlight:
    """Parent-side tracking for one dispatched cell attempt."""

    handle: Any
    attempt: int
    deadline: Optional[float]

    @property
    def expired(self) -> bool:
        return self.deadline is not None and _now() > self.deadline


def _pooled_run(fn: Callable[[Any], Any], items: Sequence[Any],
                pool: "parallel.WorkerPool", policy: RetryPolicy,
                stats: SweepStats, results: List[Any]) -> None:
    """Polled per-cell dispatch with retry/timeout/lost-worker handling.

    The in-flight window is capped at ``pool.size`` so each dispatched
    cell starts immediately — its soft-timeout deadline is measured
    from dispatch, which only works when dispatch means "a worker
    picked it up", not "queued behind the whole sweep".
    """
    plan = faults.active_plan()
    # (index, attempt, not_before) — cells awaiting dispatch; retries
    # carry their backoff as a not-before time so the poll loop keeps
    # servicing other cells while one waits out its backoff.
    pending: List[Tuple[int, int, float]] = [
        (i, 0, 0.0) for i in range(len(items))]
    in_flight: Dict[int, _InFlight] = {}
    pool_losses = 0
    # Pids observed in earlier polls. The pool's maintenance thread
    # *replaces* dead workers, so an instantaneous snapshot can look
    # perfectly healthy moments after a crash — a loss shows up as a
    # previously-seen pid that is now dead or gone entirely.
    seen_pids: set = set()

    def dispatch_ready() -> None:
        nonlocal pending
        if not pending:
            return
        # Fork the pool (if needed) and record its pids *before*
        # handing out work: a cell that kills its worker the instant it
        # runs must still show up as "a pid we saw is gone", even if
        # the pool's maintenance thread replaces the worker before the
        # next poll.
        pool.ensure()
        seen_pids.update(pid for pid, _ in pool.worker_status())
        now = _now()
        still: List[Tuple[int, int, float]] = []
        for index, attempt, not_before in pending:
            if len(in_flight) >= pool.size or now < not_before:
                still.append((index, attempt, not_before))
                continue
            handle = pool.submit(
                _run_cell, (fn, items[index], index, attempt, plan))
            deadline = (None if policy.timeout_s is None
                        else _now() + policy.timeout_s)
            in_flight[index] = _InFlight(handle, attempt, deadline)
        pending = still

    def settle(index: int, entry: _InFlight) -> None:
        """Consume one ready handle: success, retry, or failure."""
        record = entry.handle.get()
        value, failure = _outcome(record, index, entry.attempt + 1)
        if failure is None:
            results[index] = value
            return
        charge(index, entry.attempt, "exception",
               error=failure.error, tb=failure.traceback)

    def charge(index: int, attempt: int, kind: str, *, error: str = "",
               tb: str = "") -> None:
        """Charge a failed attempt: requeue with backoff or finalize."""
        if attempt < policy.max_retries:
            stats.retries += 1
            not_before = _now() + policy.backoff_for(index, attempt + 1)
            pending.append((index, attempt + 1, not_before))
            return
        stats.failures += 1
        results[index] = CellFailure(
            index=index, kind=kind,
            error=error or f"cell {kind} (no result)", traceback=tb,
            attempts=attempt + 1)

    def collect_ready() -> None:
        for index in sorted(in_flight):
            entry = in_flight[index]
            if entry.handle.ready():
                del in_flight[index]
                settle(index, entry)

    while pending or in_flight:
        dispatch_ready()
        if not in_flight:
            # Everything pending is waiting out a backoff window.
            time.sleep(policy.poll_interval_s)
            continue
        time.sleep(policy.poll_interval_s)
        collect_ready()

        status = pool.worker_status()
        current = {pid for pid, _ in status}
        dead = {pid for pid, ok in status if not ok}
        lost_workers = bool(dead | (seen_pids - current))
        seen_pids |= current
        expired = [i for i, e in in_flight.items() if e.expired]
        if not lost_workers and not expired:
            continue

        # A worker died and/or a cell blew its soft timeout. Give the
        # surviving in-flight cells a short grace window to finish (so
        # innocent fast cells are not charged for a neighbour's crash),
        # then classify whatever is left and rebuild the pool — a hung
        # worker cannot be cancelled, and a dead worker's tasks are
        # gone; either way this OS pool is done.
        grace_end = _now() + policy.grace_s
        while in_flight and _now() < grace_end:
            time.sleep(policy.poll_interval_s)
            collect_ready()

        if lost_workers:
            stats.worker_losses += 1
        remaining = dict(in_flight)
        in_flight.clear()
        for index, entry in sorted(remaining.items()):
            if entry.handle.ready():
                settle(index, entry)
            elif entry.expired:
                stats.timeouts += 1
                charge(index, entry.attempt, "timeout",
                       error=f"soft timeout after {policy.timeout_s}s")
            elif lost_workers:
                # The pool API cannot attribute a death to one cell:
                # every unfinished cell is charged a worker-lost
                # attempt. Keep cells fast relative to grace_s (or
                # timeouts tight) to narrow the blast radius.
                charge(index, entry.attempt, "worker-lost",
                       error="pool worker died with cell in flight")
            else:
                # Pure-timeout rebuild collateral: requeue uncharged.
                pending.append((index, entry.attempt, 0.0))
        stats.pool_rebuilds += 1
        pool_losses += 1
        pool.rebuild()
        seen_pids.clear()

        if pool_losses > policy.max_pool_losses and (pending or in_flight):
            stats.degraded_serial = True
            rest = sorted(index for index, _, _ in pending)
            _serial_run(fn, [items[i] for i in rest], rest, policy,
                        stats, results)
            return


def resilient_map(fn: Callable[[Any], Any], items: Sequence[Any],
                  processes: Optional[int] = None,
                  policy: Optional[RetryPolicy] = None,
                  stats: Optional[SweepStats] = None) -> List[Any]:
    """``[fn(x) for x in items]`` that survives failing cells.

    Returns one entry per item in input order: the cell's value, or a
    :class:`CellFailure` describing how it terminally failed. Sizing
    and serial fallback follow :func:`repro.perf.effective_workers`
    exactly; inside a :class:`repro.perf.WorkerPool` context the shared
    pool is reused (and rebuilt in place after a loss).

    Args:
        fn: module-level (picklable) cell worker.
        items: per-cell argument values.
        processes: explicit worker count; ``None`` auto-sizes.
        policy: retry/timeout knobs; ``None`` uses the active
            :func:`use_policy` policy, else ``RetryPolicy()`` defaults.
        stats: optional :class:`SweepStats` to fill in.
    """
    if policy is None:
        policy = active_policy() or RetryPolicy()
    if stats is None:
        stats = SweepStats()
    stats.cells += len(items)
    results: List[Any] = [None] * len(items)
    if not items:
        return results
    workers = parallel.effective_workers(len(items), processes)
    if workers <= 1:
        _serial_run(fn, items, list(range(len(items))), policy, stats,
                    results)
        return results
    with parallel.shared_pool(processes) as pool:
        if pool.size <= 1:
            _serial_run(fn, items, list(range(len(items))), policy,
                        stats, results)
        else:
            _pooled_run(fn, items, pool, policy, stats, results)
    return results

"""Deterministic fault-injection plane (see ``docs/robustness.md``).

Production serving stacks are only trusted after their failures can be
*injected* on demand and the degradation watched — the same argument
the paper makes for tail-latency disturbances. This module is the one
sanctioned source of injected faults in the repo: a seeded, declarative
:class:`FaultPlan` (a frozen dataclass, like
:class:`~repro.experiments.configs.DriverConfig`) names **hook points**
in library code and when each should fire. Library code consults the
plane through :func:`maybe_inject`; with no active plan every consult
is a no-op, so the hooks cost one module-global read on the happy path
and can never fire ambiently (the ``fault-gate`` lint rule enforces
that no other module injects faults ad hoc).

Hook points (the complete set — :func:`maybe_inject` rejects others):

* ``worker.crash``  — ``os._exit`` in a pool child: an abrupt,
  cleanup-free death, the shape of an OOM kill. Fired only inside a
  worker process (never the parent) by the resilient executor.
* ``worker.hang``   — a pool child sleeps far past any soft timeout
  (a stuck native call / livelocked child).
* ``cell.raise``    — raise :class:`InjectedFault` inside a cell's
  computation (an application-level error).
* ``native.load_fail``     — the native-kernel loader fails as if the
  build/CDLL step broke (exercises the warn-once Python fallback).
* ``artifact.corrupt_read`` — an artifact-store read observes corrupt
  bytes (exercises the warn-delete-recompute path).

Triggers are deterministic by construction. Each :class:`FaultSpec`
carries exactly one of:

* ``index`` — fire for the cell with that sweep index (cell-scoped
  hooks; the resilient executor passes each cell's index and attempt
  number, and the spec sabotages the first ``times`` attempts — so a
  retried cell deterministically recovers once the budget is spent);
* ``nth``   — fire on the nth..(nth+times-1)th consult of the hook
  within the current activation (parent-side hooks, whose consults
  happen in deterministic input order);
* ``p``     — per-consult probability, derived by hashing
  ``(plan.seed, hook, index, attempt, consult#)`` — no RNG object, no
  process-dependent state, bitwise-reproducible across reruns.

Activation is explicit and never ambient, mirroring the artifact
store: an :func:`activate` context, or the ``REPRO_FAULT_PLAN``
environment variable (validated with the shared warn-once helpers in
:mod:`repro.config`; an unparsable plan warns once per distinct value
and reads as no plan). Example::

    REPRO_FAULT_PLAN="seed=7;worker.crash@0:delay=0.3;cell.raise@3:times=9;worker.hang@5:times=9"

Grammar: ``;``-separated clauses; ``seed=N`` sets the plan seed; every
other clause is ``hook[@index][:key=value[,key=value...]]`` with keys
``nth``, ``p``, ``times``, ``delay``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import time
from typing import Dict, Iterator, Optional, Set, Tuple
import warnings

from repro import config

#: Environment variable holding a declarative fault-plan spec string.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The complete set of sanctioned hook points.
HOOKS: Tuple[str, ...] = (
    "worker.crash",
    "worker.hang",
    "cell.raise",
    "native.load_fail",
    "artifact.corrupt_read",
)

#: Exit code a ``worker.crash`` child dies with (visible in waitpid
#: status while debugging; any nonzero abrupt exit looks the same to
#: the pool).
CRASH_EXIT_CODE = 113

#: How long a ``worker.hang`` child sleeps — far past any soft timeout.
HANG_SLEEP_S = 3600.0

#: Invalid env values already warned about ((var, raw) — once each).
_warned_env_values: Set[Tuple[str, str]] = set()

#: Parsed env plans memoized per raw value (None = invalid/none).
_env_cache: Dict[str, Optional["FaultPlan"]] = {}

#: Innermost explicitly-activated plan (set by :func:`activate`).
_active_plan: Optional["FaultPlan"] = None

#: Per-activation consult counters: hook -> consults so far.
_counts: Dict[str, int] = {}

#: Per-activation fire counters: spec position in plan -> fires so far.
_fires: Dict[int, int] = {}


class FaultPlanError(ValueError):
    """A :class:`FaultSpec`/:class:`FaultPlan` failed validation."""


class InjectedFault(RuntimeError):
    """The exception a ``cell.raise`` / ``native.load_fail`` hook
    raises. Subclasses ``RuntimeError`` so existing graceful-fallback
    handlers (the native loader's) treat it like the real failure."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault at one hook point with one deterministic trigger.

    Attributes:
        hook: one of :data:`HOOKS`.
        index: cell-index trigger — fire for this sweep index, on its
            first ``times`` attempts.
        nth: occurrence trigger — fire on consults ``nth`` through
            ``nth + times - 1`` of this hook (1-based, counted per
            activation per process).
        p: probability trigger — fire when the seeded hash of the
            consult's identity lands below ``p`` (at most ``times``
            fires per activation).
        times: how many attempts/consults the fault sabotages.
        delay_s: sleep this long before firing (lets tests order a
            crash after its sweep-mates completed).
    """

    hook: str
    index: Optional[int] = None
    nth: Optional[int] = None
    p: Optional[float] = None
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.hook not in HOOKS:
            raise FaultPlanError(
                f"unknown fault hook {self.hook!r}; known: "
                + ", ".join(HOOKS))
        triggers = [t for t in (self.index, self.nth, self.p)
                    if t is not None]
        if len(triggers) != 1:
            raise FaultPlanError(
                f"fault {self.hook!r} needs exactly one trigger among "
                "index/nth/p")
        if self.index is not None and self.index < 0:
            raise FaultPlanError("index trigger must be >= 0")
        if self.nth is not None and self.nth < 1:
            raise FaultPlanError("nth trigger is 1-based (must be >= 1)")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise FaultPlanError("p trigger must be in [0, 1]")
        if self.times < 1:
            raise FaultPlanError("times must be >= 1")
        if self.delay_s < 0:
            raise FaultPlanError("delay_s must be >= 0")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject.

    Frozen and picklable: the resilient executor ships the active plan
    to pool workers inside each cell payload, so a child activates the
    identical plan with fresh per-cell state — firing decisions depend
    only on ``(seed, hook, cell index, attempt)``, never on which
    worker process happened to run the cell.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def for_hook(self, hook: str) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.hook == hook)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse the compact clause grammar (see module docstring)."""
        seed = 0
        specs = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise FaultPlanError(
                        f"invalid seed clause {clause!r}") from None
                continue
            head, _, opts = clause.partition(":")
            hook, _, at_index = head.partition("@")
            kwargs: Dict[str, object] = {}
            if at_index:
                try:
                    kwargs["index"] = int(at_index)
                except ValueError:
                    raise FaultPlanError(
                        f"invalid index in clause {clause!r}") from None
            if opts:
                for pair in opts.split(","):
                    key, sep, value = pair.partition("=")
                    key = key.strip()
                    if not sep or key not in ("nth", "p", "times", "delay"):
                        raise FaultPlanError(
                            f"invalid option {pair!r} in clause "
                            f"{clause!r} (known: nth, p, times, delay)")
                    try:
                        if key == "nth" or key == "times":
                            kwargs[key] = int(value)
                        elif key == "p":
                            kwargs["p"] = float(value)
                        else:
                            kwargs["delay_s"] = float(value)
                    except ValueError:
                        raise FaultPlanError(
                            f"invalid {key} value {value!r} in clause "
                            f"{clause!r}") from None
            specs.append(FaultSpec(hook.strip(), **kwargs))
        return FaultPlan(seed=seed, faults=tuple(specs))


def unit_interval(*key: object) -> float:
    """A deterministic value in ``[0, 1)`` derived from ``key``.

    Hash-based (SHA-256 over ``repr``), so it is identical across
    processes and interpreter runs — unlike ``hash()``, which is
    salted. Shared with the resilient executor's backoff jitter.
    """
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def env_plan() -> Optional[FaultPlan]:
    """The plan from ``REPRO_FAULT_PLAN``, or ``None``.

    Empty values warn once via the shared :func:`repro.config.env_str`
    gate; an unparsable plan warns once per distinct raw value (same
    contract) and reads as no plan. Parses are memoized per raw value.
    """
    raw = config.env_str(FAULT_PLAN_ENV, _warned_env_values)
    if raw is None:
        return None
    if raw not in _env_cache:
        try:
            _env_cache[raw] = FaultPlan.parse(raw)
        except FaultPlanError as exc:
            _env_cache[raw] = None
            key = (FAULT_PLAN_ENV, raw)
            if key not in _warned_env_values:
                _warned_env_values.add(key)
                warnings.warn(
                    f"ignoring invalid {FAULT_PLAN_ENV}={raw!r} ({exc})",
                    RuntimeWarning, stacklevel=3)
    return _env_cache[raw]


def active_plan() -> Optional[FaultPlan]:
    """The plan :func:`maybe_inject` consults, or ``None`` (all hooks
    no-op). An explicit :func:`activate` beats the environment."""
    if _active_plan is not None:
        return _active_plan
    return env_plan()


def _reset_state() -> None:
    _counts.clear()
    _fires.clear()


@contextlib.contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Make ``plan`` the active plan (with fresh trigger state) for the
    duration of the block."""
    global _active_plan
    outer = _active_plan
    outer_counts = dict(_counts)
    outer_fires = dict(_fires)
    _active_plan = plan
    _reset_state()
    try:
        yield plan
    finally:
        _active_plan = outer
        _counts.clear()
        _counts.update(outer_counts)
        _fires.clear()
        _fires.update(outer_fires)


def should_fire(hook: str, *, index: Optional[int] = None,
                attempt: int = 0) -> Optional[FaultSpec]:
    """Consult the active plan: the spec to fire now, or ``None``.

    Every call counts as one consult of ``hook`` (for ``nth``
    triggers) — but only while a plan is active, so fault-free runs
    keep zero state.
    """
    if hook not in HOOKS:
        raise FaultPlanError(f"unknown fault hook {hook!r}")
    plan = active_plan()
    if plan is None:
        return None
    count = _counts[hook] = _counts.get(hook, 0) + 1
    for pos, spec in enumerate(plan.faults):
        if spec.hook != hook:
            continue
        if spec.index is not None:
            if index is not None and index == spec.index \
                    and attempt < spec.times:
                return spec
        elif spec.nth is not None:
            if spec.nth <= count < spec.nth + spec.times:
                return spec
        else:  # probability trigger
            if _fires.get(pos, 0) >= spec.times:
                continue
            draw = unit_interval(plan.seed, hook, index, attempt, count)
            if draw < spec.p:
                _fires[pos] = _fires.get(pos, 0) + 1
                return spec
    return None


def _fire(spec: FaultSpec, *, index: Optional[int] = None) -> None:
    """Execute one triggered fault. May not return (crash/hang)."""
    if spec.delay_s > 0:
        time.sleep(spec.delay_s)
    if spec.hook == "worker.crash":
        # Abrupt, cleanup-free death — the pool parent sees the child
        # vanish exactly as it would after an OOM kill.
        os._exit(CRASH_EXIT_CODE)
    if spec.hook == "worker.hang":
        time.sleep(HANG_SLEEP_S)
        return
    raise InjectedFault(
        f"injected {spec.hook}"
        + (f" at cell index {index}" if index is not None else ""))


def maybe_inject(hook: str, *, index: Optional[int] = None,
                 attempt: int = 0) -> None:
    """Consult the plane and fire when triggered; no-op without a plan.

    This is the only sanctioned way for library code to host a fault
    point (``fault-gate`` lint rule). ``worker.crash`` exits the
    process and ``worker.hang`` sleeps :data:`HANG_SLEEP_S`;
    the raising hooks raise :class:`InjectedFault`.
    """
    spec = should_fire(hook, index=index, attempt=attempt)
    if spec is not None:
        _fire(spec, index=index)


def _reset_for_tests() -> None:
    """Forget activation, trigger state, env memos, and warn-once
    registries (test isolation)."""
    global _active_plan
    _active_plan = None
    _reset_state()
    _env_cache.clear()
    _warned_env_values.clear()

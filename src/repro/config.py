"""Machine configuration constants (paper Table 2) and the shared
``REPRO_*`` environment-gate helpers.

The simulated system mirrors the paper's 6-core Westmere-like CMP with
Haswell-style FIVR per-core DVFS:

* frequency range 0.8--3.4 GHz in 200 MHz steps,
* 2.4 GHz nominal frequency,
* 4 us voltage/frequency transition latency,
* 65 W TDP,
* core sleep state with private caches flushed to the LLC (Haswell C3).

All times are seconds, frequencies are Hz, and work is measured in core
cycles throughout the code base.

The ``env_*`` helpers at the bottom are the one place ``REPRO_*``
variables are read out of ``os.environ`` (enforced by the ``env-gate``
lint rule): every gate shares the same validation contract — an invalid
value warns once per distinct raw value (RuntimeWarning) and reads as
unset. Callers own the warn-once registry (a module-level set they pass
in), so their tests keep resetting warn state per module exactly as
before the consolidation.
"""

from __future__ import annotations

import bisect
import dataclasses
import os
import warnings
from pathlib import Path
from typing import Optional, Set, Tuple

GHZ = 1e9
MHZ = 1e6
US = 1e-6
MS = 1e-3

#: Nominal core frequency (Table 2), also the reference for "100% load".
NOMINAL_FREQUENCY_HZ = 2.4 * GHZ

#: DVFS range and step size (Table 2).
MIN_FREQUENCY_HZ = 0.8 * GHZ
MAX_FREQUENCY_HZ = 3.4 * GHZ
FREQUENCY_STEP_HZ = 0.2 * GHZ

#: Voltage/frequency transition latency modeled in simulation (Table 2).
DVFS_TRANSITION_LATENCY_S = 4 * US

#: Transition latency observed on the real Haswell system (Sec. 5.5).
REAL_SYSTEM_DVFS_LATENCY_S = 130 * US

#: Number of cores in the simulated CMP (Table 2).
NUM_CORES = 6

#: Thermal design power of the simulated chip, watts (Table 2).
TDP_WATTS = 65.0

#: Tail-latency percentile used throughout the paper (Sec. 5.1).
TAIL_PERCENTILE = 95.0


def frequency_grid(
    min_hz: float = MIN_FREQUENCY_HZ,
    max_hz: float = MAX_FREQUENCY_HZ,
    step_hz: float = FREQUENCY_STEP_HZ,
) -> Tuple[float, ...]:
    """Return the available DVFS frequency steps, ascending.

    The default grid is the paper's 0.8--3.4 GHz range in 200 MHz steps
    (14 settings).
    """
    if min_hz <= 0 or step_hz <= 0:
        raise ValueError("frequencies and step must be positive")
    if max_hz < min_hz:
        raise ValueError("max_hz must be >= min_hz")
    steps = []
    f = min_hz
    # Tolerate float drift: stop once we pass max_hz by more than half a step.
    while f <= max_hz + step_hz / 2:
        steps.append(round(f, 3))
        f += step_hz
    return tuple(steps)


@dataclasses.dataclass(frozen=True)
class DvfsConfig:
    """Per-core DVFS capabilities.

    Attributes:
        frequencies: available frequency steps in Hz, ascending.
        transition_latency_s: time for a voltage/frequency change to take
            effect. The core keeps running at the old frequency during the
            transition (conservative, matches the paper's FIVR model).
        nominal_hz: the nominal frequency used by the fixed-frequency
            baseline and to define 100% load.
    """

    frequencies: Tuple[float, ...] = frequency_grid()
    transition_latency_s: float = DVFS_TRANSITION_LATENCY_S
    nominal_hz: float = NOMINAL_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if not self.frequencies:
            raise ValueError("frequency grid must not be empty")
        if list(self.frequencies) != sorted(self.frequencies):
            raise ValueError("frequency grid must be ascending")
        if self.transition_latency_s < 0:
            raise ValueError("transition latency must be non-negative")
        if not (self.min_hz <= self.nominal_hz <= self.max_hz):
            raise ValueError("nominal frequency outside the grid range")
        # O(1) grid membership for the per-event DVFS request validation
        # (object.__setattr__ because frozen).
        object.__setattr__(self, "_freq_set", frozenset(self.frequencies))

    def on_grid(self, f_hz: float) -> bool:
        """Whether ``f_hz`` is exactly one of the grid steps (O(1))."""
        return f_hz in self._freq_set

    @property
    def min_hz(self) -> float:
        return self.frequencies[0]

    @property
    def max_hz(self) -> float:
        return self.frequencies[-1]

    def quantize_up(self, f_hz: float) -> float:
        """Smallest available frequency >= ``f_hz`` (clamped to max).

        Rubik always rounds *up* so the analytical guarantee is preserved.
        Binary search: this runs on every controller decision.
        """
        idx = bisect.bisect_left(self.frequencies, f_hz - 1e-9)
        if idx >= len(self.frequencies):
            return self.frequencies[-1]
        return self.frequencies[idx]

    def quantize_down(self, f_hz: float) -> float:
        """Largest available frequency <= ``f_hz`` (clamped to min)."""
        best = self.frequencies[0]
        for step in self.frequencies:
            if step <= f_hz + 1e-9:
                best = step
            else:
                break
        return best


@dataclasses.dataclass(frozen=True)
class CmpConfig:
    """Whole-chip configuration (paper Table 2)."""

    num_cores: int = NUM_CORES
    tdp_watts: float = TDP_WATTS
    dvfs: DvfsConfig = dataclasses.field(default_factory=DvfsConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.tdp_watts <= 0:
            raise ValueError("tdp_watts must be positive")

    @property
    def per_core_power_budget_watts(self) -> float:
        """TDP share per core, used by the HW-T colocation scheme."""
        return self.tdp_watts / self.num_cores


#: Default chip configuration used across experiments.
DEFAULT_CMP = CmpConfig()

#: Default DVFS configuration used across experiments.
DEFAULT_DVFS = DEFAULT_CMP.dvfs


def real_system_dvfs() -> DvfsConfig:
    """DVFS configuration matching the paper's real-system setup (Sec. 5.5).

    Same frequency grid, but with the ~130 us transition latency observed
    on the Haswell testbed instead of the advertised 500 ns.
    """
    return DvfsConfig(transition_latency_s=REAL_SYSTEM_DVFS_LATENCY_S)


# ---------------------------------------------------------------------------
# REPRO_* environment gates (shared warn-once validation)
# ---------------------------------------------------------------------------

def _warn_once(var: str, raw: str, expected: str, warned: Set,
               stacklevel: int) -> None:
    key = (var, raw)
    if key in warned:
        return
    warned.add(key)
    # +2 skips the _warn_once and env_* frames, so ``stacklevel`` counts
    # from the env_* caller — the same frame the pre-consolidation
    # per-module warn sites pointed at with the same value.
    warnings.warn(f"ignoring invalid {var}={raw!r} ({expected})",
                  RuntimeWarning, stacklevel=stacklevel + 2)


def env_nonneg_int(var: str, warned: Set, *,
                   stacklevel: int = 3) -> Optional[int]:
    """Validated non-negative-integer gate (``REPRO_MAX_WORKERS``).

    Returns the parsed value, or ``None`` when the variable is unset or
    invalid. ``0`` and ``1`` are legitimate settings (force-serial for
    the worker cap); anything that is not a non-negative integer
    (``""``, ``"-3"``, ``"abc"``) warns once per distinct raw value —
    keyed in the caller-owned ``warned`` set — and reads as unset.
    """
    raw = os.environ.get(var)
    if raw is None:
        return None
    try:
        value: Optional[int] = int(raw)
    except ValueError:
        value = None
    if value is None or value < 0:
        _warn_once(var, raw, "expected a non-negative integer", warned,
                   stacklevel)
        return None
    return value


def env_tristate(var: str, warned: Set, *, stacklevel: int = 3) -> str:
    """Validated ``"1"``/``"0"``/``"auto"`` gate (``REPRO_NATIVE``,
    ``REPRO_ARTIFACT_CACHE``).

    Unset and invalid values read as ``"auto"``; invalid values warn
    once per distinct raw value in the caller-owned ``warned`` set.
    """
    raw = os.environ.get(var)
    if raw is None:
        return "auto"
    value = raw.strip().lower()
    if value in ("0", "1", "auto"):
        return value
    _warn_once(var, raw, "expected '1', '0', or 'auto'", warned,
               stacklevel)
    return "auto"


def env_str(var: str, warned: Set, *, stacklevel: int = 3) -> Optional[str]:
    """Validated free-form-string gate (``REPRO_FAULT_PLAN``).

    Unset reads as ``None``. Only an empty/whitespace-only value is
    invalid here — it warns once and reads as unset; any other content
    is returned verbatim for the caller to parse (callers apply their
    own grammar with the same warn-once contract at the call site, the
    way :func:`repro.resilience.faults.env_plan` does).
    """
    raw = os.environ.get(var)
    if raw is None:
        return None
    if not raw.strip():
        _warn_once(var, raw, "expected a non-empty value", warned,
                   stacklevel)
        return None
    return raw


def env_path(var: str, default: str, warned: Set, *,
             stacklevel: int = 3) -> Path:
    """Validated directory-path gate (``REPRO_ARTIFACT_DIR``).

    Only an empty/whitespace-only value is invalid (any other string is
    a legitimate directory name — ``"abc"`` and ``"-3"`` are valid
    paths, unlike the integer envs); it warns once and falls back to
    ``default``. The result is user-expanded.
    """
    raw = os.environ.get(var)
    if raw is None:
        return Path(default)
    if not raw.strip():
        _warn_once(var, raw, "expected a directory path", warned,
                   stacklevel)
        return Path(default)
    return Path(os.path.expanduser(raw))

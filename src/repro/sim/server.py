"""Single-core server harness: wire a trace, a scheme, and a core together.

The paper simulates a 6-core CMP where each core runs an independent copy
of the application over a partitioned memory system (Table 2), so cores
are statistically independent; a server run is therefore one core's run
(or several merged, see :func:`repro.experiments.common.run_replicas`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DvfsConfig
from repro.power.model import DEFAULT_CORE_POWER, CorePowerModel
from repro.schemes.base import Scheme, SchemeContext
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request
from repro.sim.trace import Trace

#: Arrival events fire after completions at the same timestamp, so a
#: back-to-back departure/arrival sees the queue already drained.
ARRIVAL_PRIORITY = 1


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated run.

    Metric helpers exclude the warmup prefix (queue fill-in transient)
    unless asked otherwise.
    """

    requests: List[Request]
    warmup: int
    duration_s: float
    energy_j: float
    active_energy_j: float
    idle_energy_j: float
    busy_time_s: float
    utilization: float
    busy_freq_hist: Dict[float, float]
    dvfs_transitions: int
    freq_history: List[Tuple[float, float]]
    segment_log: Optional[List[Tuple[float, float, float]]] = None
    #: Simulator events fired during the run (benchmark denominator for
    #: events/sec; arrivals + completions + DVFS transitions + timers).
    events_processed: int = 0

    # ------------------------------------------------------------------
    def measured(self) -> List[Request]:
        """Completed requests past the warmup prefix."""
        return self.requests[self.warmup:]

    def response_times(self, include_warmup: bool = False) -> np.ndarray:
        reqs = self.requests if include_warmup else self.measured()
        return np.array([r.response_time for r in reqs])

    def service_times(self) -> np.ndarray:
        """Observed service times (start to finish) of measured requests."""
        return np.array(
            [r.finish_time - r.start_time for r in self.measured()])

    def tail_latency(self, pct: float = 95.0) -> float:
        lats = self.response_times()
        if lats.size == 0:
            raise ValueError("no measured requests")
        return float(np.percentile(lats, pct))

    def violation_rate(self, bound_s: float) -> float:
        """Fraction of measured requests above the latency bound."""
        lats = self.response_times()
        if lats.size == 0:
            raise ValueError("no measured requests")
        return float(np.mean(lats > bound_s))

    @property
    def mean_core_power_w(self) -> float:
        """Time-averaged core power (active + sleep) over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.energy_j / self.duration_s

    @property
    def energy_per_request_j(self) -> float:
        """Core energy per completed request (paper Figs. 1a, 9b)."""
        if not self.requests:
            raise ValueError("no completed requests")
        return self.energy_j / len(self.requests)


def run_trace(
    trace: Trace,
    scheme: Scheme,
    context: SchemeContext,
    power_model: CorePowerModel = DEFAULT_CORE_POWER,
    warmup: Optional[int] = None,
    log_segments: bool = False,
    dvfs_config: Optional[DvfsConfig] = None,
    record_freq_history: bool = False,
) -> RunResult:
    """Simulate one core serving ``trace`` under ``scheme``.

    Args:
        trace: the request trace (identical across schemes for fairness).
        scheme: the DVFS policy under test.
        context: latency bound and machine configuration.
        power_model: per-core power model for energy accounting.
        warmup: completed-request prefix excluded from latency metrics
            (default: 2% of the trace, at least 10, at most 200).
        log_segments: record per-segment power for power-over-time plots.
        dvfs_config: overrides ``context.dvfs`` when given.
        record_freq_history: populate ``RunResult.freq_history`` (one
            tuple per DVFS transition). Off by default — only the
            Fig. 1b/10 frequency-trace plots consume it; sweep drivers
            should leave it off.

    Returns:
        RunResult with per-request records and energy accounting.
    """
    sim = Simulator()
    dvfs = dvfs_config if dvfs_config is not None else context.dvfs
    core = Core(sim, dvfs, power_model, log_segments=log_segments,
                record_freq_history=record_freq_history)
    scheme.setup(sim, core, context)

    # An eligible run (stock core, native-path Rubik, no extra
    # instrumentation) hands the whole event loop to the C span kernel;
    # everything it exports is bitwise-identical to the Python loop.
    session = scheme.native_session(sim, core, trace)
    if session is not None:
        session.run()
    else:
        # Arrivals are fed one at a time (each schedules its successor)
        # instead of heaping the whole trace upfront: the heap stays 2-3
        # entries deep, so every push/pop sifts O(1) instead of O(log n).
        # Order is unchanged — the trace is time-sorted, so chained
        # events carry increasing sequence numbers exactly like the
        # upfront loop.
        requests = trace.to_requests()

        def feed(index: int) -> None:
            req = requests[index]
            nxt = index + 1
            if nxt < len(requests):
                sim.schedule_entry(requests[nxt].arrival_time,
                                   (lambda: feed(nxt)),
                                   priority=ARRIVAL_PRIORITY)
            core.enqueue(req)

        if requests:
            sim.schedule_entry(requests[0].arrival_time, (lambda: feed(0)),
                               priority=ARRIVAL_PRIORITY)
        sim.run()
    # The event loop used to advance through trailing FREQ_CHANGE events;
    # with lazy transitions the fully-drained run settles explicitly.
    core.finalize(settle_dvfs=True)

    if warmup is None:
        warmup = min(200, max(10, len(trace) // 50))
    if warmup >= len(core.completed):
        warmup = max(0, len(core.completed) - 1)

    meter = core.meter
    return RunResult(
        requests=core.completed,
        warmup=warmup,
        duration_s=sim.now,
        energy_j=meter.energy_j,
        active_energy_j=meter.active_energy_j,
        idle_energy_j=meter.idle_energy_j,
        busy_time_s=meter.busy_time_s,
        utilization=meter.utilization,
        busy_freq_hist=meter.busy_frequency_histogram(),
        dvfs_transitions=core.dvfs.transitions,
        freq_history=(list(core.dvfs.history)
                      if core.dvfs.history is not None else []),
        segment_log=core.segment_log,
        events_processed=sim.events_processed,
    )

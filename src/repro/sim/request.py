"""Request records: demand, progress, and completion bookkeeping.

A request carries two independent demands (paper Sec. 4.1, "Core DVFS and
memory"):

* ``compute_cycles``: work that scales with core frequency,
* ``memory_time_s``: stall time on LLC/DRAM, invariant to core DVFS.

Execution interleaves the two proportionally: while running at frequency
``f``, a request's remaining wall-clock time is ``C_rem/f + M_rem``, and
progress consumes both budgets at the same fractional rate. This matches
how CPI stacks attribute cycles (compute vs. memory-bound) without
simulating individual misses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(slots=True)
class Request:
    """A single latency-critical request.

    Attributes:
        rid: unique id within a run (arrival order).
        arrival_time: when the request entered the system.
        compute_cycles: total frequency-scalable demand, in cycles.
        memory_time_s: total frequency-invariant stall time, in seconds.
        start_time: when service first began (None while queued).
        finish_time: when service completed (None while in the system).
    """

    rid: int
    arrival_time: float
    compute_cycles: float
    memory_time_s: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    # Fraction of total demand already executed, in [0, 1].
    progress: float = 0.0
    # Hint-based demand prediction available at arrival (None when the
    # workload offers no hints); consumed by Adrenaline-style schemes.
    predicted_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.memory_time_s < 0:
            raise ValueError("demands must be non-negative")
        if self.compute_cycles == 0 and self.memory_time_s == 0:
            raise ValueError("request must have positive demand")

    # ------------------------------------------------------------------
    # Demand accounting
    # ------------------------------------------------------------------
    def service_time_at(self, freq_hz: float) -> float:
        """Total (uninterrupted) service time at a fixed frequency."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.compute_cycles / freq_hz + self.memory_time_s

    def remaining_time_at(self, freq_hz: float) -> float:
        """Wall-clock time to finish the remaining demand at ``freq_hz``."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        rem = 1.0 - self.progress
        return rem * (self.compute_cycles / freq_hz + self.memory_time_s)

    def advance(self, duration: float, freq_hz: float) -> None:
        """Execute for ``duration`` seconds at ``freq_hz``, updating progress."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        total = self.compute_cycles / freq_hz + self.memory_time_s
        if total <= 0:
            self.progress = 1.0
            return
        self.progress = min(1.0, self.progress + duration / total)

    @property
    def elapsed_compute_cycles(self) -> float:
        """Cycles of compute demand already executed (Rubik's ``omega``)."""
        return self.progress * self.compute_cycles

    @property
    def elapsed_memory_time_s(self) -> float:
        """Memory-stall seconds already incurred."""
        return self.progress * self.memory_time_s

    @property
    def done(self) -> bool:
        return self.progress >= 1.0 - 1e-12

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def response_time(self) -> float:
        """End-to-end latency (queueing + service). Requires completion."""
        if self.finish_time is None:
            raise ValueError("request has not finished")
        return self.finish_time - self.arrival_time

    @property
    def queueing_time(self) -> float:
        """Time spent waiting before first service. Requires a start time."""
        if self.start_time is None:
            raise ValueError("request has not started")
        return self.start_time - self.arrival_time

"""Discrete-event server simulation substrate (replaces the paper's zsim
setup; see DESIGN.md Sec. 2 for the substitution argument).

``repro.sim.server`` (the run harness) is imported directly rather than
re-exported here, to keep this package import-safe from scheme modules.
"""

from repro.sim.engine import Simulator
from repro.sim.request import Request
from repro.sim.trace import Trace

__all__ = ["Request", "Simulator", "Trace"]

"""Core execution model: serves LC requests, optionally runs batch work.

The core is a preemptive-resume server with a FIFO queue of latency-
critical requests. Execution honours the two-component demand model
(compute cycles at the current frequency + frequency-invariant memory
time); a DVFS change mid-request advances the request's progress at the
old frequency and reschedules its completion at the new one.

Accounting is batched: closing a segment appends one tuple to an in-core
buffer instead of calling :meth:`EnergyMeter.record`, and the buffer is
integrated vectorized at :meth:`Core.flush_accounting` /
:meth:`Core.finalize` — bitwise-identical totals (see
``EnergyMeter.record_segments``), none of the per-segment cost on the hot
path. DVFS transitions are applied lazily by :class:`DvfsDomain` (no heap
event per change); the core consumes the applied-transition boundaries to
split its segments at the exact apply times, and computes each request's
*final* completion time by walking the domain's transition plan instead
of rescheduling once per frequency change.

Anything reading ``core.meter`` or ``core.segment_log`` mid-run must call
:meth:`Core.flush_accounting` first — that is the flush-hook contract for
schemes that observe live energy (e.g. Pegasus's power telemetry).

When a :class:`BackgroundTask` (a colocated batch app) is attached, the
core runs it whenever the LC queue is empty — the RubikColoc time-sharing
policy (Fig. 13c): LC work preempts batch work instantly, and the first LC
request after a batch interval can be charged extra compute cycles by an
interference model (cold private caches, branch predictor, TLBs).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Protocol

import numpy as np

from repro.config import DvfsConfig
from repro.power.energy import (
    BATCH_CODE as _BATCH_CODE,
    BUSY_CODE as _BUSY_CODE,
    IDLE_CODE as _IDLE_CODE,
    STATE_CODES,
    EnergyMeter,
)
from repro.power.model import CorePowerModel, CoreState
from repro.sim.dvfs import DvfsDomain
from repro.sim.engine import Simulator
from repro.sim.request import Request

#: Completion events fire after frequency changes at the same timestamp.
COMPLETION_PRIORITY = 0

#: Flush the segment buffer once it reaches this many entries, bounding
#: memory on very long runs (flushing mid-run is bitwise-neutral).
_FLUSH_THRESHOLD = 1 << 16


class BackgroundTask(Protocol):
    """A batch application that soaks up idle core time (RubikColoc)."""

    def preferred_frequency(self, dvfs: DvfsConfig) -> float:
        """Frequency the batch app wants to run at (e.g. best TPW)."""

    def run(self, duration_s: float, freq_hz: float) -> None:
        """Account ``duration_s`` of execution at ``freq_hz``."""

    def mem_stall_frac(self, freq_hz: float) -> float:
        """Fraction of wall-clock time stalled on memory at ``freq_hz``."""


class CoreListener(Protocol):
    """Scheme/controller hooks, invoked after the core updates its state."""

    def on_arrival(self, core: "Core", request: Request) -> None: ...

    def on_completion(self, core: "Core", request: Request) -> None: ...


class Core:
    """One simulated core with per-core DVFS and energy accounting."""

    def __init__(
        self,
        sim: Simulator,
        dvfs_config: DvfsConfig,
        power_model: CorePowerModel,
        initial_hz: Optional[float] = None,
        background: Optional[BackgroundTask] = None,
        interference_cycles: Optional[Callable[[float, Request], float]] = None,
        log_segments: bool = False,
        record_freq_history: bool = False,
    ) -> None:
        """Args:
            sim: owning simulator.
            dvfs_config: frequency grid and transition latency.
            power_model: per-core power model for energy accounting.
            initial_hz: starting frequency (defaults to nominal).
            background: optional colocated batch task.
            interference_cycles: optional callable
                ``(batch_interval_s, request) -> extra cycles`` charged to
                the first LC request after the core ran batch work.
            log_segments: record (start, end, power_w) per accounting
                segment, for power-over-time plots (Fig. 10).
            record_freq_history: keep the DVFS domain's (time, frequency)
                transition log (Figs. 1b and 10). Off by default: sweep
                drivers never read it and it grows one tuple per
                transition.
        """
        self.sim = sim
        self.dvfs = DvfsDomain(sim, dvfs_config, initial_hz,
                               on_retarget=self._on_retarget,
                               record_history=record_freq_history)
        self.meter = EnergyMeter(power_model)
        self.queue: Deque[Request] = deque()
        self.current: Optional[Request] = None
        #: Arrival times of current + queued requests, oldest first —
        #: maintained incrementally so per-event controllers can read the
        #: whole system state as one array without walking Request objects.
        self._pending_arrivals: Deque[float] = deque()
        #: Monotone count of queue deltas (admissions + completions),
        #: bumped before the listener hooks fire. Controllers keeping
        #: incremental per-queue state (the Rubik decision kernel) use it
        #: to verify they saw exactly one delta since their last
        #: decision; a skip (mid-run path toggle, shared core) safely
        #: degrades them to a full recompute.
        self.queue_epoch = 0
        self.background = background
        self._interference_cycles = interference_cycles
        self.listeners: List[CoreListener] = []
        self.completed: List[Request] = []
        self.segment_log: Optional[List[tuple]] = [] if log_segments else None

        #: Raw heap entry of the pending completion (see
        #: Simulator.schedule_entry); index 3 is the callback slot.
        self._completion_entry: Optional[list] = None
        #: Closed-but-unintegrated segments:
        #: (start, end, state_code, freq, mem_frac) tuples.
        self._segment_buffer: List[tuple] = []
        #: Drain hook for segments accumulated outside this core (the
        #: native span loop buffers its own rows); called by
        #: :meth:`flush_accounting` *before* the local buffer, since
        #: external rows are chronologically older.
        self._external_flush: Optional[Callable[[], None]] = None
        self._segment_start = sim.now
        self._seg_state = self._idle_state()
        self._seg_code = STATE_CODES[self._seg_state]
        self._seg_freq = self.dvfs.current_hz
        self._seg_mem_frac = 0.0
        self._batch_interval_start: Optional[float] = (
            sim.now if background is not None else None)
        if self.background is not None:
            self.dvfs.request(self.background.preferred_frequency(dvfs_config))
            self._seg_freq = self.dvfs.current_hz
            self._seg_mem_frac = self.background.mem_stall_frac(self._seg_freq)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        return self.dvfs.current_hz

    @property
    def queue_length(self) -> int:
        """Number of LC requests in the system (queued + in service)."""
        return len(self.queue) + (1 if self.current is not None else 0)

    def pending_requests(self) -> List[Request]:
        """Requests currently in the system, oldest (in service) first."""
        reqs: List[Request] = []
        if self.current is not None:
            reqs.append(self.current)
        reqs.extend(self.queue)
        return reqs

    def pending_arrival_times(self) -> np.ndarray:
        """Arrival times of requests in the system, oldest first.

        Served from an incrementally-maintained buffer: O(queue depth)
        float copies, no per-Request attribute walks — the fast path for
        vectorized per-event controllers (Rubik evaluates Eq. 2 over this
        array on every arrival and completion).
        """
        pending = self._pending_arrivals
        return np.fromiter(pending, dtype=float, count=len(pending))

    @property
    def pending_arrivals(self) -> "Deque[float]":
        """Arrival-time buffer (oldest first). Treat as read-only."""
        return self._pending_arrivals

    def add_listener(self, listener: CoreListener) -> None:
        self.listeners.append(listener)

    def current_request_elapsed(self) -> tuple:
        """(elapsed cycles, elapsed memory seconds) of the in-service
        request as of *now*, including the currently open segment.

        This is what Rubik reads from performance counters (``omega`` in
        the paper's Fig. 4) when it conditions the running request's
        completion distribution.
        """
        if self.current is None:
            return 0.0, 0.0
        dvfs = self.dvfs
        if dvfs._unaccounted or (dvfs._pending_target is not None
                                 and self.sim.now >= dvfs._pending_apply_at):
            self._sync_accounting()
        request = self.current
        progress = request.progress
        if self._seg_state is CoreState.BUSY:
            total = (request.compute_cycles / self._seg_freq
                     + request.memory_time_s)
            if total > 0:
                extra = (self.sim.now - self._segment_start) / total
                progress = min(1.0, progress + extra)
        return (progress * request.compute_cycles,
                progress * request.memory_time_s)

    def request_frequency(self, freq_hz: float) -> None:
        """Ask the DVFS domain for ``freq_hz`` (must be on the grid)."""
        self.dvfs.request(freq_hz)

    def enqueue(self, request: Request) -> None:
        """Admit a new LC request (called by the arrival process)."""
        self._pending_arrivals.append(request.arrival_time)
        self.queue_epoch += 1
        if self.current is None:
            self._begin_service(request)
        else:
            self.queue.append(request)
        for listener in self.listeners:
            listener.on_arrival(self, request)

    def flush_accounting(self) -> None:
        """Integrate buffered segments into :attr:`meter` (and
        :attr:`segment_log`).

        The flush-hook contract: anything observing the meter or segment
        log *mid-run* must call this first — the hot path only appends to
        the buffer. Flushing is bitwise-neutral: integration folds into
        the meter's accumulators in strict segment order regardless of
        how many flushes partition the run.
        """
        if self._external_flush is not None:
            self._external_flush()
        buf = self._segment_buffer
        if not buf:
            return
        self._segment_buffer = []
        arr = np.array(buf, dtype=float)
        starts = arr[:, 0]
        ends = arr[:, 1]
        durations = ends - starts
        energies = self.meter.record_segments(
            durations, arr[:, 2], arr[:, 3], arr[:, 4])
        if self.segment_log is not None:
            powers = energies / durations
            self.segment_log.extend(
                zip(starts.tolist(), ends.tolist(), powers.tolist()))

    def finalize(self, settle_dvfs: bool = False) -> None:
        """Close the open accounting segment at the current sim time and
        integrate all buffered segments.

        Call once after the run completes so energy/residency totals cover
        the full simulated interval.

        Args:
            settle_dvfs: also walk the clock through any still-in-flight
                DVFS transition and apply it (see :meth:`DvfsDomain.settle`)
                before closing — what the trailing FREQ_CHANGE events did
                for fully-drained runs. Leave False for runs stopped
                mid-stream (those never fired trailing events).
        """
        if settle_dvfs:
            self.dvfs.settle()
        self._close_segment()
        self._open_segment()
        self.flush_accounting()

    # ------------------------------------------------------------------
    # Service machinery
    # ------------------------------------------------------------------
    def _idle_state(self) -> CoreState:
        return CoreState.BATCH if self.background is not None else CoreState.IDLE

    def _begin_service(self, request: Request) -> None:
        self._close_segment()
        if self._batch_interval_start is not None:
            interval = self.sim.now - self._batch_interval_start
            self._batch_interval_start = None
            if interval > 0 and self._interference_cycles is not None:
                extra = self._interference_cycles(interval, request)
                if extra > 0:
                    request.compute_cycles += extra
        self.current = request
        request.start_time = self.sim.now
        self._schedule_completion()
        self._open_segment()

    def _schedule_completion(self) -> None:
        """Schedule the in-service request's completion at its *final*
        time, walking the DVFS domain's transition plan.

        Replays exactly what the event-driven implementation converged to
        through per-transition reschedules: progress accrues at each
        planned frequency from the last accounted point
        (``_segment_start``), with the same ``advance``/``remaining``
        arithmetic, so the scheduled time is bit-identical. A transition
        wins ties against the provisional finish time (FREQ_CHANGE fired
        before completions at the same timestamp). Called from service
        start and from every retarget (the only points where the plan can
        change); callers guarantee the domain is synced, so the raw
        pending/latched state *is* the future plan (at most two entries —
        see :meth:`DvfsDomain.planned_transitions`, of which this is an
        allocation-free inlining).
        """
        request = self.current
        assert request is not None
        if self._completion_entry is not None:
            self._completion_entry[3] = None  # O(1) lazy cancel
        dvfs = self.dvfs
        progress = request.progress
        prev = self._segment_start
        total = (request.compute_cycles / dvfs._current_hz
                 + request.memory_time_s)
        finish = prev + (1.0 - progress) * total
        pending = dvfs._pending_target
        if pending is not None:
            apply_at = dvfs._pending_apply_at
            if finish >= apply_at:
                progress = min(1.0, progress + (apply_at - prev) / total)
                total = (request.compute_cycles / pending
                         + request.memory_time_s)
                finish = apply_at + (1.0 - progress) * total
                latched = dvfs._latched_target
                if latched is not None and latched != pending:
                    chained_at = (apply_at
                                  + dvfs.config.transition_latency_s)
                    if finish >= chained_at:
                        progress = min(1.0, progress
                                       + (chained_at - apply_at) / total)
                        total = (request.compute_cycles / latched
                                 + request.memory_time_s)
                        finish = chained_at + (1.0 - progress) * total
        self._completion_entry = self.sim.schedule_entry(
            finish, self._on_completion, priority=COMPLETION_PRIORITY)

    def _on_completion(self) -> None:
        request = self.current
        assert request is not None
        self._close_segment()
        request.progress = 1.0
        request.finish_time = self.sim.now
        self.completed.append(request)
        self._pending_arrivals.popleft()  # FIFO: the oldest just finished
        self.queue_epoch += 1
        self.current = None
        self._completion_entry = None
        if self.queue:
            # Queued handoff goes through the same path as a fresh
            # arrival so interference/batch-interval logic can never be
            # bypassed (the interval is None here: the queue was
            # non-empty, so no batch ran in between).
            self._begin_service(self.queue.popleft())
        else:
            if self.background is not None:
                self._batch_interval_start = self.sim.now
            self._open_segment()
        for listener in self.listeners:
            listener.on_completion(self, request)
        # The batch app resumes at its own frequency once the LC queue is
        # empty; schemes may have just requested something else, so this
        # runs after the listener hooks.
        if self.current is None and self.background is not None:
            self.dvfs.request(
                self.background.preferred_frequency(self.dvfs.config))

    def _on_retarget(self) -> None:
        """DVFS-plan change hook: catch up segment accounting (an
        immediate zero-latency apply creates a boundary at *now*) and
        re-derive the in-flight completion time from the new plan."""
        dvfs = self.dvfs
        if dvfs._unaccounted or (dvfs._pending_target is not None
                                 and self.sim.now >= dvfs._pending_apply_at):
            self._sync_accounting()
        if self.current is not None:
            self._schedule_completion()

    # ------------------------------------------------------------------
    # Accounting segments
    # ------------------------------------------------------------------
    def _sync_accounting(self) -> None:
        """Split the open segment at DVFS transitions that have applied
        since it opened (lazily, at their exact apply times).

        Hot-path note: callers guard this call with the same two
        attribute checks inline, so the (overwhelmingly common)
        nothing-to-do case costs no function call.
        """
        dvfs = self.dvfs
        if (dvfs._pending_target is not None
                and self.sim.now >= dvfs._pending_apply_at):
            dvfs._sync()
        if dvfs._unaccounted:
            for apply_at, new_freq in dvfs.take_unaccounted():
                self._consume_boundary(apply_at, new_freq)

    def _consume_boundary(self, at_time: float, new_freq: float) -> None:
        """Close the open segment at a transition's apply time and reopen
        it at the new frequency (occupancy is unchanged by a transition,
        so only frequency and the mem-stall fraction change)."""
        duration = at_time - self._segment_start
        if duration > 0:
            self._segment_buffer.append(
                (self._segment_start, at_time, self._seg_code,
                 self._seg_freq, self._seg_mem_frac))
            if self._seg_state is CoreState.BUSY and self.current is not None:
                self.current.advance(duration, self._seg_freq)
            elif self._seg_state is CoreState.BATCH and self.background is not None:
                self.background.run(duration, self._seg_freq)
        self._segment_start = at_time
        self._seg_freq = new_freq
        if self._seg_state is CoreState.BUSY:
            total = (self.current.compute_cycles / new_freq
                     + self.current.memory_time_s)
            self._seg_mem_frac = (
                self.current.memory_time_s / total if total > 0 else 0.0)
        elif self._seg_state is CoreState.BATCH:
            self._seg_mem_frac = self.background.mem_stall_frac(new_freq)
        else:
            self._seg_mem_frac = 0.0

    def _close_segment(self) -> None:
        now = self.sim.now
        dvfs = self.dvfs
        if dvfs._unaccounted or (dvfs._pending_target is not None
                                 and now >= dvfs._pending_apply_at):
            self._sync_accounting()
        duration = now - self._segment_start
        if duration > 0:
            self._segment_buffer.append(
                (self._segment_start, now,
                 self._seg_code, self._seg_freq,
                 self._seg_mem_frac))
            if self._seg_state is CoreState.BUSY and self.current is not None:
                self.current.advance(duration, self._seg_freq)
            elif self._seg_state is CoreState.BATCH and self.background is not None:
                self.background.run(duration, self._seg_freq)
            if len(self._segment_buffer) >= _FLUSH_THRESHOLD:
                self.flush_accounting()
        self._segment_start = self.sim.now

    def _open_segment(self) -> None:
        # Callers sync accounting (via _close_segment) at the same
        # timestamp first, so the domain's raw frequency is current.
        self._segment_start = self.sim.now
        freq = self.dvfs._current_hz
        if self.current is not None:
            self._seg_state = CoreState.BUSY
            self._seg_code = _BUSY_CODE
            total = (self.current.compute_cycles / freq
                     + self.current.memory_time_s)
            self._seg_mem_frac = (
                self.current.memory_time_s / total if total > 0 else 0.0)
        elif self.background is not None:
            self._seg_state = CoreState.BATCH
            self._seg_code = _BATCH_CODE
            self._seg_mem_frac = self.background.mem_stall_frac(freq)
        else:
            self._seg_state = CoreState.IDLE
            self._seg_code = _IDLE_CODE
            self._seg_mem_frac = 0.0
        self._seg_freq = freq

"""Core execution model: serves LC requests, optionally runs batch work.

The core is a preemptive-resume server with a FIFO queue of latency-
critical requests. Execution honours the two-component demand model
(compute cycles at the current frequency + frequency-invariant memory
time); a DVFS change mid-request advances the request's progress at the
old frequency and reschedules its completion at the new one.

When a :class:`BackgroundTask` (a colocated batch app) is attached, the
core runs it whenever the LC queue is empty — the RubikColoc time-sharing
policy (Fig. 13c): LC work preempts batch work instantly, and the first LC
request after a batch interval can be charged extra compute cycles by an
interference model (cold private caches, branch predictor, TLBs).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Protocol

import numpy as np

from repro.config import DvfsConfig
from repro.power.energy import EnergyMeter
from repro.power.model import CorePowerModel, CoreState
from repro.sim.dvfs import DvfsDomain
from repro.sim.engine import Event, Simulator
from repro.sim.request import Request

#: Completion events fire after frequency changes at the same timestamp.
COMPLETION_PRIORITY = 0


class BackgroundTask(Protocol):
    """A batch application that soaks up idle core time (RubikColoc)."""

    def preferred_frequency(self, dvfs: DvfsConfig) -> float:
        """Frequency the batch app wants to run at (e.g. best TPW)."""

    def run(self, duration_s: float, freq_hz: float) -> None:
        """Account ``duration_s`` of execution at ``freq_hz``."""

    def mem_stall_frac(self, freq_hz: float) -> float:
        """Fraction of wall-clock time stalled on memory at ``freq_hz``."""


class CoreListener(Protocol):
    """Scheme/controller hooks, invoked after the core updates its state."""

    def on_arrival(self, core: "Core", request: Request) -> None: ...

    def on_completion(self, core: "Core", request: Request) -> None: ...


class Core:
    """One simulated core with per-core DVFS and energy accounting."""

    def __init__(
        self,
        sim: Simulator,
        dvfs_config: DvfsConfig,
        power_model: CorePowerModel,
        initial_hz: Optional[float] = None,
        background: Optional[BackgroundTask] = None,
        interference_cycles: Optional[Callable[[float, Request], float]] = None,
        log_segments: bool = False,
    ) -> None:
        """Args:
            sim: owning simulator.
            dvfs_config: frequency grid and transition latency.
            power_model: per-core power model for energy accounting.
            initial_hz: starting frequency (defaults to nominal).
            background: optional colocated batch task.
            interference_cycles: optional callable
                ``(batch_interval_s, request) -> extra cycles`` charged to
                the first LC request after the core ran batch work.
            log_segments: record (start, end, power_w) per accounting
                segment, for power-over-time plots (Fig. 10).
        """
        self.sim = sim
        self.dvfs = DvfsDomain(sim, dvfs_config, initial_hz,
                               on_change=self._on_frequency_change)
        self.meter = EnergyMeter(power_model)
        self.queue: Deque[Request] = deque()
        self.current: Optional[Request] = None
        #: Arrival times of current + queued requests, oldest first —
        #: maintained incrementally so per-event controllers can read the
        #: whole system state as one array without walking Request objects.
        self._pending_arrivals: Deque[float] = deque()
        self.background = background
        self._interference_cycles = interference_cycles
        self.listeners: List[CoreListener] = []
        self.completed: List[Request] = []
        self.segment_log: Optional[List[tuple]] = [] if log_segments else None

        self._completion_event: Optional[Event] = None
        self._segment_start = sim.now
        self._seg_state = self._idle_state()
        self._seg_freq = self.dvfs.current_hz
        self._seg_mem_frac = 0.0
        self._batch_interval_start: Optional[float] = (
            sim.now if background is not None else None)
        if self.background is not None:
            self.dvfs.request(self.background.preferred_frequency(dvfs_config))
            self._seg_freq = self.dvfs.current_hz
            self._seg_mem_frac = self.background.mem_stall_frac(self._seg_freq)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        return self.dvfs.current_hz

    @property
    def queue_length(self) -> int:
        """Number of LC requests in the system (queued + in service)."""
        return len(self.queue) + (1 if self.current is not None else 0)

    def pending_requests(self) -> List[Request]:
        """Requests currently in the system, oldest (in service) first."""
        reqs: List[Request] = []
        if self.current is not None:
            reqs.append(self.current)
        reqs.extend(self.queue)
        return reqs

    def pending_arrival_times(self) -> np.ndarray:
        """Arrival times of requests in the system, oldest first.

        Served from an incrementally-maintained buffer: O(queue depth)
        float copies, no per-Request attribute walks — the fast path for
        vectorized per-event controllers (Rubik evaluates Eq. 2 over this
        array on every arrival and completion).
        """
        pending = self._pending_arrivals
        return np.fromiter(pending, dtype=float, count=len(pending))

    @property
    def pending_arrivals(self) -> "Deque[float]":
        """Arrival-time buffer (oldest first). Treat as read-only."""
        return self._pending_arrivals

    def add_listener(self, listener: CoreListener) -> None:
        self.listeners.append(listener)

    def current_request_elapsed(self) -> tuple:
        """(elapsed cycles, elapsed memory seconds) of the in-service
        request as of *now*, including the currently open segment.

        This is what Rubik reads from performance counters (``omega`` in
        the paper's Fig. 4) when it conditions the running request's
        completion distribution.
        """
        if self.current is None:
            return 0.0, 0.0
        request = self.current
        progress = request.progress
        if self._seg_state is CoreState.BUSY:
            total = (request.compute_cycles / self._seg_freq
                     + request.memory_time_s)
            if total > 0:
                extra = (self.sim.now - self._segment_start) / total
                progress = min(1.0, progress + extra)
        return (progress * request.compute_cycles,
                progress * request.memory_time_s)

    def request_frequency(self, freq_hz: float) -> None:
        """Ask the DVFS domain for ``freq_hz`` (must be on the grid)."""
        self.dvfs.request(freq_hz)

    def enqueue(self, request: Request) -> None:
        """Admit a new LC request (called by the arrival process)."""
        self._pending_arrivals.append(request.arrival_time)
        if self.current is None:
            self._begin_service(request)
        else:
            self.queue.append(request)
        for listener in self.listeners:
            listener.on_arrival(self, request)

    def finalize(self) -> None:
        """Close the open accounting segment at the current sim time.

        Call once after the run completes so energy/residency totals cover
        the full simulated interval.
        """
        self._close_segment()
        self._open_segment()

    # ------------------------------------------------------------------
    # Service machinery
    # ------------------------------------------------------------------
    def _idle_state(self) -> CoreState:
        return CoreState.BATCH if self.background is not None else CoreState.IDLE

    def _begin_service(self, request: Request) -> None:
        self._close_segment()
        if self._batch_interval_start is not None:
            interval = self.sim.now - self._batch_interval_start
            self._batch_interval_start = None
            if interval > 0 and self._interference_cycles is not None:
                extra = self._interference_cycles(interval, request)
                if extra > 0:
                    request.compute_cycles += extra
        self.current = request
        request.start_time = self.sim.now
        self._schedule_completion()
        self._open_segment()

    def _schedule_completion(self) -> None:
        assert self.current is not None
        if self._completion_event is not None:
            self._completion_event.cancel()
        remaining = self.current.remaining_time_at(self.dvfs.current_hz)
        self._completion_event = self.sim.schedule_after(
            remaining, self._on_completion, priority=COMPLETION_PRIORITY)

    def _on_completion(self) -> None:
        request = self.current
        assert request is not None
        self._close_segment()
        request.progress = 1.0
        request.finish_time = self.sim.now
        self.completed.append(request)
        self._pending_arrivals.popleft()  # FIFO: the oldest just finished
        self.current = None
        self._completion_event = None
        if self.queue:
            nxt = self.queue.popleft()
            nxt.start_time = self.sim.now
            self.current = nxt
            self._schedule_completion()
        elif self.background is not None:
            self._batch_interval_start = self.sim.now
        self._open_segment()
        for listener in self.listeners:
            listener.on_completion(self, request)
        # The batch app resumes at its own frequency once the LC queue is
        # empty; schemes may have just requested something else, so this
        # runs after the listener hooks.
        if self.current is None and self.background is not None:
            self.dvfs.request(
                self.background.preferred_frequency(self.dvfs.config))

    def _on_frequency_change(self, old_hz: float, new_hz: float) -> None:
        del old_hz  # progress was advanced when the segment closed
        self._close_segment()
        if self.current is not None:
            self._schedule_completion()
        self._open_segment()

    # ------------------------------------------------------------------
    # Accounting segments
    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        duration = self.sim.now - self._segment_start
        if duration > 0:
            energy = self.meter.record(
                duration, self._seg_state, self._seg_freq, self._seg_mem_frac)
            if self.segment_log is not None:
                self.segment_log.append(
                    (self._segment_start, self.sim.now, energy / duration))
            if self._seg_state is CoreState.BUSY and self.current is not None:
                self.current.advance(duration, self._seg_freq)
            elif self._seg_state is CoreState.BATCH and self.background is not None:
                self.background.run(duration, self._seg_freq)
        self._segment_start = self.sim.now

    def _open_segment(self) -> None:
        self._segment_start = self.sim.now
        freq = self.dvfs.current_hz
        if self.current is not None:
            self._seg_state = CoreState.BUSY
            total = (self.current.compute_cycles / freq
                     + self.current.memory_time_s)
            self._seg_mem_frac = (
                self.current.memory_time_s / total if total > 0 else 0.0)
        elif self.background is not None:
            self._seg_state = CoreState.BATCH
            self._seg_mem_frac = self.background.mem_stall_frac(freq)
        else:
            self._seg_state = CoreState.IDLE
            self._seg_mem_frac = 0.0
        self._seg_freq = freq

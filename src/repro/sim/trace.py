"""Request traces: generation, capture, and replay.

The paper's trace-driven characterization (Sec. 5.3) captures per-request
arrival times, core cycles, and memory-bound times, then replays the trace
under different schemes so all schemes see identical work. :class:`Trace`
is that artifact: a columnar record of demands that can be turned into
fresh :class:`~repro.sim.request.Request` objects for event-driven
simulation, or replayed analytically (the oracles).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.sim.arrivals import LoadSchedule, generate_poisson_arrivals
from repro.sim.request import Request
from repro.workloads.base import AppProfile


@dataclasses.dataclass
class Trace:
    """Columnar request trace (arrival order).

    Attributes:
        arrivals: arrival times, seconds, nondecreasing.
        compute_cycles: frequency-scalable demand per request.
        memory_time_s: frequency-invariant demand per request.
        predicted_cycles: hint-based demand predictions available at
            arrival (Adrenaline's input); defaults to the true demand.
    """

    arrivals: np.ndarray
    compute_cycles: np.ndarray
    memory_time_s: np.ndarray
    predicted_cycles: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.arrivals)
        if len(self.compute_cycles) != n or len(self.memory_time_s) != n:
            raise ValueError("trace columns must have equal length")
        if n == 0:
            raise ValueError("trace must contain at least one request")
        if np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrivals must be nondecreasing")
        if self.predicted_cycles is None:
            self.predicted_cycles = np.asarray(self.compute_cycles,
                                               dtype=float).copy()
        elif len(self.predicted_cycles) != n:
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.arrivals)

    @classmethod
    def generate(
        cls,
        app: AppProfile,
        schedule: LoadSchedule,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> "Trace":
        """Sample a trace for ``app`` under the given arrival schedule.

        Args:
            app: application service-demand model.
            schedule: arrival-rate schedule.
            num_requests: number of requests (defaults to the app's paper
                request count, Table 3).
            seed: RNG seed (one seed drives arrivals and demands).
        """
        n = num_requests if num_requests is not None else app.num_requests
        rng = np.random.default_rng(seed)
        arrivals = generate_poisson_arrivals(schedule, n, rng)
        cycles, memory_s = app.sample_demands(n, rng)
        predicted = app.predict_demands(cycles, rng)
        return cls(arrivals, cycles, memory_s, predicted)

    @classmethod
    def generate_at_load(
        cls,
        app: AppProfile,
        load: float,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> "Trace":
        """Convenience: constant-load trace (load relative to saturation)."""
        schedule = LoadSchedule.constant(app.rate_for_load(load))
        return cls.generate(app, schedule, num_requests, seed)

    def to_requests(self) -> List[Request]:
        """Materialize fresh Request objects (independent per replay)."""
        return [
            Request(
                rid=i,
                arrival_time=float(self.arrivals[i]),
                compute_cycles=float(self.compute_cycles[i]),
                memory_time_s=float(self.memory_time_s[i]),
                predicted_cycles=float(self.predicted_cycles[i]),
            )
            for i in range(len(self))
        ]

    def service_times_at(self, freq_hz: float) -> np.ndarray:
        """Per-request service time at a fixed frequency."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.compute_cycles / freq_hz + self.memory_time_s

    def duration(self) -> float:
        """Time span of the arrival process."""
        return float(self.arrivals[-1] - self.arrivals[0])

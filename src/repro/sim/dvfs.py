"""Per-core DVFS domain with realistic transition latencies.

Models the paper's FIVR-style per-core regulator (Table 2): frequency
changes are requested at any time but take ``transition_latency_s`` to take
effect, during which the core keeps running at the old frequency
(conservative). Only one transition can be in flight at a time — a request
issued mid-transition is latched and starts after the in-flight one
completes, which reproduces the back-to-back change behaviour that limits
Rubik on real hardware (Sec. 5.5, 130 us observed latency).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import DvfsConfig
from repro.sim.engine import Event, Simulator

#: Event priority for frequency-change effects: fire before completions at
#: the same timestamp so the new frequency is visible to them.
FREQ_CHANGE_PRIORITY = -1


class DvfsDomain:
    """Frequency state machine for one core."""

    def __init__(
        self,
        sim: Simulator,
        config: DvfsConfig,
        initial_hz: Optional[float] = None,
        on_change: Optional[Callable[[float, float], None]] = None,
    ) -> None:
        """Args:
            sim: owning simulator.
            config: frequency grid and transition latency.
            initial_hz: starting frequency (defaults to nominal); must be
                on the grid.
            on_change: callback ``(old_hz, new_hz)`` fired when a change
                takes effect (used by the core to reschedule completions
                and close energy segments).
        """
        self.sim = sim
        self.config = config
        start = config.nominal_hz if initial_hz is None else initial_hz
        if start not in config.frequencies:
            raise ValueError(f"initial frequency {start} not on the grid")
        self.current_hz = start
        self.on_change = on_change
        self._pending_target: Optional[float] = None
        self._pending_event: Optional[Event] = None
        self._latched_target: Optional[float] = None
        self.transitions = 0
        #: (time, frequency) log of applied changes, for Figs. 1b and 10.
        self.history = [(sim.now, start)]

    # ------------------------------------------------------------------
    def effective_target(self) -> float:
        """The frequency the domain is heading to (or already at)."""
        if self._latched_target is not None:
            return self._latched_target
        if self._pending_target is not None:
            return self._pending_target
        return self.current_hz

    def request(self, target_hz: float) -> None:
        """Request a change to ``target_hz`` (must be on the grid)."""
        if not self.config.on_grid(target_hz):
            raise ValueError(f"frequency {target_hz} not on the grid")
        if target_hz == self.effective_target():
            return
        if self._pending_target is not None:
            # A transition is in flight: latch the newest target.
            self._latched_target = target_hz
            return
        self._begin_transition(target_hz)

    def request_at_least(self, min_hz: float) -> None:
        """Request the smallest grid frequency >= ``min_hz``."""
        self.request(self.config.quantize_up(min_hz))

    def _begin_transition(self, target_hz: float) -> None:
        if self.config.transition_latency_s <= 0:
            self._apply(target_hz)
            return
        self._pending_target = target_hz
        self._pending_event = self.sim.schedule_after(
            self.config.transition_latency_s,
            self._on_transition_done,
            priority=FREQ_CHANGE_PRIORITY,
        )

    def _on_transition_done(self) -> None:
        target = self._pending_target
        self._pending_target = None
        self._pending_event = None
        assert target is not None
        self._apply(target)
        if self._latched_target is not None:
            nxt = self._latched_target
            self._latched_target = None
            if nxt != self.current_hz:
                self._begin_transition(nxt)

    def _apply(self, target_hz: float) -> None:
        old = self.current_hz
        if target_hz == old:
            return
        self.current_hz = target_hz
        self.transitions += 1
        self.history.append((self.sim.now, target_hz))
        if self.on_change is not None:
            self.on_change(old, target_hz)

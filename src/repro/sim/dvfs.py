"""Per-core DVFS domain with realistic transition latencies.

Models the paper's FIVR-style per-core regulator (Table 2): frequency
changes are requested at any time but take ``transition_latency_s`` to take
effect, during which the core keeps running at the old frequency
(conservative). Only one transition can be in flight at a time — a request
issued mid-transition is latched and starts after the in-flight one
completes, which reproduces the back-to-back change behaviour that limits
Rubik on real hardware (Sec. 5.5, 130 us observed latency).

Transitions are applied *lazily*: because the latency is a constant, the
apply time of every in-flight change is known the moment it is requested,
so no simulator event is needed — the domain catches up whenever the clock
is read (``current_hz``) or the state machine is touched. This removes one
heap event per transition (historically ~40% of a Rubik run's events); the
future transition plan is exposed through :meth:`planned_transitions` so
the core can schedule each request's *final* completion time directly
instead of rescheduling it once per frequency change.

End-of-run contract: a drained event loop no longer advances the clock
through in-flight transitions. Drivers that previously relied on trailing
``FREQ_CHANGE`` events (e.g. ``run_trace``) call :meth:`settle`, which
walks the clock to the remaining apply times. Drivers that stop mid-stream
(the colocation loop, ``run(until=...)``) simply don't — matching the old
behaviour of never firing events past the stop point. (One granularity
caveat: loops that test a stop condition *per event* now do so at
arrival/completion/timer events only, since transitions no longer appear
on the heap — see the colocation loop's horizon-cap note.)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.config import DvfsConfig
from repro.sim.engine import Simulator

_NO_TRANSITIONS: Tuple[Tuple[float, float], ...] = ()


class DvfsDomain:
    """Frequency state machine for one core."""

    def __init__(
        self,
        sim: Simulator,
        config: DvfsConfig,
        initial_hz: Optional[float] = None,
        on_retarget: Optional[Callable[[], None]] = None,
        record_history: bool = False,
    ) -> None:
        """Args:
            sim: owning simulator.
            config: frequency grid and transition latency.
            initial_hz: starting frequency (defaults to nominal); must be
                on the grid.
            on_retarget: callback fired whenever the future transition
                plan changes (a request was accepted, latched, or applied
                immediately). The core uses it to re-derive the in-flight
                request's completion time and to catch up segment
                accounting. When set, the domain also records applied
                transitions in an *unaccounted* list the core drains to
                split its energy segments at the exact apply times.
            record_history: keep the ``(time, frequency)`` log of applied
                changes. Off by default — only the Fig. 1b/10 frequency-
                trace plots consume it, and one tuple per transition adds
                up over long sweep runs.
        """
        self.sim = sim
        self.config = config
        # Hoisted O(1) grid membership: request() runs twice per
        # simulated event and a method call dominates the set probe.
        self._grid_set = config._freq_set
        start = config.nominal_hz if initial_hz is None else initial_hz
        if start not in config.frequencies:
            raise ValueError(f"initial frequency {start} not on the grid")
        self._current_hz = start
        self.on_retarget = on_retarget
        self._pending_target: Optional[float] = None
        self._pending_apply_at = 0.0
        self._latched_target: Optional[float] = None
        self.transitions = 0
        #: (time, frequency) log of applied changes, for Figs. 1b and 10;
        #: None unless ``record_history`` was requested.
        self.history: Optional[List[Tuple[float, float]]] = (
            [(sim.now, start)] if record_history else None)
        #: Applied transitions the accounting consumer has not yet split
        #: its segments at; maintained only when a consumer exists.
        self._unaccounted: List[Tuple[float, float]] = []
        self._track_boundaries = on_retarget is not None

    # ------------------------------------------------------------------
    @property
    def current_hz(self) -> float:
        """Frequency in effect at the current simulation time."""
        if (self._pending_target is not None
                and self.sim.now >= self._pending_apply_at):
            self._sync()
        return self._current_hz

    def effective_target(self) -> float:
        """The frequency the domain is heading to (or already at)."""
        self._sync()
        if self._latched_target is not None:
            return self._latched_target
        if self._pending_target is not None:
            return self._pending_target
        return self._current_hz

    def request(self, target_hz: float) -> None:
        """Request a change to ``target_hz`` (must be on the grid)."""
        if target_hz not in self._grid_set:
            raise ValueError(f"frequency {target_hz} not on the grid")
        if self._pending_target is None:
            # Nothing in flight (the common case): no lazy state to
            # apply, redundant requests return after one comparison.
            if target_hz == self._current_hz:
                return
        else:
            self._sync()
        if target_hz == self._effective_target_synced():
            return
        if self._pending_target is not None:
            # A transition is in flight: latch the newest target.
            self._latched_target = target_hz
        else:
            latency = self.config.transition_latency_s
            if latency <= 0:
                self._apply(target_hz, self.sim.now)
            else:
                self._pending_target = target_hz
                self._pending_apply_at = self.sim.now + latency
        if self.on_retarget is not None:
            self.on_retarget()

    def request_at_least(self, min_hz: float) -> None:
        """Request the smallest grid frequency >= ``min_hz``."""
        self.request(self.config.quantize_up(min_hz))

    def planned_transitions(self) -> Tuple[Tuple[float, float], ...]:
        """Future ``(apply_time, frequency)`` changes, soonest first.

        At most two entries: the in-flight transition and, if a different
        target is latched behind it, the back-to-back follow-up (which
        starts when the in-flight one lands, so its apply time is fixed
        too). A latched target equal to the in-flight one is skipped at
        apply time and is therefore not reported.
        """
        self._sync()
        pending = self._pending_target
        if pending is None:
            return _NO_TRANSITIONS
        latched = self._latched_target
        if latched is None or latched == pending:
            return ((self._pending_apply_at, pending),)
        return ((self._pending_apply_at, pending),
                (self._pending_apply_at + self.config.transition_latency_s,
                 latched))

    def settle(self) -> None:
        """Advance the clock through any in-flight transitions and apply
        them, reproducing what the trailing FREQ_CHANGE events of the
        event-driven implementation did after the last real event.

        Only valid when no earlier simulator events are pending (i.e.
        after a full drain); :meth:`Simulator.advance_to` enforces that.
        """
        while self._pending_target is not None:
            if self._pending_apply_at > self.sim.now:
                self.sim.advance_to(self._pending_apply_at)
            self._sync()

    def take_unaccounted(self) -> List[Tuple[float, float]]:
        """Drain the applied-transition list (for segment accounting)."""
        out = self._unaccounted
        if out:
            self._unaccounted = []
        return out

    # ------------------------------------------------------------------
    def _effective_target_synced(self) -> float:
        if self._latched_target is not None:
            return self._latched_target
        if self._pending_target is not None:
            return self._pending_target
        return self._current_hz

    def _sync(self) -> None:
        """Apply every in-flight transition whose time has come.

        Equivalent to the FREQ_CHANGE events having fired: the in-flight
        target lands at its apply time, then a latched target (if any,
        and different from the new frequency) starts its own
        ``transition_latency_s`` countdown from that moment.
        """
        while (self._pending_target is not None
               and self.sim.now >= self._pending_apply_at):
            target = self._pending_target
            applied_at = self._pending_apply_at
            self._pending_target = None
            self._apply(target, applied_at)
            if self._latched_target is not None:
                nxt = self._latched_target
                self._latched_target = None
                if nxt != self._current_hz:
                    # Latency is always > 0 here: zero-latency domains
                    # apply immediately and never latch.
                    self._pending_target = nxt
                    self._pending_apply_at = (
                        applied_at + self.config.transition_latency_s)

    def _apply(self, target_hz: float, at_time: float) -> None:
        old = self._current_hz
        if target_hz == old:
            return
        self._current_hz = target_hz
        self.transitions += 1
        if self.history is not None:
            self.history.append((at_time, target_hz))
        if self._track_boundaries:
            self._unaccounted.append((at_time, target_hz))

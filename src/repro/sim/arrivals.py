"""Arrival processes: Poisson streams with (possibly time-varying) load.

The paper's clients produce exponentially distributed interarrival times (a
Markov input process, Sec. 5.1). Load is expressed as a fraction of the
saturation rate at nominal frequency; :class:`LoadSchedule` supports the
step patterns used in Figs. 1b and 10 (e.g. 25% -> 50% -> 75%).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class LoadSchedule:
    """Piecewise-constant arrival-rate schedule.

    Attributes:
        steps: (start_time_s, rate_qps) pairs with increasing start times;
            the first start time must be 0. Each rate applies from its
            start time until the next step (or forever for the last).
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        if self.steps[0][0] != 0.0:
            raise ValueError("first step must start at time 0")
        times = [t for t, _ in self.steps]
        if times != sorted(times) or len(set(times)) != len(times):
            raise ValueError("step times must be strictly increasing")
        if any(rate < 0 for _, rate in self.steps):
            raise ValueError("rates must be non-negative")

    @classmethod
    def constant(cls, rate_qps: float) -> "LoadSchedule":
        return cls(((0.0, rate_qps),))

    @classmethod
    def from_loads(cls, load_steps: Sequence[Tuple[float, float]],
                   saturation_qps: float) -> "LoadSchedule":
        """Build from (start_time, load fraction) steps.

        ``load fraction`` is relative to ``saturation_qps``, the rate that
        saturates one core at nominal frequency (the paper's "100% load").
        """
        if saturation_qps <= 0:
            raise ValueError("saturation rate must be positive")
        return cls(tuple((t, frac * saturation_qps) for t, frac in load_steps))

    def rate_at(self, time: float) -> float:
        """Arrival rate in effect at ``time``."""
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if time >= start:
                rate = step_rate
            else:
                break
        return rate

    def mean_rate(self, horizon_s: float) -> float:
        """Time-averaged rate over [0, horizon_s]."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        total = 0.0
        for i, (start, rate) in enumerate(self.steps):
            if start >= horizon_s:
                break
            end = self.steps[i + 1][0] if i + 1 < len(self.steps) else horizon_s
            total += rate * (min(end, horizon_s) - start)
        return total / horizon_s


def generate_poisson_arrivals(
    schedule: LoadSchedule,
    num_requests: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_requests`` arrival times from a Poisson process whose
    rate follows ``schedule``.

    Uses per-interval exponential gaps; when a gap crosses a schedule step
    the remaining exponential "work" is rescaled to the new rate (standard
    thinning-free simulation of a piecewise-constant-rate Poisson process,
    exploiting the memoryless property).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    arrivals = np.empty(num_requests)
    t = 0.0
    step_idx = 0
    steps: List[Tuple[float, float]] = list(schedule.steps)
    for i in range(num_requests):
        # Exponential(1) work to consume at the current (varying) rate.
        work = rng.exponential(1.0)
        while True:
            rate = steps[step_idx][1]
            next_change = (
                steps[step_idx + 1][0] if step_idx + 1 < len(steps) else np.inf
            )
            if rate <= 0:
                # Zero-rate interval: jump to the next change point.
                if next_change == np.inf:
                    raise ValueError(
                        "schedule rate dropped to zero forever; cannot "
                        f"generate request {i}")
                t = next_change
                step_idx += 1
                continue
            dt = work / rate
            if t + dt <= next_change:
                t += dt
                break
            # Consume the portion of the exponential within this interval.
            work -= (next_change - t) * rate
            t = next_change
            step_idx += 1
        arrivals[i] = t
    return arrivals

"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are (time, priority, sequence)
ordered, so simultaneous events fire in a well-defined order and runs are
exactly reproducible for a given seed. Events can be cancelled (completion
events are cancelled and rescheduled whenever a frequency change alters an
in-flight request's finish time).

The heap holds plain ``[time, priority, seq, callback]`` lists rather than
:class:`Event` objects: sift comparisons then run entirely in C on the
leading floats/ints (``seq`` is unique, so the callback is never compared)
instead of bouncing through ``Event.__lt__`` — heap traffic is the
simulator's per-event floor, and Python-level comparisons used to be ~25%
of a Rubik run's wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

#: Heap entry field indices.
_TIME, _PRIORITY, _SEQ, _CALLBACK = 0, 1, 2, 3


class Event:
    """Handle for a scheduled callback. Cancel via :meth:`cancel`."""

    __slots__ = ("_entry",)

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None]) -> None:
        self._entry = [time, priority, seq, callback]

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def priority(self) -> int:
        return self._entry[_PRIORITY]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1) lazy deletion)."""
        self._entry[_CALLBACK] = None


class Simulator:
    """Event-driven simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = itertools.count()
        self.now = 0.0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, time: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` at simulated ``time``.

        Args:
            time: absolute simulation time; must not be in the past.
            callback: zero-argument callable invoked when the event fires.
            priority: tie-break for simultaneous events (lower fires first).
        """
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time} before now={self.now}")
        event = Event(max(time, self.now), priority, next(self._seq), callback)
        heapq.heappush(self._heap, event._entry)
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback, priority)

    def schedule_entry(self, time: float, callback: Callable[[], None],
                       priority: int = 0) -> list:
        """Raw-entry scheduling fast path for per-event hot loops.

        Same ordering semantics as :meth:`schedule` but returns the bare
        heap entry instead of wrapping it in an :class:`Event`; cancel by
        setting ``entry[3] = None``. The caller guarantees ``time`` is
        not in the past (completion times are computed from the current
        clock, so the validation would never fire).
        """
        entry = [time if time > self.now else self.now, priority,
                 next(self._seq), callback]
        heapq.heappush(self._heap, entry)
        return entry

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0][_TIME] if self._heap else None

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing an event.

        Used by lazily-applied state machines (e.g. an in-flight DVFS
        transition) to settle past the last event of a drained run, where
        the event loop no longer advances the clock for them. Refuses to
        jump over pending events — that would fire them out of order.
        """
        if time <= self.now:
            return
        nxt = self.peek_time()
        if nxt is not None and nxt < time:
            raise ValueError(
                f"cannot advance to {time}: event pending at {nxt}")
        self.now = time

    def absorb_span(self, now: float, events: int) -> None:
        """Commit a batch of externally-simulated events: advance the
        clock and account ``events`` without touching the heap.

        Used by the native event-step kernel, which owns every event of
        an eligible run (see :mod:`repro.core._native.session`) and
        reports back at surfacing points. Only valid while the heap is
        empty — the span loop cannot coexist with scheduled events.
        """
        self._drop_cancelled()
        if self._heap:
            raise ValueError("cannot absorb a span with events pending")
        if now < self.now:
            raise ValueError(
                f"cannot absorb a span ending at {now} before now={self.now}")
        self.now = now
        self._events_processed += events

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][_CALLBACK] is None:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the next event. Returns False when no events remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry[_TIME]
        self._events_processed += 1
        entry[_CALLBACK]()
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired (whichever comes first).

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` so post-run measurements (e.g. energy integration) cover
        the full interval.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return
            while heap and heap[0][_CALLBACK] is None:
                pop(heap)
            if not heap:
                if until is not None:
                    self.now = max(self.now, until)
                return
            entry = heap[0]
            if until is not None and entry[_TIME] > until:
                self.now = until
                return
            pop(heap)
            self.now = entry[_TIME]
            self._events_processed += 1
            entry[_CALLBACK]()
            fired += 1

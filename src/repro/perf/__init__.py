"""Performance subsystem: parallel experiment execution and benchmarks.

This package hosts the infrastructure that keeps the repo's experiment
matrix (load sweeps, datacenter comparisons, CDF studies) fast:

* :mod:`repro.perf.parallel` — a ``multiprocessing``-based sweep executor
  with a deterministic serial fallback plus a persistent shared
  :class:`~repro.perf.parallel.WorkerPool`, used by every experiment
  driver and by the ``python -m repro.experiments`` regenerate-all CLI.

The hot-path *algorithmic* fast paths (cached histogram CDFs/FFTs,
shared-convolution tail-table builds, the vectorized Rubik controller)
live with their subsystems under :mod:`repro.core`; ``benchmarks/
run_bench.py`` times both layers and records the tracked perf trajectory
(``BENCH_*.json``).
"""

from repro.perf.parallel import (
    WorkerPool,
    effective_workers,
    parallel_map,
    pools_created,
    shared_pool,
)

__all__ = ["WorkerPool", "effective_workers", "parallel_map",
           "pools_created", "shared_pool"]

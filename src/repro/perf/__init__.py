"""Performance subsystem: parallel experiment execution and benchmarks.

This package hosts the infrastructure that keeps the repo's experiment
matrix (load sweeps, datacenter comparisons, CDF studies) fast:

* :mod:`repro.perf.parallel` — a ``multiprocessing``-based sweep executor
  with a deterministic serial fallback, used by the Fig. 9/15/16 and
  Fig. 7/8 experiment drivers.

The hot-path *algorithmic* fast paths (cached histogram CDFs/FFTs,
shared-convolution tail-table builds, the vectorized Rubik controller)
live with their subsystems under :mod:`repro.core`; ``benchmarks/
run_bench.py`` times both layers and records the tracked perf trajectory
(``BENCH_*.json``).
"""

from repro.perf.parallel import effective_workers, parallel_map

__all__ = ["effective_workers", "parallel_map"]

"""Multiprocessing sweep executor with a deterministic serial fallback.

Experiment drivers fan out over *independent* evaluation points (loads,
(app, mix) pairs, seeds). Each point re-derives everything it needs from
plain picklable arguments (app names, loads, seeds), so worker processes
never share simulator state and results are bitwise-identical to a serial
run — parallelism only reorders wall-clock, never data.

Usage:

    results = parallel_map(_point_worker, args_list, processes=None)

    with WorkerPool() as pool:          # regenerate-all flow
        run_fig6(...)                   # every parallel_map inside the
        run_table1(...)                 # block reuses ONE pool

* ``processes=None`` auto-sizes to ``min(cpu_count, len(items))``.
* One CPU (or one item, or ``processes=1``) short-circuits to an in-
  process list comprehension: no pool, no pickling, no nondeterminism in
  logging order. This keeps single-core CI machines and tests on the
  exact serial path.
* The ``REPRO_MAX_WORKERS`` environment variable caps the pool globally
  (``0`` or ``1`` forces serial), so shared machines can be throttled
  without touching call sites. Invalid values (non-integer or negative)
  warn once and are treated as unset.
* Inside a :class:`WorkerPool` context, ``parallel_map`` dispatches onto
  the shared persistent pool instead of spawning a fresh one per call;
  the pool itself is created lazily on the first dispatch that actually
  needs workers, so serial flows never pay for one.

Workers must be module-level functions (picklable); keep per-point
argument tuples small — traces are regenerated inside the worker from
(app, load, seed), not shipped across the pipe.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Callable, Iterator, List, Optional, Sequence, Set, TypeVar

from repro import config

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable capping worker processes (0/1 = force serial).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Innermost active shared pool (set by ``WorkerPool.__enter__``).
_active_pool: Optional["WorkerPool"] = None

#: True inside pool worker processes: nested ``parallel_map`` calls in a
#: worker must run serially (daemonic processes cannot fork children).
_in_worker = False

#: Process-lifetime count of pools actually spawned (fresh + shared);
#: the ``perf_smoke`` guard asserts the regenerate-all flow creates at
#: most one.
_pools_created = 0

#: Env values already warned about (warn once per distinct value).
_warned_env_values: Set[str] = set()


def pools_created() -> int:
    """How many worker pools this process has spawned so far."""
    return _pools_created


def _env_workers() -> Optional[int]:
    """Validated ``REPRO_MAX_WORKERS`` cap, or ``None`` if unset/invalid.

    ``0`` and ``1`` are legitimate force-serial settings. Anything that
    is not a non-negative integer (``""``, ``"-3"``, ``"abc"``) used to
    be silently swallowed — or worse, a negative value flowed through
    ``min()`` and forced serial with no diagnostic. The shared helper
    warns once per distinct value (registry owned here, reset by the
    tests) and treats it as unset.
    """
    return config.env_nonneg_int(MAX_WORKERS_ENV, _warned_env_values)


def _machine_workers() -> int:
    """CPUs available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(num_tasks: int,
                      processes: Optional[int] = None) -> int:
    """Worker-process count for ``num_tasks`` independent tasks.

    Args:
        num_tasks: number of independent evaluation points.
        processes: explicit worker count; ``None`` auto-sizes to the
            machine (capped by ``REPRO_MAX_WORKERS`` when set).

    Returns:
        at least 1; a return of 1 means "run serially, no pool".
    """
    if _in_worker:
        # Already inside a pool worker: never try to nest pools.
        return 1
    if num_tasks <= 1:
        return 1
    if processes is None:
        processes = _machine_workers()
    env_cap = _env_workers()
    if env_cap is not None:
        # Global throttle: applies even over explicit per-call counts, so
        # a shared machine can be capped without touching call sites.
        processes = min(processes, env_cap)
    return max(1, min(processes, num_tasks))


def _init_worker() -> None:
    """Pool-worker initializer: mark the child so nested ``parallel_map``
    calls fall back to serial instead of forking grandchildren, and drop
    any shared-pool handle inherited from the parent (it is unusable
    across the fork)."""
    global _in_worker, _active_pool
    _in_worker = True
    _active_pool = None


def _map_guarded(pool: multiprocessing.pool.Pool, fn: Callable[[T], R],
                 items: Sequence[T], chunksize: int) -> List[R]:
    """``pool.map`` with deterministic teardown.

    The load-bearing part is the ``except``: on *any* failure — a worker
    exception or a ``KeyboardInterrupt``/``SystemExit`` in the parent —
    the pool is ``terminate()``d, never ``close()``+``join()``ed on
    still-live workers (which is what a bare ``with Pool(...)`` body
    falling out through an interrupt can end up waiting on). The first
    worker exception propagates as the original exception object with
    the remote traceback attached (``__cause__``) by ``multiprocessing``.
    """
    try:
        return pool.map_async(fn, items, chunksize=chunksize).get()
    except BaseException:
        pool.terminate()
        raise


class WorkerPool:
    """Persistent worker pool shared across ``parallel_map`` calls.

    Entering the context registers the pool process-wide; every
    ``parallel_map`` call inside the block that needs workers dispatches
    onto it instead of spawning (and tearing down) its own pool. The OS
    pool is created *lazily* on first dispatch — a regeneration flow
    that ends up fully serial (one CPU, ``REPRO_MAX_WORKERS=1``) never
    forks at all. Worker processes persist across dispatches, so
    per-process memo caches (:func:`repro.experiments.common.
    latency_bound`) stay warm across drivers.

    Sizing follows :func:`effective_workers`: ``processes=None``
    auto-sizes to the machine, and ``REPRO_MAX_WORKERS`` caps either
    way. Exceptions and ``KeyboardInterrupt`` terminate the pool
    immediately (a later dispatch lazily recreates it).
    """

    def __init__(self, processes: Optional[int] = None):
        self._requested = processes
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._outer: Optional["WorkerPool"] = None

    @property
    def size(self) -> int:
        """Worker count this pool runs (or would run) with."""
        procs = self._requested
        if procs is None:
            procs = _machine_workers()
        env_cap = _env_workers()
        if env_cap is not None:
            procs = min(procs, env_cap)
        return max(1, procs)

    @property
    def spawned(self) -> bool:
        """Whether the OS pool has actually been created."""
        return self._pool is not None

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            chunksize: int = 1) -> List[R]:
        """``[fn(x) for x in items]`` on the shared pool (input order)."""
        global _pools_created
        if _in_worker or self.size <= 1 or len(items) <= 1:
            # _in_worker: a driver wrapped in shared_pool()/WorkerPool
            # running *inside* a pool worker must stay serial — daemonic
            # processes cannot fork children.
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                self.size, initializer=_init_worker)
            _pools_created += 1
        try:
            return _map_guarded(self._pool, fn, items, chunksize)
        except BaseException:
            # _map_guarded already terminated it; reap and drop the
            # handle so a later dispatch starts from a clean pool.
            self._pool.join()
            self._pool = None
            raise

    def close(self) -> None:
        """Graceful shutdown: finish outstanding work, reap workers."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard shutdown: kill workers without waiting."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        global _active_pool
        self._outer = _active_pool
        _active_pool = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active_pool
        _active_pool = self._outer
        self._outer = None
        if exc_type is None:
            self.close()
        else:
            self.terminate()


@contextlib.contextmanager
def shared_pool(processes: Optional[int] = None) -> Iterator[WorkerPool]:
    """The active :class:`WorkerPool`, creating one only if none exists.

    Drivers that issue several ``parallel_map`` calls (``run_fig9``'s
    per-app sweeps, the figure ``main()``s) wrap themselves in this so
    a standalone run shares one pool internally, while a run under the
    regenerate-all CLI reuses the CLI's pool instead of nesting a
    second one.
    """
    if _active_pool is not None:
        yield _active_pool
    else:
        with WorkerPool(processes) as pool:
            yield pool


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 processes: Optional[int] = None,
                 chunksize: int = 1) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Results come back in input order regardless of completion order.
    Falls back to an in-process loop when only one worker is effective
    (single CPU, single item, or an explicit/env override), so callers
    need no serial/parallel branching of their own. Inside a
    :class:`WorkerPool` context the shared pool is reused; otherwise a
    fresh pool is spawned for the call and torn down afterwards —
    terminated, not joined, if a worker raises or the parent is
    interrupted.

    Args:
        fn: module-level (picklable) worker.
        items: per-point argument values (typically small tuples).
        processes: explicit worker count; ``None`` auto-sizes.
        chunksize: items per pool dispatch (raise for many tiny points).
    """
    global _pools_created
    if _active_pool is not None:
        # Shared-pool dispatch: the pool's size (explicit or env-capped)
        # governs parallelism, so an explicitly-sized WorkerPool is used
        # even on machines where auto-sizing would pick serial. A
        # per-call ``processes`` that forces serial is still honoured;
        # ``WorkerPool.map`` itself falls back to an in-process loop for
        # single items or a size-1 pool.
        if processes is not None and \
                effective_workers(len(items), processes) <= 1:
            return [fn(item) for item in items]
        return _active_pool.map(fn, items, chunksize=chunksize)
    workers = effective_workers(len(items), processes)
    if workers <= 1:
        return [fn(item) for item in items]
    pool = multiprocessing.Pool(workers, initializer=_init_worker)
    _pools_created += 1
    try:
        results = _map_guarded(pool, fn, items, chunksize)
    except BaseException:
        pool.join()
        raise
    pool.close()
    pool.join()
    return results

"""Multiprocessing sweep executor with a deterministic serial fallback.

Experiment drivers fan out over *independent* evaluation points (loads,
(app, mix) pairs, seeds). Each point re-derives everything it needs from
plain picklable arguments (app names, loads, seeds), so worker processes
never share simulator state and results are bitwise-identical to a serial
run — parallelism only reorders wall-clock, never data.

Usage:

    results = parallel_map(_point_worker, args_list, processes=None)

    with WorkerPool() as pool:          # regenerate-all flow
        run_fig6(...)                   # every parallel_map inside the
        run_table1(...)                 # block reuses ONE pool

* ``processes=None`` auto-sizes to ``min(cpu_count, len(items))``.
* One CPU (or one item, or ``processes=1``) short-circuits to an in-
  process list comprehension: no pool, no pickling, no nondeterminism in
  logging order. This keeps single-core CI machines and tests on the
  exact serial path.
* The ``REPRO_MAX_WORKERS`` environment variable caps the pool globally
  (``0`` or ``1`` forces serial), so shared machines can be throttled
  without touching call sites. Invalid values (non-integer or negative)
  warn once and are treated as unset.
* Inside a :class:`WorkerPool` context, ``parallel_map`` dispatches onto
  the shared persistent pool instead of spawning a fresh one per call;
  the pool itself is created lazily on the first dispatch that actually
  needs workers, so serial flows never pay for one.

Workers must be module-level functions (picklable); keep per-point
argument tuples small — traces are regenerated inside the worker from
(app, load, seed), not shipped across the pipe.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.pool
import os
import threading
from typing import (Callable, Iterator, List, Optional, Sequence, Set,
                    Tuple, TypeVar)

from repro import config

T = TypeVar("T")
R = TypeVar("R")


class WorkerLostError(RuntimeError):
    """A pool worker died (SIGKILLed, OOM-killed, ``os._exit``) while
    the dispatch was in flight.

    ``multiprocessing.Pool`` replaces dead workers but never completes
    their in-flight tasks, so the old blocking ``map_async().get()``
    would wait forever; the polled dispatch detects the death and
    raises this instead. The resilient executor
    (:func:`repro.resilience.resilient_map`) catches it, rebuilds the
    pool, and retries only the lost cells.
    """

#: Environment variable capping worker processes (0/1 = force serial).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Innermost active shared pool (set by ``WorkerPool.__enter__``).
_active_pool: Optional["WorkerPool"] = None

#: True inside pool worker processes: nested ``parallel_map`` calls in a
#: worker must run serially (daemonic processes cannot fork children).
_in_worker = False

#: Process-lifetime count of pools actually spawned (fresh + shared);
#: the ``perf_smoke`` guard asserts the regenerate-all flow creates at
#: most one.
_pools_created = 0

#: Env values already warned about (warn once per distinct value).
_warned_env_values: Set[str] = set()


def pools_created() -> int:
    """How many worker pools this process has spawned so far."""
    return _pools_created


def _env_workers() -> Optional[int]:
    """Validated ``REPRO_MAX_WORKERS`` cap, or ``None`` if unset/invalid.

    ``0`` and ``1`` are legitimate force-serial settings. Anything that
    is not a non-negative integer (``""``, ``"-3"``, ``"abc"``) used to
    be silently swallowed — or worse, a negative value flowed through
    ``min()`` and forced serial with no diagnostic. The shared helper
    warns once per distinct value (registry owned here, reset by the
    tests) and treats it as unset.
    """
    return config.env_nonneg_int(MAX_WORKERS_ENV, _warned_env_values)


def _machine_workers() -> int:
    """CPUs available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(num_tasks: int,
                      processes: Optional[int] = None) -> int:
    """Worker-process count for ``num_tasks`` independent tasks.

    Args:
        num_tasks: number of independent evaluation points.
        processes: explicit worker count; ``None`` auto-sizes to the
            machine (capped by ``REPRO_MAX_WORKERS`` when set).

    Returns:
        at least 1; a return of 1 means "run serially, no pool".
    """
    if _in_worker:
        # Already inside a pool worker: never try to nest pools.
        return 1
    if num_tasks <= 1:
        return 1
    if processes is None:
        processes = _machine_workers()
    env_cap = _env_workers()
    if env_cap is not None:
        # Global throttle: applies even over explicit per-call counts, so
        # a shared machine can be capped without touching call sites.
        processes = min(processes, env_cap)
    return max(1, min(processes, num_tasks))


def _init_worker() -> None:
    """Pool-worker initializer: mark the child so nested ``parallel_map``
    calls fall back to serial instead of forking grandchildren, and drop
    any shared-pool handle inherited from the parent (it is unusable
    across the fork)."""
    global _in_worker, _active_pool
    _in_worker = True
    _active_pool = None


#: How often the polled dispatch wakes to check worker liveness.
_POLL_INTERVAL_S = 0.02

#: Budget for one bounded teardown attempt in :func:`_reap_pool`.
_REAP_TIMEOUT_S = 5.0


def _worker_pids(pool: multiprocessing.pool.Pool) -> Tuple[Set[int], Set[int]]:
    """``(known, alive)`` pid sets for the pool's current workers.

    ``known`` is every worker the pool object currently tracks;
    ``alive`` the subset still running. A pid in a previously captured
    ``known`` that is in neither set was a worker that died and has
    already been replaced by the pool's maintenance thread — either
    way, its in-flight task is gone.
    """
    workers = list(pool._pool)
    known = {p.pid for p in workers}
    alive = {p.pid for p in workers if p.is_alive()}
    return known, alive


def _reap_pool(pool: multiprocessing.pool.Pool,
               timeout_s: float = _REAP_TIMEOUT_S) -> bool:
    """Tear a (possibly degraded) pool down without blocking forever.

    ``Pool.terminate()`` ends with an *unbounded* ``join`` on every
    worker, and its inqueue-drain helper acquires a queue lock that a
    worker killed while idle may have died holding — either can wedge
    teardown for good (the bug this replaces: ``WorkerPool.map``'s
    exception path called ``self._pool.join()`` with no timeout, so one
    stuck child blocked the whole parent). Instead, ``terminate()``
    runs under a watchdog thread with a bounded wait; if it does not
    come back, every worker is SIGKILLed, the possibly dead-held queue
    lock is released from the parent (legal for SysV/POSIX semaphores),
    and teardown gets one more bounded wait. If it is *still* wedged
    the pool object is abandoned: its daemon handler threads leak, but
    every worker is already dead and the caller's pool handle is
    dropped — strictly better than hanging the run.

    Returns ``True`` on clean teardown, ``False`` when abandoned.
    """
    reaper = threading.Thread(target=pool.terminate, daemon=True,
                              name="repro-pool-reaper")
    reaper.start()
    reaper.join(timeout_s)
    if reaper.is_alive():
        for p in list(pool._pool):
            if p.is_alive():
                p.kill()
        try:
            pool._inqueue._rlock.release()
        except (ValueError, OSError):
            pass  # lock was not actually dead-held
        reaper.join(timeout_s)
    if reaper.is_alive():
        return False
    pool.join()
    return True


def _map_polled(pool: multiprocessing.pool.Pool, fn: Callable[[T], R],
                items: Sequence[T], chunksize: int) -> List[R]:
    """``pool.map`` via polled async results, with deterministic teardown.

    Two failure modes are handled where the old blocking
    ``map_async().get()`` could not:

    * a worker *exception* propagates as the original exception object
      with the remote traceback attached (``__cause__``), exactly as
      before — the result is ready, ``get()`` raises it;
    * a worker *death* (SIGKILL, OOM, ``os._exit``) is detected by
      polling worker liveness between waits and raises
      :class:`WorkerLostError` instead of blocking forever on a result
      that can never arrive (the pool replaces dead workers but their
      in-flight tasks are lost).

    On any failure the pool is reaped with the bounded teardown —
    never ``close()``+``join()``ed on still-live workers.
    """
    try:
        # Snapshot worker pids *before* dispatch: a worker that dies
        # afterwards is detected even if the pool's maintenance thread
        # already replaced it (its pid left the alive set).
        known, _ = _worker_pids(pool)
        result = pool.map_async(fn, items, chunksize=chunksize)
        while True:
            result.wait(_POLL_INTERVAL_S)
            if result.ready():
                return result.get()
            _, alive = _worker_pids(pool)
            lost = known - alive
            if lost:
                raise WorkerLostError(
                    f"lost pool worker(s) {sorted(lost)} with "
                    f"{len(items)} item(s) dispatched")
    except BaseException:
        _reap_pool(pool)
        raise


class WorkerPool:
    """Persistent worker pool shared across ``parallel_map`` calls.

    Entering the context registers the pool process-wide; every
    ``parallel_map`` call inside the block that needs workers dispatches
    onto it instead of spawning (and tearing down) its own pool. The OS
    pool is created *lazily* on first dispatch — a regeneration flow
    that ends up fully serial (one CPU, ``REPRO_MAX_WORKERS=1``) never
    forks at all. Worker processes persist across dispatches, so
    per-process memo caches (:func:`repro.experiments.common.
    latency_bound`) stay warm across drivers.

    Sizing follows :func:`effective_workers`: ``processes=None``
    auto-sizes to the machine, and ``REPRO_MAX_WORKERS`` caps either
    way. Exceptions and ``KeyboardInterrupt`` terminate the pool
    immediately (a later dispatch lazily recreates it).
    """

    def __init__(self, processes: Optional[int] = None):
        self._requested = processes
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._outer: Optional["WorkerPool"] = None

    @property
    def size(self) -> int:
        """Worker count this pool runs (or would run) with."""
        procs = self._requested
        if procs is None:
            procs = _machine_workers()
        env_cap = _env_workers()
        if env_cap is not None:
            procs = min(procs, env_cap)
        return max(1, procs)

    @property
    def spawned(self) -> bool:
        """Whether the OS pool has actually been created."""
        return self._pool is not None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        """The OS pool, creating it lazily on first use."""
        global _pools_created
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                self.size, initializer=_init_worker)
            _pools_created += 1
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            chunksize: int = 1) -> List[R]:
        """``[fn(x) for x in items]`` on the shared pool (input order)."""
        if _in_worker or self.size <= 1 or len(items) <= 1:
            # _in_worker: a driver wrapped in shared_pool()/WorkerPool
            # running *inside* a pool worker must stay serial — daemonic
            # processes cannot fork children.
            return [fn(item) for item in items]
        try:
            return _map_polled(self._ensure_pool(), fn, items, chunksize)
        except BaseException:
            # _map_polled already reaped it (bounded); just drop the
            # handle so a later dispatch starts from a clean pool.
            self._pool = None
            raise

    def ensure(self) -> "WorkerPool":
        """Force the lazy OS pool into existence (fork now).

        The resilient executor calls this before handing out work so it
        can snapshot worker pids *first* — a cell that kills its worker
        instantly must still be attributable to a pid the parent has
        seen, even if the pool's maintenance thread replaces the worker
        before the next poll.
        """
        self._ensure_pool()
        return self

    def submit(self, fn: Callable[[T], R],
               item: T) -> "multiprocessing.pool.AsyncResult":
        """Dispatch one item; returns its ``AsyncResult`` handle.

        The per-cell entry point the resilient executor drives: unlike
        :meth:`map`, each cell gets its own handle, so timeouts, lost
        workers, and retries can be tracked per cell.
        """
        return self._ensure_pool().apply_async(fn, (item,))

    def worker_status(self) -> List[Tuple[int, bool]]:
        """``[(pid, is_alive)]`` for the current workers ([] unspawned)."""
        if self._pool is None:
            return []
        return [(p.pid, p.is_alive()) for p in list(self._pool._pool)]

    def rebuild(self) -> None:
        """Reap the OS pool (bounded) and drop the handle, so the next
        dispatch lazily forks a fresh pool (counted in
        :func:`pools_created`). Outstanding dispatches are lost — the
        crashed/hung-worker recovery path."""
        if self._pool is not None:
            _reap_pool(self._pool)
            self._pool = None

    def close(self) -> None:
        """Graceful shutdown: finish outstanding work, reap workers."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard shutdown: kill workers, bounded reap (never blocks on a
        stuck child)."""
        if self._pool is not None:
            _reap_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        global _active_pool
        self._outer = _active_pool
        _active_pool = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active_pool
        _active_pool = self._outer
        self._outer = None
        if exc_type is None:
            self.close()
        else:
            self.terminate()


@contextlib.contextmanager
def shared_pool(processes: Optional[int] = None) -> Iterator[WorkerPool]:
    """The active :class:`WorkerPool`, creating one only if none exists.

    Drivers that issue several ``parallel_map`` calls (``run_fig9``'s
    per-app sweeps, the figure ``main()``s) wrap themselves in this so
    a standalone run shares one pool internally, while a run under the
    regenerate-all CLI reuses the CLI's pool instead of nesting a
    second one.
    """
    if _active_pool is not None:
        yield _active_pool
    else:
        with WorkerPool(processes) as pool:
            yield pool


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 processes: Optional[int] = None,
                 chunksize: int = 1) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Results come back in input order regardless of completion order.
    Falls back to an in-process loop when only one worker is effective
    (single CPU, single item, or an explicit/env override), so callers
    need no serial/parallel branching of their own. Inside a
    :class:`WorkerPool` context the shared pool is reused; otherwise a
    fresh pool is spawned for the call and torn down afterwards —
    terminated, not joined, if a worker raises or the parent is
    interrupted.

    Args:
        fn: module-level (picklable) worker.
        items: per-point argument values (typically small tuples).
        processes: explicit worker count; ``None`` auto-sizes.
        chunksize: items per pool dispatch (raise for many tiny points).
    """
    global _pools_created
    if _active_pool is not None:
        # Shared-pool dispatch: the pool's size (explicit or env-capped)
        # governs parallelism, so an explicitly-sized WorkerPool is used
        # even on machines where auto-sizing would pick serial. A
        # per-call ``processes`` that forces serial is still honoured;
        # ``WorkerPool.map`` itself falls back to an in-process loop for
        # single items or a size-1 pool.
        if processes is not None and \
                effective_workers(len(items), processes) <= 1:
            return [fn(item) for item in items]
        return _active_pool.map(fn, items, chunksize=chunksize)
    workers = effective_workers(len(items), processes)
    if workers <= 1:
        return [fn(item) for item in items]
    pool = multiprocessing.Pool(workers, initializer=_init_worker)
    _pools_created += 1
    # On failure _map_polled reaps the pool (bounded) before raising.
    results = _map_polled(pool, fn, items, chunksize)
    pool.close()
    pool.join()
    return results

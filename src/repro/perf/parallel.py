"""Multiprocessing sweep executor with a deterministic serial fallback.

Experiment drivers fan out over *independent* evaluation points (loads,
(app, mix) pairs, seeds). Each point re-derives everything it needs from
plain picklable arguments (app names, loads, seeds), so worker processes
never share simulator state and results are bitwise-identical to a serial
run — parallelism only reorders wall-clock, never data.

Usage:

    results = parallel_map(_point_worker, args_list, processes=None)

* ``processes=None`` auto-sizes to ``min(cpu_count, len(items))``.
* One CPU (or one item, or ``processes=1``) short-circuits to an in-
  process list comprehension: no pool, no pickling, no nondeterminism in
  logging order. This keeps single-core CI machines and tests on the
  exact serial path.
* The ``REPRO_MAX_WORKERS`` environment variable caps the pool globally
  (``0`` or ``1`` forces serial), so shared machines can be throttled
  without touching call sites.

Workers must be module-level functions (picklable); keep per-point
argument tuples small — traces are regenerated inside the worker from
(app, load, seed), not shipped across the pipe.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable capping worker processes (0/1 = force serial).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def effective_workers(num_tasks: int,
                      processes: Optional[int] = None) -> int:
    """Worker-process count for ``num_tasks`` independent tasks.

    Args:
        num_tasks: number of independent evaluation points.
        processes: explicit worker count; ``None`` auto-sizes to the
            machine (capped by ``REPRO_MAX_WORKERS`` when set).

    Returns:
        at least 1; a return of 1 means "run serially, no pool".
    """
    if num_tasks <= 1:
        return 1
    if processes is None:
        try:
            processes = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            processes = os.cpu_count() or 1
    env_cap = os.environ.get(MAX_WORKERS_ENV)
    if env_cap is not None:
        # Global throttle: applies even over explicit per-call counts, so
        # a shared machine can be capped without touching call sites.
        try:
            processes = min(processes, int(env_cap))
        except ValueError:
            pass
    return max(1, min(processes, num_tasks))


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 processes: Optional[int] = None,
                 chunksize: int = 1) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Results come back in input order regardless of completion order.
    Falls back to an in-process loop when only one worker is effective
    (single CPU, single item, or an explicit/env override), so callers
    need no serial/parallel branching of their own.

    Args:
        fn: module-level (picklable) worker.
        items: per-point argument values (typically small tuples).
        processes: explicit worker count; ``None`` auto-sizes.
        chunksize: items per pool dispatch (raise for many tiny points).
    """
    workers = effective_workers(len(items), processes)
    if workers <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(workers) as pool:
        return pool.map(fn, items, chunksize=chunksize)

"""Colocated-server simulation: 6 cores, each time-sharing LC + batch.

The paper's colocated server (Fig. 13b) runs one copy of the LC app per
core plus a 6-app batch mix, one batch app per core, over a partitioned
memory system. Partitioning makes cores independent except for (a) the
chip-level HW-T/HW-TPW allocators and (b) the shared TDP; both are
modeled by :class:`~repro.coloc.schemes.ChipLevelAllocator`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.config import DEFAULT_CMP, CmpConfig
from repro.coloc.batch import BatchAppProfile, BatchTask
from repro.coloc.interference import (
    MicroarchInterference,
    footprint_penalty_cycles,
)
from repro.coloc.schemes import (
    ChipLevelAllocator,
    HwScheme,
    RubikColocScheme,
    StaticColocScheme,
)
from repro.power.model import DEFAULT_CORE_POWER, CorePowerModel
from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.static_oracle import find_static_frequency
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.server import ARRIVAL_PRIORITY
from repro.sim.trace import Trace
from repro.workloads.base import AppProfile

#: The colocation schemes evaluated in Fig. 15.
COLOC_SCHEME_NAMES = ("RubikColoc", "StaticColoc", "HW-T", "HW-TPW")


@dataclasses.dataclass
class ColocResult:
    """Outcome of one colocated-server run."""

    scheme: str
    lc_response_times: np.ndarray
    duration_s: float
    core_energy_j: float
    lc_busy_time_s: float
    batch_time_s: float
    num_cores: int
    batch_instructions: Dict[str, float]
    interference_penalty_cycles: float

    def tail_latency(self, pct: float = 95.0) -> float:
        """Tail latency over completed LC requests.

        ``NaN`` when no LC request completed (an overloaded server):
        at fleet scale one starved server must surface as a flagged
        per-server value the NaN-aware aggregation counts
        (:meth:`repro.fleet.state.FleetState.overloaded_count`), not
        an exception that aborts the whole shard.
        """
        if self.lc_response_times.size == 0:
            return float("nan")
        return float(np.percentile(self.lc_response_times, pct))

    @property
    def mean_core_power_w(self) -> float:
        """Average power of all cores combined."""
        if self.duration_s <= 0:
            return 0.0
        return self.core_energy_j / self.duration_s

    @property
    def lc_utilization(self) -> float:
        """Fraction of core-time spent on LC work."""
        total = self.duration_s * self.num_cores
        return self.lc_busy_time_s / total if total > 0 else 0.0

    @property
    def core_utilization(self) -> float:
        """Fraction of core-time doing any work (LC + batch)."""
        total = self.duration_s * self.num_cores
        if total <= 0:
            return 0.0
        return (self.lc_busy_time_s + self.batch_time_s) / total

    def batch_throughput(self, name: str) -> float:
        """Instructions/second for one batch app over the whole run."""
        if self.duration_s <= 0:
            return 0.0
        return self.batch_instructions.get(name, 0.0) / self.duration_s


def make_coloc_scheme(name: str, lc_static_hz: Optional[float] = None) -> Scheme:
    """Factory for the per-core scheme of each colocation policy."""
    if name == "RubikColoc":
        return RubikColocScheme()
    if name == "StaticColoc":
        if lc_static_hz is None:
            raise ValueError("StaticColoc requires a tuned LC frequency")
        return StaticColocScheme(lc_static_hz)
    if name == "HW-T":
        return HwScheme("throughput")
    if name == "HW-TPW":
        return HwScheme("tpw")
    raise ValueError(f"unknown colocation scheme {name!r}; "
                     f"available: {COLOC_SCHEME_NAMES}")


def run_colocated_server(
    app: AppProfile,
    load: float,
    mix: Sequence[BatchAppProfile],
    scheme_name: str,
    context: SchemeContext,
    seed: int = 0,
    requests_per_core: Optional[int] = None,
    cmp_config: CmpConfig = DEFAULT_CMP,
    power_model: CorePowerModel = DEFAULT_CORE_POWER,
    interference_factory: Optional[Callable[[], MicroarchInterference]] = None,
    warmup_per_core: int = 50,
) -> ColocResult:
    """Simulate one colocated server under one scheme.

    Args:
        app: the latency-critical application (one copy per core).
        load: LC load fraction of per-core saturation.
        mix: batch apps, one per core (padded cyclically if shorter).
        scheme_name: one of ``COLOC_SCHEME_NAMES``.
        context: latency bound and machine configuration.
        seed: base RNG seed (core ``i`` uses ``seed*100 + i``).
        requests_per_core: LC requests per core (default: app's paper
            count split across cores, at least 500).
        cmp_config: chip configuration (cores, TDP).
        power_model: per-core power model.
        interference_factory: builds the per-core microarch interference
            model charged to post-batch LC requests (default: footprint-
            scaled refill penalty for the LC app).
        warmup_per_core: LC completions per core excluded from latency.
    """
    if not mix:
        raise ValueError("mix must contain at least one batch app")
    if interference_factory is None:
        mean_cycles = ((1.0 - app.mem_fraction) * app.mean_service_s
                       * app.nominal_hz)
        penalty = footprint_penalty_cycles(mean_cycles)
        interference_factory = (
            lambda: MicroarchInterference(max_penalty_cycles=penalty))
    n_cores = cmp_config.num_cores
    n_req = requests_per_core
    if n_req is None:
        n_req = max(500, app.num_requests // n_cores)

    # StaticColoc's LC frequency is tuned interference-free (that blind
    # spot is the point of the comparison).
    lc_static_hz = None
    if scheme_name == "StaticColoc":
        tuning_trace = Trace.generate_at_load(app, load, n_req, seed=seed * 100 + 91)
        lc_static_hz = find_static_frequency(
            tuning_trace, context.latency_bound_s, context)

    sim = Simulator()
    cores: List[Core] = []
    tasks: List[BatchTask] = []
    interferences: List[MicroarchInterference] = []
    traces: List[Trace] = []
    for ci in range(n_cores):
        profile = mix[ci % len(mix)]
        task = BatchTask(profile, context.dvfs, power_model)
        interference = interference_factory()
        core = Core(
            sim,
            context.dvfs,
            power_model,
            background=task,
            interference_cycles=interference,
        )
        scheme = make_coloc_scheme(scheme_name, lc_static_hz)
        scheme.setup(sim, core, context)
        trace = Trace.generate_at_load(app, load, n_req, seed=seed * 100 + ci)
        for req in trace.to_requests():
            sim.schedule(req.arrival_time,
                         (lambda r=req, c=core: c.enqueue(r)),
                         priority=ARRIVAL_PRIORITY)
        cores.append(core)
        tasks.append(task)
        interferences.append(interference)
        traces.append(trace)

    horizon = max(t.arrivals[-1] for t in traces) + 100.0  # generous cap
    if scheme_name in ("HW-T", "HW-TPW"):
        objective = "throughput" if scheme_name == "HW-T" else "tpw"
        ChipLevelAllocator(sim, cores, cmp_config, power_model,
                           objective=objective, horizon_s=horizon)

    total = n_req * n_cores
    # The horizon cap is a safety net for a wedged run (completions
    # always drain queued work, so the completion count normally ends
    # the loop long before `max arrival + 100 s`). Note: since DVFS
    # transitions apply lazily (no FREQ_CHANGE heap events), the cap is
    # checked at arrival/completion/allocator-tick granularity only —
    # a capped run can process a few more of those than the event-driven
    # machinery would have.
    while sum(len(c.completed) for c in cores) < total:
        if not sim.step():
            break
        if sim.now > horizon:
            break
    for core in cores:
        core.finalize()

    lc_latencies = np.concatenate([
        np.array([r.response_time for r in core.completed[warmup_per_core:]])
        for core in cores
    ])
    batch_instr: Dict[str, float] = {}
    for task in tasks:
        batch_instr[task.profile.name] = (
            batch_instr.get(task.profile.name, 0.0) + task.instructions)

    return ColocResult(
        scheme=scheme_name,
        lc_response_times=lc_latencies,
        duration_s=sim.now,
        core_energy_j=sum(c.meter.energy_j for c in cores),
        lc_busy_time_s=sum(c.meter.busy_time_s for c in cores),
        batch_time_s=sum(c.meter.batch_time_s for c in cores),
        num_cores=n_cores,
        batch_instructions=batch_instr,
        interference_penalty_cycles=sum(
            i.total_penalty_cycles for i in interferences),
    )

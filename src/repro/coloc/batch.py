"""Batch application models for colocation (paper Secs. 6--7).

The paper's batch work is SPEC CPU2006; colocation results depend on each
app's *IPC-versus-frequency curve* and power, not its semantics, so each
batch app is modeled by two constants:

* ``cpi_core``: core cycles per instruction when not stalled on memory,
* ``mem_ns_per_instr``: frequency-invariant memory-stall time per
  instruction (with the partitioned LLC/DRAM share of Table 2, so it does
  not depend on co-runners — the property the paper's fixed-work
  methodology relies on).

Instruction throughput at frequency ``f`` is
``1 / (cpi_core/f + mem_time_per_instr)``; memory-bound apps (mcf, lbm)
barely speed up with frequency while compute-bound apps (namd, povray)
scale almost linearly — which is exactly what drives the HW-T/HW-TPW
allocation pathologies in Fig. 15.

:class:`BatchTask` implements the :class:`repro.sim.core.BackgroundTask`
protocol so a core runs it whenever the LC queue is empty.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import DvfsConfig
from repro.power.model import CorePowerModel


@dataclasses.dataclass(frozen=True)
class BatchAppProfile:
    """A SPEC-CPU2006-like batch application."""

    name: str
    cpi_core: float
    mem_ns_per_instr: float

    def __post_init__(self) -> None:
        if self.cpi_core <= 0:
            raise ValueError("cpi_core must be positive")
        if self.mem_ns_per_instr < 0:
            raise ValueError("mem_ns_per_instr must be non-negative")

    def seconds_per_instr(self, freq_hz: float) -> float:
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.cpi_core / freq_hz + self.mem_ns_per_instr * 1e-9

    def throughput(self, freq_hz: float) -> float:
        """Instructions per second at ``freq_hz``."""
        return 1.0 / self.seconds_per_instr(freq_hz)

    def ipc(self, freq_hz: float) -> float:
        """Instructions per core cycle at ``freq_hz``."""
        return self.throughput(freq_hz) / freq_hz

    def mem_stall_frac(self, freq_hz: float) -> float:
        """Fraction of wall-clock time stalled on memory at ``freq_hz``."""
        total = self.seconds_per_instr(freq_hz)
        return (self.mem_ns_per_instr * 1e-9) / total

    def best_tpw_frequency(self, dvfs: DvfsConfig,
                           power: CorePowerModel) -> float:
        """Grid frequency maximizing throughput per watt.

        Batch apps never run above nominal, to stay within TDP (paper
        Sec. 7 experimental setup).
        """
        best_f = dvfs.min_hz
        best_tpw = -1.0
        for f in dvfs.frequencies:
            if f > dvfs.nominal_hz:
                break
            tpw = self.throughput(f) / power.busy_power(f, self.mem_stall_frac(f))
            if tpw > best_tpw:
                best_tpw = tpw
                best_f = f
        return best_f


#: A SPEC-CPU2006-like catalogue spanning compute-bound to memory-bound.
#: cpi/mem values chosen so nominal IPCs span ~0.2 (mcf-like) to ~2
#: (povray-like), the range reported for SPEC on Westmere-class cores.
SPEC_APPS: Tuple[BatchAppProfile, ...] = (
    BatchAppProfile("perlbench", 0.55, 0.15),
    BatchAppProfile("bzip2", 0.70, 0.25),
    BatchAppProfile("gcc", 0.80, 0.45),
    BatchAppProfile("mcf", 0.90, 2.60),
    BatchAppProfile("gobmk", 0.75, 0.10),
    BatchAppProfile("hmmer", 0.45, 0.05),
    BatchAppProfile("sjeng", 0.70, 0.08),
    BatchAppProfile("libquantum", 0.60, 1.80),
    BatchAppProfile("omnetpp", 0.85, 1.10),
    BatchAppProfile("astar", 0.80, 0.60),
    BatchAppProfile("xalancbmk", 0.85, 0.90),
    BatchAppProfile("milc", 0.65, 1.40),
    BatchAppProfile("namd", 0.42, 0.04),
    BatchAppProfile("soplex", 0.75, 1.00),
    BatchAppProfile("povray", 0.48, 0.03),
    BatchAppProfile("lbm", 0.60, 2.20),
    BatchAppProfile("sphinx3", 0.70, 0.70),
    BatchAppProfile("calculix", 0.50, 0.12),
)

SPEC_BY_NAME: Dict[str, BatchAppProfile] = {a.name: a for a in SPEC_APPS}


def generate_mixes(num_mixes: int = 20, apps_per_mix: int = 6,
                   seed: int = 0) -> List[Tuple[BatchAppProfile, ...]]:
    """Random 6-app mixes (paper: 20 mixes of six randomly chosen apps)."""
    if num_mixes <= 0 or apps_per_mix <= 0:
        raise ValueError("num_mixes and apps_per_mix must be positive")
    rng = np.random.default_rng(seed)
    mixes = []
    for _ in range(num_mixes):
        idx = rng.choice(len(SPEC_APPS), size=apps_per_mix, replace=False)
        mixes.append(tuple(SPEC_APPS[i] for i in idx))
    return mixes


class BatchTask:
    """Executable batch-app instance (BackgroundTask protocol).

    Tracks retired instructions and the time it ran, so colocated-server
    experiments can report batch throughput (Fig. 16's fixed-work
    accounting).
    """

    def __init__(self, profile: BatchAppProfile, dvfs: DvfsConfig,
                 power: CorePowerModel) -> None:
        self.profile = profile
        self._preferred_hz = profile.best_tpw_frequency(dvfs, power)
        self.instructions = 0.0
        self.run_time_s = 0.0

    def preferred_frequency(self, dvfs: DvfsConfig) -> float:
        return self._preferred_hz

    def run(self, duration_s: float, freq_hz: float) -> None:
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.instructions += duration_s * self.profile.throughput(freq_hz)
        self.run_time_s += duration_s

    def mem_stall_frac(self, freq_hz: float) -> float:
        return self.profile.mem_stall_frac(freq_hz)

    @property
    def mean_throughput(self) -> float:
        """Instructions per second of *wall-clock* run time."""
        if self.run_time_s <= 0:
            return 0.0
        return self.instructions / self.run_time_s

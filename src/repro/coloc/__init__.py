"""RubikColoc: batch/LC colocation (paper Secs. 6-7) — batch app models,
core-microarch interference, colocation schemes, datacenter math."""

from repro.coloc.batch import BatchAppProfile, BatchTask, generate_mixes
from repro.coloc.interference import MicroarchInterference
from repro.coloc.server import COLOC_SCHEME_NAMES, run_colocated_server

__all__ = [
    "BatchAppProfile", "BatchTask", "COLOC_SCHEME_NAMES",
    "MicroarchInterference", "generate_mixes", "run_colocated_server",
]

"""Colocation frequency-management schemes (paper Sec. 7).

Four schemes manage a server whose cores each time-share one LC app copy
with one batch app (memory system partitioned):

* **RubikColoc** — Rubik drives LC frequency; batch runs at its best
  throughput-per-watt frequency when the LC queue is empty.
* **StaticColoc** — LC at the StaticOracle frequency (tuned without
  interference, which is why it under-provisions); batch at best TPW.
* **HW-T** — every 100 us, a chip-level controller assigns per-core
  frequencies maximizing aggregate instruction throughput under the
  package power budget (TDP minus the fixed uncore/DRAM floor),
  oblivious to LC deadlines (Turbo-Boost-style).
* **HW-TPW** — same cadence, maximizing aggregate throughput per *package*
  watt (fixed platform power amortizes into the ratio, as hardware
  energy-efficiency governors see package power, not core power).

HW-T/HW-TPW allocate watts by marginal utility, so compute-bound batch
cores win the budget and LC cores are starved exactly when they queue —
the mechanism behind the tail blowups in Fig. 15. Server LC apps also
retire fewer instructions per cycle than SPEC compute apps
(``LC_IPC_FACTOR``), so they systematically lose the watts race.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.config import CmpConfig
from repro.core.controller import Rubik
from repro.power.model import CorePowerModel, CoreState
from repro.schemes.base import Scheme, SchemeContext
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request

#: HW schemes re-evaluate every 100 us (paper Sec. 7).
HW_SCHEME_PERIOD_S = 100e-6

#: Fixed package power (uncore + DRAM idle floor) the HW governors see.
PACKAGE_FIXED_POWER_W = 13.0

#: Server LC apps retire fewer instructions per cycle than SPEC compute
#: apps (branchy, pointer-chasing code), so oblivious throughput-greedy
#: allocators systematically deprioritize them.
LC_IPC_FACTOR = 0.6


class RubikColocScheme(Rubik):
    """Rubik, unchanged, on a core with a background batch task.

    The core model itself hands the core to the batch app (at the batch
    app's preferred frequency) whenever the LC queue drains; Rubik only
    ever constrains frequency while LC requests are in the system.
    """

    @property
    def name(self) -> str:  # type: ignore[override]
        return "RubikColoc"


class StaticColocScheme(Scheme):
    """StaticOracle frequency for LC work; batch at best TPW when idle."""

    name = "StaticColoc"

    def __init__(self, lc_freq_hz: float) -> None:
        if lc_freq_hz <= 0:
            raise ValueError("frequency must be positive")
        self.lc_freq_hz = lc_freq_hz

    def initial_frequency(self) -> float:
        return self.lc_freq_hz

    def on_arrival(self, core: Core, request: Request) -> None:
        core.request_frequency(self.lc_freq_hz)

    def on_completion(self, core: Core, request: Request) -> None:
        if core.queue_length > 0:
            core.request_frequency(self.lc_freq_hz)
        # else: the core hands over to batch at its preferred frequency.


class ChipLevelAllocator:
    """Shared chip controller for the HW-T / HW-TPW schemes.

    Every ``period_s`` it observes what each core is running (an LC
    request or its batch app), models each occupant's instruction
    throughput versus frequency, and assigns per-core frequencies:

    * objective ``"throughput"`` (HW-T): greedy marginal-IPS-per-watt
      ascent until the TDP is exhausted;
    * objective ``"tpw"`` (HW-TPW): each core at the frequency maximizing
      its own occupant's throughput per watt (maximizing the aggregate
      ratio decomposes per-core when cores are independent).
    """

    def __init__(
        self,
        sim: Simulator,
        cores: Sequence[Core],
        cmp_config: CmpConfig,
        power: CorePowerModel,
        objective: str = "throughput",
        lc_ips_model: Optional[Callable[[Core, float], float]] = None,
        period_s: float = HW_SCHEME_PERIOD_S,
        horizon_s: Optional[float] = None,
    ) -> None:
        if objective not in ("throughput", "tpw"):
            raise ValueError("objective must be 'throughput' or 'tpw'")
        self.sim = sim
        self.cores = list(cores)
        self.cmp = cmp_config
        self.power = power
        self.objective = objective
        self.lc_ips_model = lc_ips_model or _default_lc_ips_model
        self.period_s = period_s
        self.horizon_s = horizon_s
        # The assignment depends only on each core's occupant *type*
        # (which batch app, or the LC app), so allocations are memoized
        # on that key — there are at most 2^cores distinct states.
        self._cache: dict = {}
        sim.schedule_after(period_s, self._tick)

    def _occupant_key(self, core: Core) -> str:
        if core.current is not None:
            return "lc"
        if core.background is not None:
            return core.background.profile.name  # type: ignore[attr-defined]
        return "idle"

    # ------------------------------------------------------------------
    def _occupant_ips(self, core: Core, freq_hz: float) -> float:
        """Instruction throughput of whatever the core is running."""
        if core.current is not None:
            return self.lc_ips_model(core, freq_hz)
        if core.background is not None:
            return core.background.profile.throughput(freq_hz)  # type: ignore[attr-defined]
        return 0.0

    def _occupant_power(self, core: Core, freq_hz: float) -> float:
        if core.current is None and core.background is None:
            return self.power.sleep_power_w
        if core.current is not None:
            total = (core.current.compute_cycles / freq_hz
                     + core.current.memory_time_s)
            mem_frac = core.current.memory_time_s / total if total > 0 else 0.0
        else:
            mem_frac = core.background.mem_stall_frac(freq_hz)
        return self.power.busy_power(freq_hz, mem_frac)

    def _assign_throughput(self) -> List[float]:
        """Greedy marginal IPS/W ascent under the package power budget."""
        grid = self.cores[0].dvfs.config.frequencies
        levels = [0] * len(self.cores)
        budget = self.cmp.tdp_watts - PACKAGE_FIXED_POWER_W
        spent = sum(self._occupant_power(c, grid[0]) for c in self.cores)
        while True:
            best_gain, best_core = 0.0, -1
            for ci, core in enumerate(self.cores):
                li = levels[ci]
                if li + 1 >= len(grid):
                    continue
                d_ips = (self._occupant_ips(core, grid[li + 1])
                         - self._occupant_ips(core, grid[li]))
                d_p = (self._occupant_power(core, grid[li + 1])
                       - self._occupant_power(core, grid[li]))
                if spent + d_p > budget or d_p <= 0:
                    continue
                gain = d_ips / d_p
                if gain > best_gain:
                    best_gain, best_core = gain, ci
            if best_core < 0:
                break
            li = levels[best_core]
            spent += (self._occupant_power(self.cores[best_core], grid[li + 1])
                      - self._occupant_power(self.cores[best_core], grid[li]))
            levels[best_core] += 1
        return [grid[l] for l in levels]

    def _assign_tpw(self) -> List[float]:
        """Greedy ascent maximizing aggregate IPS per package watt.

        Raising a core one step improves the global ratio iff the step's
        marginal IPS/W exceeds the current aggregate ratio; the fixed
        package power keeps the optimum away from the bottom of the grid.
        """
        grid = self.cores[0].dvfs.config.frequencies
        levels = [0] * len(self.cores)
        total_ips = sum(self._occupant_ips(c, grid[0]) for c in self.cores)
        total_p = PACKAGE_FIXED_POWER_W + sum(
            self._occupant_power(c, grid[0]) for c in self.cores)
        improved = True
        while improved:
            improved = False
            ratio = total_ips / total_p
            best_gain, best_core, best_d = ratio, -1, (0.0, 0.0)
            for ci, core in enumerate(self.cores):
                li = levels[ci]
                if li + 1 >= len(grid):
                    continue
                d_ips = (self._occupant_ips(core, grid[li + 1])
                         - self._occupant_ips(core, grid[li]))
                d_p = (self._occupant_power(core, grid[li + 1])
                       - self._occupant_power(core, grid[li]))
                if d_p <= 0:
                    continue
                gain = d_ips / d_p
                if gain > best_gain:
                    best_gain, best_core, best_d = gain, ci, (d_ips, d_p)
            if best_core >= 0:
                levels[best_core] += 1
                total_ips += best_d[0]
                total_p += best_d[1]
                improved = True
        return [grid[l] for l in levels]

    def _tick(self) -> None:
        key = tuple(self._occupant_key(c) for c in self.cores)
        freqs = self._cache.get(key)
        if freqs is None:
            freqs = (self._assign_throughput()
                     if self.objective == "throughput"
                     else self._assign_tpw())
            self._cache[key] = freqs
        for core, f in zip(self.cores, freqs):
            core.dvfs.request(f)
        if self.horizon_s is None or self.sim.now + self.period_s <= self.horizon_s:
            self.sim.schedule_after(self.period_s, self._tick)


def _default_lc_ips_model(core: Core, freq_hz: float) -> float:
    """Generic LC throughput model for the HW allocator.

    Treats the in-service LC request as a stream of instructions whose
    compute/memory split matches the request's demand split (so the model
    depends only on the occupant type, keeping allocations memoizable).
    Normalized units cancel in the allocator's marginal comparisons.
    """
    req = core.current
    assert req is not None
    total_cycles = req.compute_cycles
    mem_s = req.memory_time_s
    if total_cycles <= 0:
        return 0.0
    # Seconds per "cycle of demand": 1/f compute + proportional memory.
    sec_per_cycle = 1.0 / freq_hz + mem_s / total_cycles
    return LC_IPC_FACTOR / sec_per_cycle


class HwScheme(Scheme):
    """Per-core stub for HW-T / HW-TPW: the chip allocator owns frequency.

    The scheme itself does nothing on arrivals/completions — exactly the
    point: hardware DVFS is oblivious to the application's deadlines.
    """

    def __init__(self, objective: str) -> None:
        if objective not in ("throughput", "tpw"):
            raise ValueError("objective must be 'throughput' or 'tpw'")
        self.objective = objective

    @property
    def name(self) -> str:  # type: ignore[override]
        return "HW-T" if self.objective == "throughput" else "HW-TPW"

    def initial_frequency(self) -> float:
        return self.context.dvfs.nominal_hz

"""Core-microarchitectural interference model for colocation (Sec. 6).

With the LLC and memory bandwidth partitioned, the remaining interference
from time-sharing a core is the *small* microarchitectural state the batch
app evicts: private caches (L1s, L2), branch predictor, TLBs. The paper's
insight is that this state has low inertia — "private caches can be
refilled from a warm LLC in microseconds" — so DVFS can compensate.

The model: the first LC request served after the core ran batch work for
``interval`` seconds is charged extra compute cycles

    penalty = max_cycles * (1 - exp(-interval / tau))

a saturating warm-up curve — a short batch burst evicts part of the state,
a long one evicts essentially all of it (saturation), and refilling costs
a bounded number of cycles because the LLC partition stayed warm.
"""

from __future__ import annotations

import math

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.sim.request import Request

#: Full refill penalty: ~15 us at nominal frequency (private caches, BP,
#: TLBs refilled from a warm LLC in microseconds, per the paper).
DEFAULT_MAX_PENALTY_CYCLES = 15e-6 * NOMINAL_FREQUENCY_HZ

#: Batch-interval scale over which state is evicted.
DEFAULT_TAU_S = 150e-6

#: A request's evictable microarchitectural footprint scales with the
#: work it performs (short requests touch few cache lines): the penalty
#: is additionally capped at this fraction of the app's mean demand.
FOOTPRINT_FRACTION = 0.06


def footprint_penalty_cycles(mean_compute_cycles: float) -> float:
    """Full-refill penalty for an app with the given mean request size."""
    if mean_compute_cycles <= 0:
        raise ValueError("mean_compute_cycles must be positive")
    return min(DEFAULT_MAX_PENALTY_CYCLES,
               FOOTPRINT_FRACTION * mean_compute_cycles)


class MicroarchInterference:
    """Callable charging cold-state cycles to post-batch LC requests."""

    def __init__(
        self,
        max_penalty_cycles: float = DEFAULT_MAX_PENALTY_CYCLES,
        tau_s: float = DEFAULT_TAU_S,
    ) -> None:
        if max_penalty_cycles < 0 or tau_s <= 0:
            raise ValueError("penalty must be >= 0 and tau positive")
        self.max_penalty_cycles = max_penalty_cycles
        self.tau_s = tau_s
        self.total_penalty_cycles = 0.0
        self.penalized_requests = 0

    def __call__(self, batch_interval_s: float, request: Request) -> float:
        """Extra compute cycles for ``request`` after a batch interval."""
        if batch_interval_s <= 0:
            return 0.0
        penalty = self.max_penalty_cycles * (
            1.0 - math.exp(-batch_interval_s / self.tau_s))
        self.total_penalty_cycles += penalty
        self.penalized_requests += 1
        return penalty

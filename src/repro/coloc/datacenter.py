"""Datacenter-scale aggregation (paper Sec. 7.2, Figs. 14 and 16).

Two datacenters run matching work (fixed-work methodology):

* **Segregated** (baseline): 1000 LC servers (200 per LC app, 6 copies
  each, StaticOracle frequencies) plus 1000 batch servers (50 per mix,
  every batch app at its best throughput-per-watt frequency).
* **Colocated**: the 1000 LC servers also absorb the corresponding batch
  mixes under RubikColoc; because colocated batch apps get less
  throughput, extra batch-only servers are provisioned to match the
  segregated datacenter's per-app batch throughput.

Per-server numbers come from the simulators in
:mod:`repro.coloc.server` and :mod:`repro.sim.server`; this module only
aggregates them into total power and server counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_CMP, CmpConfig
from repro.coloc.batch import BatchAppProfile, BatchTask, generate_mixes
from repro.coloc.server import ColocResult, run_colocated_server
from repro.power.model import (
    DEFAULT_CORE_POWER,
    DEFAULT_SYSTEM_POWER,
    CorePowerModel,
    SystemPowerModel,
)
from repro.schemes.base import SchemeContext
from repro.schemes.replay import replay
from repro.schemes.static_oracle import find_static_frequency
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names
from repro.workloads.base import AppProfile

#: Fleet shape of the paper's experiment (Fig. 14).
LC_SERVERS = 1000
BATCH_SERVERS = 1000
SERVERS_PER_APP = 200
SERVERS_PER_MIX = 50


@dataclasses.dataclass
class DatacenterPoint:
    """Power and server count of one datacenter at one LC load."""

    lc_load: float
    lc_server_power_w: float     # mean power of one LC/colocated server
    batch_server_power_w: float  # mean power of one batch-only server
    num_lc_servers: int
    num_batch_servers: float

    @property
    def total_power_w(self) -> float:
        return (self.num_lc_servers * self.lc_server_power_w
                + self.num_batch_servers * self.batch_server_power_w)

    @property
    def total_servers(self) -> float:
        return self.num_lc_servers + self.num_batch_servers


def batch_server_power(
    mix: Sequence[BatchAppProfile],
    system: SystemPowerModel = DEFAULT_SYSTEM_POWER,
    core_power: CorePowerModel = DEFAULT_CORE_POWER,
) -> float:
    """Power of a dedicated batch server running ``mix`` at best TPW."""
    per_core = []
    for profile in mix:
        f = profile.best_tpw_frequency(DEFAULT_CMP.dvfs, core_power)
        per_core.append(core_power.busy_power(f, profile.mem_stall_frac(f)))
    mean_core = float(np.mean(per_core))
    return system.server_power(mean_core, utilization=1.0)


def batch_server_throughput(
    mix: Sequence[BatchAppProfile],
    core_power: CorePowerModel = DEFAULT_CORE_POWER,
) -> Dict[str, float]:
    """Per-app instructions/second on a dedicated batch server (1 core/app)."""
    out: Dict[str, float] = {}
    for profile in mix:
        f = profile.best_tpw_frequency(DEFAULT_CMP.dvfs, core_power)
        out[profile.name] = out.get(profile.name, 0.0) + profile.throughput(f)
    return out


def segregated_lc_server_power(
    app: AppProfile,
    load: float,
    seed: int = 21,
    num_requests: Optional[int] = None,
    system: SystemPowerModel = DEFAULT_SYSTEM_POWER,
) -> float:
    """Power of a segregated LC server (6 copies, StaticOracle DVFS)."""
    from repro.experiments.common import latency_bound  # cycle-free import

    bound = latency_bound(app, seed, num_requests)
    context = SchemeContext(latency_bound_s=bound, app=app)
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    f = find_static_frequency(trace, bound, context)
    result = replay(trace, f)
    per_core = result.mean_core_power_w
    return system.server_power(per_core, utilization=min(1.0, load))


@dataclasses.dataclass
class DatacenterComparison:
    """Segregated vs RubikColoc datacenters at one LC load."""

    segregated: DatacenterPoint
    colocated: DatacenterPoint

    @property
    def power_reduction(self) -> float:
        return 1.0 - self.colocated.total_power_w / self.segregated.total_power_w

    @property
    def server_reduction(self) -> float:
        return 1.0 - self.colocated.total_servers / self.segregated.total_servers


def datacenter_defaults(
    num_mixes: Optional[int] = None,
    requests_per_core: Optional[int] = None,
) -> Tuple[int, int]:
    """Resolve ``(num_mixes, requests_per_core)`` from ``CONFIGS["fig16"]``.

    The single source of truth shared by :func:`compare_datacenters`,
    :func:`reference_comparison` and ``run_fig16`` — direct library
    calls with default arguments reproduce the driver's cells exactly
    (they used to disagree: 4 mixes / 1200 requests here vs the
    driver's 3 / 800).
    """
    from repro.experiments.configs import CONFIGS  # leaf module; no cycle

    config = CONFIGS["fig16"]
    if num_mixes is None:
        num_mixes = config.extra("num_mixes")
    if requests_per_core is None:
        requests_per_core = config.extra("default_requests_per_core")
    return int(num_mixes), int(requests_per_core)


def compare_datacenters(
    lc_load: float,
    seed: int = 21,
    num_mixes: Optional[int] = None,
    requests_per_core: Optional[int] = None,
    system: SystemPowerModel = DEFAULT_SYSTEM_POWER,
    core_power: CorePowerModel = DEFAULT_CORE_POWER,
    num_shards: int = 1,
    processes: Optional[int] = None,
) -> DatacenterComparison:
    """Evaluate both datacenters at one LC load (one Fig. 16 x-point).

    ``num_mixes`` sub-samples the paper's 20 mixes to bound simulation
    time; each sampled mix is paired with every LC app, as in the paper's
    interleaving. Defaults come from ``CONFIGS["fig16"]``
    (:func:`datacenter_defaults`), so a default call reproduces the
    fig16 driver's cells.

    The per-server work runs on the sharded fleet layer
    (:func:`repro.fleet.run_datacenter_fleet` — ``num_shards`` slices
    fan out over the shared pool/artifact store) and aggregates
    bitwise-identically to :func:`reference_comparison`, the original
    inline loop kept as the small-fleet oracle; the equivalence suite
    pins the two paths against each other. Non-default power models
    take the oracle path directly (fleet cells are fingerprinted on
    scalar coordinates only).
    """
    num_mixes, requests_per_core = datacenter_defaults(
        num_mixes, requests_per_core)
    if system is not DEFAULT_SYSTEM_POWER \
            or core_power is not DEFAULT_CORE_POWER:
        return reference_comparison(
            lc_load, seed=seed, num_mixes=num_mixes,
            requests_per_core=requests_per_core,
            system=system, core_power=core_power)
    from repro.fleet.shards import run_datacenter_fleet  # cycle-free import

    state = run_datacenter_fleet(
        lc_load, seed=seed, num_mixes=num_mixes,
        requests_per_core=requests_per_core,
        num_shards=num_shards, processes=processes)
    mixes = generate_mixes(num_mixes=num_mixes, seed=0)
    batch_powers = [batch_server_power(mix, system, core_power)
                    for mix in mixes]
    mean_batch_power = float(np.mean(batch_powers))
    segregated = DatacenterPoint(
        lc_load=lc_load,
        lc_server_power_w=state.mean("seg_power_w"),
        batch_server_power_w=mean_batch_power,
        num_lc_servers=LC_SERVERS,
        num_batch_servers=BATCH_SERVERS,
    )
    colocated = DatacenterPoint(
        lc_load=lc_load,
        lc_server_power_w=state.mean("coloc_power_w"),
        batch_server_power_w=mean_batch_power,
        num_lc_servers=LC_SERVERS,
        num_batch_servers=BATCH_SERVERS * state.mean("batch_deficit"),
    )
    return DatacenterComparison(segregated=segregated, colocated=colocated)


def reference_comparison(
    lc_load: float,
    seed: int = 21,
    num_mixes: Optional[int] = None,
    requests_per_core: Optional[int] = None,
    system: SystemPowerModel = DEFAULT_SYSTEM_POWER,
    core_power: CorePowerModel = DEFAULT_CORE_POWER,
) -> DatacenterComparison:
    """The small-fleet oracle: one inline loop, no sharding.

    This is the original single-process implementation of
    :func:`compare_datacenters`, kept verbatim as the reference the
    fleet path is pinned against bitwise (tests/fleet). Per-server
    values are pure functions of (app, mix, load, seed), so the fleet
    layer reproduces this loop's float operations exactly — any
    divergence is a fleet-layer bug, never tolerance.
    """
    from repro.experiments.common import latency_bound  # cycle-free import

    num_mixes, requests_per_core = datacenter_defaults(
        num_mixes, requests_per_core)
    mixes = generate_mixes(num_mixes=num_mixes, seed=0)
    apps = [APPS[name] for name in app_names()]

    seg_lc_powers: List[float] = []
    coloc_powers: List[float] = []
    deficits: List[float] = []  # fraction of a batch server still needed
    batch_powers: List[float] = []

    for mix in mixes:
        batch_powers.append(batch_server_power(mix, system, core_power))
        seg_tput = batch_server_throughput(mix, core_power)
        for app in apps:
            seg_lc_powers.append(
                segregated_lc_server_power(
                    app, lc_load, seed, num_requests=requests_per_core * 2,
                    system=system))
            bound = latency_bound(app, seed, requests_per_core * 2)
            context = SchemeContext(latency_bound_s=bound, app=app)
            coloc = run_colocated_server(
                app, lc_load, mix, "RubikColoc", context, seed=seed,
                requests_per_core=requests_per_core,
                power_model=core_power)
            util = min(1.0, coloc.core_utilization)
            coloc_powers.append(system.server_power(
                coloc.mean_core_power_w / coloc.num_cores, util))
            # Batch throughput shortfall vs a dedicated server, averaged
            # over the mix's apps.
            ratios = []
            for name, seg_ips in seg_tput.items():
                ratios.append(coloc.batch_throughput(name) / seg_ips)
            deficits.append(max(0.0, 1.0 - float(np.mean(ratios))))

    mean_batch_power = float(np.mean(batch_powers))
    segregated = DatacenterPoint(
        lc_load=lc_load,
        lc_server_power_w=float(np.mean(seg_lc_powers)),
        batch_server_power_w=mean_batch_power,
        num_lc_servers=LC_SERVERS,
        num_batch_servers=BATCH_SERVERS,
    )
    colocated = DatacenterPoint(
        lc_load=lc_load,
        lc_server_power_w=float(np.mean(coloc_powers)),
        batch_server_power_w=mean_batch_power,
        num_lc_servers=LC_SERVERS,
        num_batch_servers=BATCH_SERVERS * float(np.mean(deficits)),
    )
    return DatacenterComparison(segregated=segregated, colocated=colocated)

"""Deterministic seed derivation for the fleet layer.

The fleet's bitwise shard-invariance contract (docs/performance.md,
Layer 9) hinges on one rule: **every random draw is keyed by logical
coordinates, never by execution placement**. Shard-scoped draws derive
from ``(seed, shard_index)`` and per-server draws from
``(seed, server_index)`` where ``server_index`` is the server's
*absolute* fleet position — so re-partitioning a fleet over 1, 2 or 4
shards, or moving a shard to a different pool worker, reproduces the
exact same streams. Worker identity (pid, pool slot, dispatch order)
must never reach a seed.

Derivation is SHA-256 based (the same construction as
:func:`repro.resilience.faults.unit_interval`): ``hash()`` is salted
per interpreter and ``seed + index`` arithmetic aliases across
namespaces (``shard_seed(7, 1) == server_seed(6, 2)`` would couple
streams that must be independent), so each namespace gets a distinct
tag folded into the digest.

This module is the **only** sanctioned constructor of fleet RNGs: the
``determinism`` lint rule rejects any ``np.random.default_rng`` call
elsewhere under ``repro/fleet/`` whose seed is not a
``shard_seed``/``server_seed`` derivation.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SHARD_TAG = "fleet.shard"
_SERVER_TAG = "fleet.server"


def _derive(tag: str, seed: int, index: int) -> int:
    """A 63-bit seed from ``(tag, seed, index)`` — stable across
    processes and interpreter runs, independent per tag."""
    if index < 0:
        raise ValueError(f"{tag} index must be >= 0, got {index}")
    payload = repr((tag, int(seed), int(index))).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def shard_seed(seed: int, shard_index: int) -> int:
    """Seed for shard-scoped draws of shard ``shard_index``."""
    return _derive(_SHARD_TAG, seed, shard_index)


def server_seed(seed: int, server_index: int) -> int:
    """Seed for per-server draws of the server at *absolute* fleet
    index ``server_index`` (shard-partition independent)."""
    return _derive(_SERVER_TAG, seed, server_index)


def shard_rng(seed: int, shard_index: int) -> np.random.Generator:
    """The sanctioned RNG for shard-scoped draws."""
    return np.random.default_rng(shard_seed(seed, shard_index))


def server_rng(seed: int, server_index: int) -> np.random.Generator:
    """The sanctioned RNG for per-server draws (absolute index)."""
    return np.random.default_rng(server_seed(seed, server_index))

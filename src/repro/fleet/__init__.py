"""Fleet-scale sharded datacenter simulation (docs/performance.md,
Layer 9).

Each shard owns a contiguous slice of servers held as struct-of-arrays
numpy state (:class:`FleetState`), fans out as cells of the ``fleet``
driver through :func:`repro.experiments.common.run_cells` (artifact
caching + resilient execution for free), and synchronizes only at
placement/routing epochs. All randomness derives from
``(seed, shard_index)`` / ``(seed, server_index)`` via
:mod:`repro.fleet.seeding` — never worker identity — so an N-shard
fleet is bitwise-identical to the 1-shard reference.
"""

from repro.fleet.routing import (
    ANCHOR_LOADS,
    CAPACITY_CAP,
    EPOCH_S,
    PowerCurve,
    RoutedFleetResult,
    build_power_curves,
    route_epoch,
    run_routed_fleet,
)
from repro.fleet.seeding import (
    server_rng,
    server_seed,
    shard_rng,
    shard_seed,
)
from repro.fleet.shards import (
    FLEET_DRIVER,
    representative_fleet_size,
    run_datacenter_fleet,
)
from repro.fleet.state import FleetState, shard_bounds

__all__ = [
    "ANCHOR_LOADS",
    "CAPACITY_CAP",
    "EPOCH_S",
    "FLEET_DRIVER",
    "FleetState",
    "PowerCurve",
    "RoutedFleetResult",
    "build_power_curves",
    "representative_fleet_size",
    "route_epoch",
    "run_datacenter_fleet",
    "run_routed_fleet",
    "server_rng",
    "server_seed",
    "shard_bounds",
    "shard_rng",
    "shard_seed",
]

"""Power-aware request routing across a sharded fleet.

The cluster-level scenario the paper's fixed fleet couldn't touch
(Sec. 7.2 simulates representative servers and multiplies): ``N``
servers — LC app assigned round-robin by absolute index — each draw a
per-epoch offered load from a seeded lognormal
(:func:`repro.fleet.seeding.server_rng`, so the draw is
shard-partition independent), plus a per-server power-efficiency
factor modeling hardware binning. Each routing epoch, a fleet router
re-splits every app's total demand across that app's servers to
minimize power, against **power curves** calibrated by simulating one
segregated server per (app, anchor load) cell — the per-server cost of
a 2000-server fleet is interpolation, not simulation, which is what
makes the sweep tractable.

Execution is the Layer 9 contract: shards fan out twice (placement:
draw demands; integration: evaluate power/tails over their
struct-of-arrays slice) as ``fleet`` cells via
:func:`~repro.experiments.common.run_cells`, and synchronize only in
between, when the parent routes all epochs over the assembled demand
matrix. Routing itself is deterministic heap-based water-filling:
every app group's demand fills per-server piecewise-linear marginal
power segments cheapest-first, ties broken by absolute server index,
with per-server prefix order enforced (a server's second segment is
only offered once its first is full) and a hard per-server capacity
cap. Overloaded baseline servers (offered load above the cap) report
``NaN`` tails, which the aggregation counts rather than averages.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.seeding import server_rng
from repro.fleet.shards import FLEET_DRIVER
from repro.fleet.state import FleetState, shard_bounds
from repro.power.model import DEFAULT_SYSTEM_POWER
from repro.schemes.base import SchemeContext
from repro.schemes.replay import replay
from repro.schemes.static_oracle import find_static_frequency
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

#: Loads at which per-app power/tail curves are calibrated by
#: simulation; the last anchor equals CAPACITY_CAP so the router never
#: extrapolates (a flat extrapolated segment would read as free load).
ANCHOR_LOADS: Tuple[float, ...] = (0.05, 0.2, 0.4, 0.6, 0.9)

#: Hard per-server load cap; offered load above it is shed (baseline)
#: or routed elsewhere (power-aware).
CAPACITY_CAP = 0.9

#: Wall-clock length of one routing epoch.
EPOCH_S = 60.0

#: Per-server efficiency factor range (hardware binning spread).
EFFICIENCY_RANGE = (0.9, 1.1)


@dataclasses.dataclass(frozen=True)
class PowerCurve:
    """Piecewise-linear (load -> power/tail) calibration for one app.

    Anchored by simulated segregated servers; frozen and
    primitives-only so curves ride inside fingerprintable cell args.
    """

    app: str
    loads: Tuple[float, ...]
    powers_w: Tuple[float, ...]
    tails_s: Tuple[float, ...]
    freqs_hz: Tuple[float, ...]

    def power_at(self, load: np.ndarray) -> np.ndarray:
        return np.interp(load, self.loads, self.powers_w)

    def tail_at(self, load: np.ndarray) -> np.ndarray:
        return np.interp(load, self.loads, self.tails_s)

    def freq_at(self, load: np.ndarray) -> np.ndarray:
        """Interpolated effective static frequency (record-keeping)."""
        return np.interp(load, self.loads, self.freqs_hz)

    def segments(self) -> List[Tuple[float, float, float]]:
        """``(lo, hi, slope_w_per_load)`` pieces from zero load to the
        last anchor. Below the first anchor the curve is flat
        (``np.interp`` clamps), hence a zero-slope first piece."""
        pieces = [(0.0, self.loads[0], 0.0)]
        for k in range(len(self.loads) - 1):
            lo, hi = self.loads[k], self.loads[k + 1]
            slope = (self.powers_w[k + 1] - self.powers_w[k]) / (hi - lo)
            pieces.append((lo, hi, slope))
        return pieces


def _anchor_worker(args: Tuple[str, float, int, int]) -> Tuple[float, float, float]:
    """One (app, anchor load) calibration cell: StaticOracle-tuned
    segregated server -> (server power W, 95th-pct tail s, freq Hz)."""
    app_name, load, seed, requests_per_core = args
    from repro.experiments.common import latency_bound  # cycle-free import

    app = APPS[app_name]
    num_requests = requests_per_core * 2
    bound = latency_bound(app, seed, num_requests)
    context = SchemeContext(latency_bound_s=bound, app=app)
    trace = Trace.generate_at_load(app, load, num_requests, seed)
    freq = find_static_frequency(trace, bound, context)
    result = replay(trace, freq)
    power = DEFAULT_SYSTEM_POWER.server_power(
        result.mean_core_power_w, utilization=min(1.0, load))
    return power, result.tail_latency(), freq


def build_power_curves(
    seed: int,
    requests_per_core: int,
    anchor_loads: Sequence[float] = ANCHOR_LOADS,
    processes: Optional[int] = None,
) -> Dict[str, PowerCurve]:
    """Calibrate every app's curve (anchor cells fan out / cache)."""
    from repro.experiments.common import run_cells  # cycle-free import

    names = app_names()
    tasks = [(name, float(load), seed, requests_per_core)
             for name in names for load in anchor_loads]
    rows = run_cells(FLEET_DRIVER, _anchor_worker, tasks,
                     processes=processes)
    curves: Dict[str, PowerCurve] = {}
    for i, name in enumerate(names):
        chunk = rows[i * len(anchor_loads):(i + 1) * len(anchor_loads)]
        curves[name] = PowerCurve(
            app=name,
            loads=tuple(float(load) for load in anchor_loads),
            powers_w=tuple(r[0] for r in chunk),
            tails_s=tuple(r[1] for r in chunk),
            freqs_hz=tuple(r[2] for r in chunk),
        )
    return curves


def _placement_shard(
    args: Tuple[int, int, int, int, float, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw per-server demands and efficiency for servers ``[lo, hi)``.

    Every draw comes from :func:`server_rng` keyed by the *absolute*
    server index, so the returned slice is independent of the shard
    partition (invariant 22).
    """
    lo, hi, seed, num_epochs, base_load, sigma = args
    demands = np.empty((num_epochs, hi - lo))
    eff = np.empty(hi - lo)
    eff_lo, eff_hi = EFFICIENCY_RANGE
    for j, server in enumerate(range(lo, hi)):
        rng = server_rng(seed, server)
        eff[j] = eff_lo + (eff_hi - eff_lo) * rng.random()
        demands[:, j] = np.clip(
            base_load * rng.lognormal(mean=0.0, sigma=sigma,
                                      size=num_epochs),
            0.02, 1.2)
    return demands, eff


def route_epoch(
    demands: np.ndarray,
    app_idx: np.ndarray,
    eff: np.ndarray,
    curves: Sequence[PowerCurve],
    cap: float = CAPACITY_CAP,
) -> Tuple[np.ndarray, float]:
    """Split each app's total demand power-optimally for one epoch.

    Heap-based water-filling over per-server marginal-power segments
    (slope x efficiency), cheapest first, ties by absolute server
    index, per-server segments strictly in order. Returns the routed
    per-server loads and the demand shed because the app group's total
    exceeded ``cap`` per server.
    """
    routed = np.zeros(demands.shape[0])
    shed = 0.0
    for a in range(len(curves)):
        members = np.flatnonzero(app_idx == a)
        if members.size == 0:
            continue
        demand = float(demands[members].sum())
        capacity = cap * members.size
        if demand > capacity:
            shed += demand - capacity
            demand = capacity
        pieces = [(lo, min(hi, cap), slope)
                  for lo, hi, slope in curves[a].segments()
                  if lo < cap]
        # Heap of (marginal cost, server, piece index): popping yields
        # the globally cheapest *next* unit of capacity, and a server's
        # piece k+1 is pushed only when piece k fills.
        heap = [(pieces[0][2] * eff[s], int(s), 0) for s in members]
        heapq.heapify(heap)
        remaining = demand
        while remaining > 1e-12 and heap:
            _, server, k = heapq.heappop(heap)
            lo, hi, _ = pieces[k]
            take = min(hi - lo, remaining)
            routed[server] += take
            remaining -= take
            if take == hi - lo and k + 1 < len(pieces):
                heapq.heappush(
                    heap, (pieces[k + 1][2] * eff[server], server, k + 1))
    return routed, shed


def _integrate_shard(args) -> Dict[str, np.ndarray]:
    """Evaluate power/tails for servers ``[lo, hi)`` over all epochs.

    Pure vectorized interpolation over the shard's SoA slice — no
    randomness, no cross-shard reads — so the result depends only on
    the routed/baseline load matrices the parent computed at the
    routing synchronization point.
    """
    lo, hi, demands, routed, eff, curves, epoch_s, cap = args
    n = hi - lo
    app_idx = (np.arange(lo, hi) % len(curves)).astype(np.int32)
    base_loads = np.minimum(demands, cap)
    overload = demands > cap
    base_power = np.empty_like(base_loads)
    routed_power = np.empty_like(routed)
    base_tail = np.empty_like(base_loads)
    routed_tail = np.empty_like(routed)
    final_freq = np.empty(n)
    for a, curve in enumerate(curves):
        cols = np.flatnonzero(app_idx == a)
        if cols.size == 0:
            continue
        base_power[:, cols] = curve.power_at(base_loads[:, cols])
        routed_power[:, cols] = curve.power_at(routed[:, cols])
        base_tail[:, cols] = curve.tail_at(base_loads[:, cols])
        routed_tail[:, cols] = curve.tail_at(routed[:, cols])
        final_freq[cols] = curve.freq_at(routed[-1, cols])
    base_power *= eff[None, :]
    routed_power *= eff[None, :]
    base_tail[overload] = np.nan  # shed load: tail undefined, not data
    return {
        "baseline_energy_j": base_power.sum(axis=0) * epoch_s,
        "routed_energy_j": routed_power.sum(axis=0) * epoch_s,
        "baseline_tail_s": base_tail.max(axis=0),  # NaN-propagating max
        "routed_tail_s": routed_tail.max(axis=0),
        "overload_epochs": overload.sum(axis=0).astype(np.int64),
        "final_power_w": routed_power[-1, :],
        "final_freq_hz": final_freq,
    }


@dataclasses.dataclass
class RoutedFleetResult:
    """Aggregate outcome of one routed-fleet scenario run."""

    num_servers: int
    num_epochs: int
    num_shards: int
    epoch_s: float
    baseline_energy_j: float
    routed_energy_j: float
    baseline_shed_load: float
    routed_shed_load: float
    baseline_overload_server_epochs: int
    overloaded_servers: int       # servers with a NaN baseline tail
    baseline_tail_s: float        # NaN-aware fleet mean of worst tails
    routed_tail_s: float
    state: FleetState             # final-epoch routed fleet (SoA)

    @property
    def energy_savings_frac(self) -> float:
        if self.baseline_energy_j <= 0:
            return 0.0
        return 1.0 - self.routed_energy_j / self.baseline_energy_j

    def equals(self, other: "RoutedFleetResult") -> bool:
        """Bitwise equality (the shard-invariance suite's check)."""
        scalars = ("num_servers", "num_epochs", "epoch_s",
                   "baseline_energy_j", "routed_energy_j",
                   "baseline_shed_load", "routed_shed_load",
                   "baseline_overload_server_epochs",
                   "overloaded_servers")
        if any(getattr(self, f) != getattr(other, f) for f in scalars):
            return False
        tails = ("baseline_tail_s", "routed_tail_s")
        if any(not np.array_equal(getattr(self, f), getattr(other, f),
                                  equal_nan=True) for f in tails):
            return False
        return self.state.equals(other.state)


def run_routed_fleet(
    num_servers: int = 2000,
    seed: int = 21,
    num_epochs: int = 6,
    num_shards: int = 1,
    requests_per_core: int = 400,
    base_load: float = 0.35,
    demand_sigma: float = 0.6,
    cap: float = CAPACITY_CAP,
    processes: Optional[int] = None,
) -> RoutedFleetResult:
    """Run the routed-fleet scenario (bitwise shard-count invariant).

    Three stages: calibrate power curves (anchor cells), placement
    fan-out (shards draw their servers' demands), routing epochs in the
    parent, then integration fan-out (shards evaluate their SoA slice).
    """
    from repro.experiments.common import run_cells  # cycle-free import

    curves_by_app = build_power_curves(seed, requests_per_core,
                                       processes=processes)
    curves = tuple(curves_by_app[name] for name in app_names())
    bounds = shard_bounds(num_servers, num_shards)

    placements = run_cells(
        FLEET_DRIVER, _placement_shard,
        [(lo, hi, seed, num_epochs, base_load, demand_sigma)
         for lo, hi in bounds],
        processes=processes)
    demands = np.concatenate([p[0] for p in placements], axis=1)
    eff = np.concatenate([p[1] for p in placements])
    app_idx = (np.arange(num_servers) % len(curves)).astype(np.int32)

    # Routing epochs: the only cross-shard synchronization point.
    routed = np.zeros_like(demands)
    routed_shed = 0.0
    for e in range(num_epochs):
        routed[e], shed = route_epoch(demands[e], app_idx, eff, curves,
                                      cap=cap)
        routed_shed += shed

    parts = run_cells(
        FLEET_DRIVER, _integrate_shard,
        [(lo, hi, demands[:, lo:hi], routed[:, lo:hi], eff[lo:hi],
          curves, EPOCH_S, cap) for lo, hi in bounds],
        processes=processes)

    merged = {key: np.concatenate([p[key] for p in parts])
              for key in parts[0]}
    state = FleetState.empty(num_servers)
    state.load[:] = routed[-1]
    state.app_idx[:] = app_idx
    state.scheme_idx[:] = -1  # segregated curves: no colocation scheme
    state.freq_hz[:] = merged["final_freq_hz"]
    state.seg_power_w[:] = merged["final_power_w"]
    state.coloc_power_w[:] = 0.0
    state.batch_deficit[:] = 0.0
    state.lc_tail_s[:] = merged["baseline_tail_s"]

    base_clipped = np.minimum(demands, cap)
    baseline_tails = merged["baseline_tail_s"]
    finite = baseline_tails[np.isfinite(baseline_tails)]
    return RoutedFleetResult(
        num_servers=num_servers,
        num_epochs=num_epochs,
        num_shards=num_shards,
        epoch_s=EPOCH_S,
        baseline_energy_j=float(merged["baseline_energy_j"].sum()),
        routed_energy_j=float(merged["routed_energy_j"].sum()),
        baseline_shed_load=float((demands - base_clipped).sum()),
        routed_shed_load=float(routed_shed),
        baseline_overload_server_epochs=int(
            merged["overload_epochs"].sum()),
        overloaded_servers=int(np.count_nonzero(
            np.isnan(baseline_tails))),
        baseline_tail_s=(float(np.mean(finite)) if finite.size
                         else float("nan")),
        routed_tail_s=float(np.mean(merged["routed_tail_s"])),
        state=state,
    )

"""Sharded execution of the representative datacenter fleet.

The paper's Fig. 14/16 datacenter is evaluated on a *representative
fleet*: one server per (batch mix, LC app) pair, mix-major/app-minor by
absolute server index, so server ``i`` runs LC app ``i % n_apps``
colocated with batch mix ``i // n_apps``. Each shard owns a contiguous
slice of that fleet (:func:`repro.fleet.state.shard_bounds`), simulates
its servers into struct-of-arrays :class:`~repro.fleet.state.FleetState`,
and the parent concatenates the slices — bitwise identical for any
shard count, because every per-server value is a pure function of the
server's (app, mix, load, seed) coordinates and never of shard
membership or worker identity.

Shards dispatch as cells of the ``fleet`` driver through
:func:`repro.experiments.common.run_cells`, so fleet sweeps inherit the
artifact store's caching/resume and the PR 9 resilient executor
(per-shard retry, crashed-worker recovery) without any fleet-specific
plumbing. The per-server float operations deliberately replicate
:func:`repro.coloc.datacenter.reference_comparison`'s loop body, op for
op — that oracle pins this module bitwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coloc.batch import generate_mixes
from repro.coloc.server import COLOC_SCHEME_NAMES, run_colocated_server
from repro.fleet.state import FleetState, shard_bounds
from repro.power.model import DEFAULT_CORE_POWER, DEFAULT_SYSTEM_POWER
from repro.schemes.base import SchemeContext
from repro.schemes.replay import replay
from repro.schemes.static_oracle import find_static_frequency
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, app_names

#: Registry name scoping fleet shard/anchor cells in the artifact store.
FLEET_DRIVER = "fleet"

#: The colocation scheme the datacenter fleet runs (paper Sec. 7.2).
_COLOC_SCHEME = "RubikColoc"


def representative_fleet_size(num_mixes: int) -> int:
    """Servers in the representative fleet: one per (mix, app) pair."""
    return num_mixes * len(app_names())


def _datacenter_shard(args: Tuple[int, int, float, int, int, int]) -> FleetState:
    """Simulate servers ``[lo, hi)`` of the representative fleet.

    Module-level and picklable (pool worker + artifact fingerprint).
    Servers sharing a (mix, app) pair are identical at a fixed load, so
    a shard-local memo computes each pair once; memoization is safe
    because the per-server values are pure, and shard-invariant because
    the cache never outlives the shard.
    """
    lo, hi, lc_load, seed, num_mixes, requests_per_core = args
    from repro.coloc.datacenter import (  # cycle-free import
        batch_server_throughput,
    )
    from repro.experiments.common import latency_bound  # cycle-free import

    mixes = generate_mixes(num_mixes=num_mixes, seed=0)
    apps = [APPS[name] for name in app_names()]
    scheme_idx = COLOC_SCHEME_NAMES.index(_COLOC_SCHEME)
    state = FleetState.empty(hi - lo)
    cache = {}
    for j, server in enumerate(range(lo, hi)):
        mix_idx, app_idx = divmod(server, len(apps))
        key = (mix_idx, app_idx)
        if key not in cache:
            app, mix = apps[app_idx], mixes[mix_idx]
            num_requests = requests_per_core * 2
            # Segregated server: StaticOracle DVFS (the float-op
            # sequence of datacenter.segregated_lc_server_power, with
            # the tuned frequency kept for the SoA record).
            bound = latency_bound(app, seed, num_requests)
            context = SchemeContext(latency_bound_s=bound, app=app)
            trace = Trace.generate_at_load(app, lc_load, num_requests, seed)
            freq = find_static_frequency(trace, bound, context)
            seg = replay(trace, freq)
            seg_power = DEFAULT_SYSTEM_POWER.server_power(
                seg.mean_core_power_w, utilization=min(1.0, lc_load))
            # Colocated server: RubikColoc, plus the batch-throughput
            # deficit vs a dedicated batch server.
            coloc = run_colocated_server(
                app, lc_load, mix, _COLOC_SCHEME, context, seed=seed,
                requests_per_core=requests_per_core,
                power_model=DEFAULT_CORE_POWER)
            util = min(1.0, coloc.core_utilization)
            coloc_power = DEFAULT_SYSTEM_POWER.server_power(
                coloc.mean_core_power_w / coloc.num_cores, util)
            seg_tput = batch_server_throughput(mix, DEFAULT_CORE_POWER)
            ratios = []
            for name, seg_ips in seg_tput.items():
                ratios.append(coloc.batch_throughput(name) / seg_ips)
            deficit = max(0.0, 1.0 - float(np.mean(ratios)))
            cache[key] = (freq, seg_power, coloc_power, deficit,
                          coloc.tail_latency())
        freq, seg_power, coloc_power, deficit, tail = cache[key]
        state.load[j] = lc_load
        state.app_idx[j] = app_idx
        state.mix_idx[j] = mix_idx
        state.scheme_idx[j] = scheme_idx
        state.freq_hz[j] = freq
        state.seg_power_w[j] = seg_power
        state.coloc_power_w[j] = coloc_power
        state.batch_deficit[j] = deficit
        state.lc_tail_s[j] = tail
    return state


def run_datacenter_fleet(
    lc_load: float,
    seed: int = 21,
    num_mixes: int = 3,
    requests_per_core: int = 800,
    num_shards: int = 1,
    processes: Optional[int] = None,
) -> FleetState:
    """The representative datacenter fleet at one LC load.

    Shards fan out as ``fleet`` cells over the shared worker pool (or
    the artifact store / resilient executor when active); the returned
    state is the shard slices concatenated in absolute-index order and
    is bitwise-identical for any ``num_shards`` (invariant 21).
    """
    num_servers = representative_fleet_size(num_mixes)
    bounds = shard_bounds(num_servers, num_shards)
    tasks = [(lo, hi, lc_load, seed, num_mixes, requests_per_core)
             for lo, hi in bounds]
    from repro.experiments.common import run_cells  # cycle-free import

    parts: List[FleetState] = run_cells(
        FLEET_DRIVER, _datacenter_shard, tasks, processes=processes)
    return FleetState.concat(parts)

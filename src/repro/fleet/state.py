"""Struct-of-arrays per-server fleet state.

A :class:`FleetState` holds one contiguous slice of the fleet as flat
numpy arrays — one entry per server, one array per attribute — the same
layout the PR 1 controller rewrite used for per-core state. Shards
compute their slice independently and the parent reassembles the fleet
with :meth:`FleetState.concat`; because every array is ordered by
absolute server index, the concatenation of N shard slices is bitwise
identical to the 1-shard reference (docs/performance.md invariant 21).

``lc_tail_s`` is NaN-able: an overloaded server that completed zero LC
requests reports ``NaN`` (see :meth:`repro.coloc.server.ColocResult.
tail_latency`) rather than aborting its shard, and the aggregation
helpers here treat NaN as "overloaded", never as data.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

#: (field name, dtype) for every per-server array, in declaration order.
FIELDS: Tuple[Tuple[str, str], ...] = (
    ("load", "f8"),           # offered LC load
    ("app_idx", "i4"),        # index into repro.workloads.apps.app_names()
    ("mix_idx", "i4"),        # batch-mix index (-1: no colocated mix)
    ("scheme_idx", "i4"),     # index into COLOC_SCHEME_NAMES (-1: n/a)
    ("freq_hz", "f8"),        # tuned static LC frequency
    ("seg_power_w", "f8"),    # segregated-server power
    ("coloc_power_w", "f8"),  # colocated-server power
    ("batch_deficit", "f8"),  # fraction of a batch server still needed
    ("lc_tail_s", "f8"),      # 95th-pct LC latency; NaN = overloaded
)


@dataclasses.dataclass
class FleetState:
    """One contiguous slice of per-server fleet state (SoA layout)."""

    load: np.ndarray
    app_idx: np.ndarray
    mix_idx: np.ndarray
    scheme_idx: np.ndarray
    freq_hz: np.ndarray
    seg_power_w: np.ndarray
    coloc_power_w: np.ndarray
    batch_deficit: np.ndarray
    lc_tail_s: np.ndarray

    def __post_init__(self) -> None:
        n = self.load.shape[0]
        for name, _ in FIELDS:
            arr = getattr(self, name)
            if arr.ndim != 1 or arr.shape[0] != n:
                raise ValueError(
                    f"FleetState.{name}: expected shape ({n},), "
                    f"got {arr.shape}")

    @property
    def num_servers(self) -> int:
        return int(self.load.shape[0])

    @classmethod
    def empty(cls, num_servers: int) -> "FleetState":
        """An all-zero slice for ``num_servers`` servers (indices -1,
        tails NaN, so an unfilled entry is visibly unfilled)."""
        if num_servers < 0:
            raise ValueError(f"num_servers must be >= 0, got {num_servers}")
        arrays = {}
        for name, dtype in FIELDS:
            arr = np.zeros(num_servers, dtype=dtype)
            if name in ("app_idx", "mix_idx", "scheme_idx"):
                arr -= 1
            elif name == "lc_tail_s":
                arr += np.nan
            arrays[name] = arr
        return cls(**arrays)

    @classmethod
    def concat(cls, parts: Sequence["FleetState"]) -> "FleetState":
        """Reassemble shard slices, in shard order, into one fleet."""
        if not parts:
            return cls.empty(0)
        return cls(**{
            name: np.concatenate([getattr(p, name) for p in parts])
            for name, _ in FIELDS})

    def slice(self, lo: int, hi: int) -> "FleetState":
        """The ``[lo, hi)`` sub-slice (copies, so shards stay disjoint)."""
        return FleetState(**{
            name: getattr(self, name)[lo:hi].copy() for name, _ in FIELDS})

    # -- equality / aggregation -----------------------------------------
    def equals(self, other: "FleetState") -> bool:
        """Bitwise equality of every array (NaN == NaN, as the
        shard-invariance suite requires)."""
        return all(
            np.array_equal(getattr(self, name), getattr(other, name),
                           equal_nan=(dtype == "f8"))
            for name, dtype in FIELDS)

    def mean(self, field: str) -> float:
        """Plain mean of one array — the small-fleet oracle's exact
        aggregation (``float(np.mean(...))``)."""
        return float(np.mean(getattr(self, field)))

    def nanmean(self, field: str) -> float:
        """NaN-ignoring mean (overloaded servers carry NaN tails);
        NaN itself when every entry is NaN."""
        arr = getattr(self, field)
        if not np.any(np.isfinite(arr)):
            return float("nan")
        return float(np.nanmean(arr))

    def overloaded_count(self) -> int:
        """Servers whose LC tail is NaN (zero completed LC requests)."""
        return int(np.count_nonzero(np.isnan(self.lc_tail_s)))


def shard_bounds(num_servers: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` server ranges, one per shard.

    Balanced to within one server, in absolute-index order; shard count
    is clamped to the server count so no shard is empty. The partition
    is a pure function of ``(num_servers, num_shards)`` — placement
    never affects which servers a shard owns.
    """
    if num_servers < 0:
        raise ValueError(f"num_servers must be >= 0, got {num_servers}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_servers == 0:
        return []
    num_shards = min(num_shards, num_servers)
    base, rem = divmod(num_servers, num_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for k in range(num_shards):
        hi = lo + base + (1 if k < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds

"""Rolling-window estimators over timestamped samples.

Used for:

* instantaneous QPS over 5 ms windows (Fig. 2a),
* tail latency over rolling 200 ms / 1 s windows (Figs. 1b and 10, and
  Rubik's PI feedback controller),
* power over rolling windows (Fig. 10).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import percentile


class RollingTailEstimator:
    """Online tail-latency estimator over a sliding time window.

    Samples are (timestamp, latency) pairs appended in nondecreasing
    timestamp order; :meth:`tail` reports the percentile over samples whose
    timestamp lies within ``window_s`` of the most recent observation time.
    """

    def __init__(self, window_s: float, pct: float = 95.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < pct <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        self.window_s = window_s
        self.pct = pct
        self._samples: Deque[Tuple[float, float]] = deque()
        self._last_time = float("-inf")

    def observe(self, timestamp: float, latency: float) -> None:
        """Record a completed request's latency at ``timestamp``."""
        if timestamp < self._last_time - 1e-12:
            raise ValueError("observations must arrive in time order")
        self._last_time = max(self._last_time, timestamp)
        self._samples.append((timestamp, latency))
        self._evict(timestamp)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def tail(self, now: Optional[float] = None) -> Optional[float]:
        """Tail latency over the current window, or None if empty."""
        if now is not None:
            self._evict(now)
        if not self._samples:
            return None
        return percentile([lat for _, lat in self._samples], self.pct)

    def count(self) -> int:
        return len(self._samples)


def windowed_series(
    timestamps: Sequence[float],
    values: Sequence[float],
    window_s: float,
    step_s: Optional[float] = None,
    reducer=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce (timestamp, value) samples over consecutive sliding windows.

    Returns (window-end times, reduced values). Windows slide by ``step_s``
    (default: the window size, i.e. tumbling windows). Empty windows are
    skipped. ``reducer`` defaults to the 95th percentile, the paper's tail
    metric.
    """
    ts = np.asarray(timestamps, dtype=float)
    vs = np.asarray(values, dtype=float)
    if ts.shape != vs.shape:
        raise ValueError("timestamps and values must have equal length")
    if ts.size == 0:
        return np.array([]), np.array([])
    if window_s <= 0:
        raise ValueError("window must be positive")
    step = step_s if step_s is not None else window_s
    if step <= 0:
        raise ValueError("step must be positive")
    if reducer is None:
        reducer = lambda chunk: percentile(chunk, 95.0)  # noqa: E731

    order = np.argsort(ts, kind="stable")
    ts = ts[order]
    vs = vs[order]

    out_t: List[float] = []
    out_v: List[float] = []
    end = ts[0] + window_s
    last = ts[-1]
    while end <= last + window_s:
        lo = bisect.bisect_left(ts.tolist(), end - window_s)
        hi = bisect.bisect_right(ts.tolist(), end)
        if hi > lo:
            out_t.append(end)
            out_v.append(float(reducer(vs[lo:hi])))
        end += step
    return np.asarray(out_t), np.asarray(out_v)


def instantaneous_qps(
    arrival_times: Sequence[float],
    window_s: float = 5e-3,
    anchor: str = "time",
) -> np.ndarray:
    """Instantaneous load in queries/second over rolling windows (Fig. 2a).

    Args:
        arrival_times: request arrival timestamps.
        window_s: trailing window length (paper: 5 ms).
        anchor: ``"time"`` samples the trailing-window rate on a regular
            time grid (step = window/5), *including empty windows* — the
            CDF view of Fig. 2a where load drops to zero. ``"arrivals"``
            evaluates the rate as seen by each arriving request — the
            per-request covariate used by Table 1's correlations.
    """
    ts = np.sort(np.asarray(arrival_times, dtype=float))
    if ts.size == 0:
        return np.array([])
    if window_s <= 0:
        raise ValueError("window must be positive")
    if anchor == "arrivals":
        counts = np.empty(ts.size)
        lo = 0
        for i, t in enumerate(ts):
            while ts[lo] < t - window_s:
                lo += 1
            counts[i] = i - lo + 1
        return counts / window_s
    if anchor != "time":
        raise ValueError("anchor must be 'time' or 'arrivals'")
    step = window_s / 5.0
    grid = np.arange(ts[0] + window_s, ts[-1] + step, step)
    lo_idx = np.searchsorted(ts, grid - window_s, side="left")
    hi_idx = np.searchsorted(ts, grid, side="right")
    return (hi_idx - lo_idx) / window_s

"""Plain-text table rendering for experiment output.

Experiments print their results as aligned text tables so the paper's
tables/figures can be compared by eye in a terminal and archived verbatim
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, float, int]


def _format_cell(cell: Cell, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render a monospace table with a header rule.

    Args:
        headers: column names.
        rows: row cell values; floats are formatted with ``float_fmt``.
        float_fmt: format spec applied to float cells.
        title: optional title line above the table.
    """
    str_rows: List[List[str]] = [
        [_format_cell(c, float_fmt) for c in row] for row in rows
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[float], ys: Sequence[float], float_fmt: str = ".4g"
) -> str:
    """Render an (x, y) series on one line, for figure-style output."""
    pairs = ", ".join(
        f"({format(float(x), float_fmt)}, {format(float(y), float_fmt)})"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"

"""Statistics helpers used throughout the reproduction.

Small, dependency-light wrappers: tail percentiles, Pearson correlation,
bootstrap confidence intervals. Centralizing them keeps the definition of
"tail latency" (95th percentile, paper Sec. 5.1) consistent everywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import TAIL_PERCENTILE


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``samples``.

    Args:
        samples: non-empty sequence of values.
        pct: percentile in [0, 100].
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    return float(np.percentile(arr, pct))


def tail_latency(latencies: Sequence[float], pct: float = TAIL_PERCENTILE) -> float:
    """Tail latency: the ``pct``-th percentile (default 95th, as in the paper)."""
    return percentile(latencies, pct)


#: Relative spread below which an input counts as constant for pearson():
#: comfortably above float64's ~2.2e-16 rounding noise, far below any
#: real variation Table 1 measures.
_PEARSON_REL_TOL = 1e-12


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length sequences.

    Returns 0.0 when either input is (numerically) constant, which is the
    convention most useful for Table 1 (a constant service time carries no
    information about response latency). Constant-ness is judged by the
    spread *relative to the input's magnitude*: an absolute threshold
    misfires for large-magnitude near-constant data — e.g. latencies in
    nanoseconds, where pure float64 rounding noise has a std far above any
    absolute epsilon and the quotient becomes a correlation of rounding
    artifacts.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError("pearson inputs must have equal length")
    if ax.size < 2:
        raise ValueError("pearson requires at least two samples")
    sx = ax.std()
    sy = ay.std()
    scale_x = float(np.abs(ax).max())
    scale_y = float(np.abs(ay).max())
    if sx <= _PEARSON_REL_TOL * scale_x or sy <= _PEARSON_REL_TOL * scale_y:
        return 0.0
    cov = float(((ax - ax.mean()) * (ay - ay.mean())).mean())
    return cov / float(sx * sy)


def bootstrap_ci(
    samples: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Used to check the paper's "95% confidence intervals below 1%" claim on
    our own runs (EXPERIMENTS.md).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("bootstrap of empty sample set")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    stats = np.empty(n_resamples)
    for k in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        stats[k] = statistic(resample)
    lo = (1.0 - confidence) / 2.0 * 100.0
    hi = 100.0 - lo
    return float(np.percentile(stats, lo)), float(np.percentile(stats, hi))


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """CV = std/mean; the workload-shape knob used in DESIGN.md Sec. 5."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("CV of empty sample set")
    mean = float(arr.mean())
    if abs(mean) < 1e-18:
        raise ValueError("CV undefined for zero-mean samples")
    return float(arr.std()) / mean


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative percent) for CDF plots/tables.

    The second array is the percentage of samples <= the corresponding
    value, matching the "Cumulative Percent" axes of Figs. 2a, 7a and 8a.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("CDF of empty sample set")
    pct = np.arange(1, arr.size + 1) / arr.size * 100.0
    return arr, pct

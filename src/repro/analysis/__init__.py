"""Statistics, rolling-window estimators, and text-table rendering."""

from repro.analysis.stats import pearson, percentile, tail_latency
from repro.analysis.tables import render_series, render_table
from repro.analysis.windows import RollingTailEstimator, windowed_series

__all__ = [
    "RollingTailEstimator", "pearson", "percentile", "render_series",
    "render_table", "tail_latency", "windowed_series",
]

"""repro — a reproduction of *Rubik: Fast Analytical Power Management for
Latency-Critical Systems* (Kasture, Bartolini, Beckmann, Sanchez,
MICRO-48, 2015).

Public API tour:

* :class:`repro.Rubik` — the analytical fine-grain DVFS controller.
* :mod:`repro.sim` — the discrete-event server simulator it runs in.
* :mod:`repro.workloads` — the five latency-critical app models.
* :mod:`repro.schemes` — baselines: fixed-frequency, StaticOracle,
  AdrenalineOracle, DynamicOracle.
* :mod:`repro.coloc` — RubikColoc: batch/LC colocation and the
  datacenter model.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import Rubik, SchemeContext, Trace, run_trace
    from repro.workloads.apps import MASSTREE
    from repro.experiments.common import make_context

    context = make_context(MASSTREE, seed=1)
    trace = Trace.generate_at_load(MASSTREE, load=0.4, seed=1)
    result = run_trace(trace, Rubik(), context)
    print(result.tail_latency(), result.energy_per_request_j)
"""

from repro.config import (
    CmpConfig,
    DvfsConfig,
    DEFAULT_CMP,
    DEFAULT_DVFS,
    NOMINAL_FREQUENCY_HZ,
    TAIL_PERCENTILE,
    frequency_grid,
)
from repro.core.controller import Rubik
from repro.core.histogram import Histogram
from repro.core.tail_tables import TailTable, TargetTailTables
from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.fixed import FixedFrequency
from repro.schemes.static_oracle import StaticOracle
from repro.schemes.adrenaline import AdrenalineOracle
from repro.sim.server import RunResult, run_trace
from repro.sim.trace import Trace
from repro.workloads.base import AppProfile

__version__ = "1.0.0"

__all__ = [
    "AdrenalineOracle",
    "AppProfile",
    "CmpConfig",
    "DEFAULT_CMP",
    "DEFAULT_DVFS",
    "DvfsConfig",
    "FixedFrequency",
    "Histogram",
    "NOMINAL_FREQUENCY_HZ",
    "Rubik",
    "RunResult",
    "Scheme",
    "SchemeContext",
    "StaticOracle",
    "TAIL_PERCENTILE",
    "TailTable",
    "TargetTailTables",
    "Trace",
    "frequency_grid",
    "run_trace",
]

"""Native (C, ctypes) fast path for the Rubik decision/event kernel.

Perf layer 7 (docs/performance.md): ``rubik_native.c`` holds the Eq. 2
decision fold and the whole-run event loop; :mod:`.build` compiles and
loads it on first use (gated by ``REPRO_NATIVE``); :mod:`.kernel` is
the ctypes state mirror and per-event decide wrapper; :mod:`.session`
drives whole ``run_trace`` spans through the C loop.

Importing this package never builds or loads anything — the build is
triggered lazily by :func:`available` / :func:`load_library`, and every
failure degrades to the Python kernel with a warn-once notice.
"""

from repro.core._native.build import (
    NATIVE_ENV,
    _reset_for_tests,
    available,
    build_info,
    env_mode,
    load_library,
)

__all__ = [
    "NATIVE_ENV",
    "available",
    "build_info",
    "env_mode",
    "load_library",
    "_reset_for_tests",
]

/* Native Rubik decision fold + event-step kernel (perf layer 7).
 *
 * One translation unit, no libm, no Python headers: the library is
 * loaded through ctypes and driven by src/repro/core/_native/kernel.py
 * (per-event decide) and session.py (whole-run span loop).  Every
 * floating-point expression mirrors the Python implementation in
 * repro/core/decision_kernel.py, repro/sim/dvfs.py and repro/sim/core.py
 * operation-for-operation: compiled for baseline x86-64/AArch64 with
 * -ffp-contract=off, each individual IEEE-754 double add/sub/mul/div
 * rounds exactly like the CPython float op, so the emitted decisions,
 * segment boundaries and completion times are bitwise-identical to the
 * Python paths (the scalar oracle remains the pin; see
 * tests/core/test_decision_kernel.py and test_native_kernel.py).
 *
 * The struct layout below is mirrored field-for-field by
 * kernel.RKState (ctypes.Structure).  Every field is 8 bytes wide
 * (double / int64 / pointer), so there is no padding to disagree on;
 * rk_state_size() lets the wrapper assert the mirror never drifts.
 */

#include <stdint.h>

typedef int64_t i64;

/* Return codes of rk_decide_entry / rk_span. */
#define RK_OK 0
#define RK_DONE 0
#define RK_NEED_ROWS 1    /* fill need_row_c/need_row_m rows, re-enter */
#define RK_SURFACE 2      /* flush observations + maybe-refresh, re-enter */
#define RK_FLUSH_SEGMENTS 3
#define RK_FLUSH_HISTORY 4
#define RK_ERROR 5

/* Span-loop phase (resume point after a surfacing return). */
#define PH_NEXT 0    /* pick + process the next event */
#define PH_DECIDE 1  /* event processed; the decide is still owed */

/* Segment state codes (repro/power/energy.py). */
#define SEG_BUSY 0.0
#define SEG_IDLE 2.0

#define RK_INF (__builtin_inf())

typedef struct {
    /* -- grid / config (constant for the kernel's lifetime) ---------- */
    double *grid;        /* [nsteps] ascending DVFS frequencies */
    double *inv_grid;    /* [nsteps] 1.0 / grid[i] (Python-computed) */
    i64 nsteps;
    i64 nominal_idx;
    double min_hz;
    double max_hz;
    double trans_latency;
    i64 cert_min_queue;

    /* -- evaluation context (synced by the wrapper) ------------------ */
    i64 tables_ready;    /* controller.tables is not None */
    i64 tables_gen;      /* bumped whenever the table pair object changes */
    double target;       /* trimmer internal target (or latency bound) */
    double *cbounds;     /* [nrows] cycles-table row lower bounds */
    double *mbounds;     /* [nrows] memory-table row lower bounds */
    i64 nrows;
    double *rows_c;      /* [nrows * row_cap] flattened cycles row lists */
    double *rows_m;      /* [nrows * row_cap] flattened memory row lists */
    i64 *rowlen_c;       /* [nrows] filled prefix per cycles row */
    i64 *rowlen_m;       /* [nrows] filled prefix per memory row */
    i64 row_cap;

    /* -- queue mirror: arrival times of current + queued, oldest first */
    double *arr_ring;    /* [arr_mask + 1] */
    i64 arr_mask;        /* capacity - 1 (capacity is a power of two) */
    i64 arr_head;
    i64 arr_len;
    i64 queue_epoch;     /* mirrors Core.queue_epoch */

    /* -- kernel incremental state (DecisionKernel slots) ------------- */
    i64 certs;
    i64 k_tables_gen;    /* _tables identity of the cached row pair */
    i64 k_row_c;
    i64 k_row_m;
    double k_target;
    i64 mono_ok;
    i64 mono_len;
    i64 k_epoch;
    i64 k_n;
    i64 k_fidx;
    i64 k_witness;
    i64 k_any_h;
    double tau_abs;
    double sigma_abs;

    /* -- decide I/O -------------------------------------------------- */
    double elapsed_c;    /* per-event mode: set by the wrapper */
    double elapsed_m;
    double decided_hz;   /* out: the Eq. 2 frequency request */
    i64 need_row_c;      /* out on RK_NEED_ROWS */
    i64 need_row_m;
    i64 need_len;

    /* -- KernelStats branch counters --------------------------------- */
    i64 st_idle;
    i64 st_warmup;
    i64 st_fast_arr;
    i64 st_fast_comp;
    i64 st_lean;
    i64 st_cert;
    i64 st_inv_tables;
    i64 st_inv_target;
    i64 st_inv_row;
    i64 st_inv_epoch;

    /* ================= span-mode state ============================== */
    i64 span_mode;
    i64 phase;           /* PH_NEXT / PH_DECIDE */
    double now;
    i64 events;          /* arrivals + completions processed */

    /* trace columns + per-request outputs (wrapper-owned arrays) */
    double *tr_arrival;  /* [n_req] */
    double *tr_cycles;
    double *tr_memory;
    double *out_start;   /* [n_req] service start times */
    double *out_finish;  /* [n_req] completion times */
    double *decision_log;/* [2 * n_req] requested hz, one per decide */
    i64 n_req;
    i64 next_arrival;    /* index of the next unadmitted trace request */
    i64 decision_count;

    /* FIFO of waiting request ids (in-service excluded) */
    i64 *rid_ring;       /* [rq_mask + 1] */
    i64 rq_mask;
    i64 rq_head;
    i64 rq_len;

    /* in-service request */
    i64 has_current;
    i64 cur_rid;
    double cur_C;        /* compute_cycles */
    double cur_M;        /* memory_time_s */
    double cur_progress;

    /* pending completion event */
    i64 completion_valid;
    double completion_time;

    /* DVFS domain (repro/sim/dvfs.py state machine) */
    double cur_hz;
    i64 pending_valid;
    double pending_target;
    double pending_apply_at;
    i64 latched_valid;
    double latched_target;
    i64 transitions;
    i64 record_history;
    double *hist_buf;    /* [2 * hist_cap] (time, freq) pairs */
    i64 hist_cap;
    i64 hist_count;
    double unacct[8];    /* <=4 applied-but-unconsumed (time, freq) pairs */
    i64 unacct_n;

    /* segment accounting (5 doubles per closed segment) */
    double *seg_buf;     /* [5 * seg_cap] start,end,code,freq,mem_frac */
    i64 seg_cap;
    i64 seg_count;
    double seg_start;    /* open segment */
    double seg_code;
    double seg_freq;
    double seg_mem_frac;

    /* listener-phase bookkeeping (refresh / trimmer surfacing) */
    i64 completed;             /* completions this span (== flush cursor) */
    i64 observed_total;        /* profiler.total_observed mirror */
    i64 profiler_min_samples;
    double refresh_period;
    double last_table_update;
    i64 samples_at_last_update;
    i64 trimmer_on;
    double trimmer_period;
    double trimmer_last_adjust;
} rk_state;

i64 rk_state_size(void) { return (i64)sizeof(rk_state); }

i64 rk_abi_version(void) { return 1; }

/* ------------------------------------------------------------------ */
/* bisect re-implementations (exact Python semantics on doubles)      */
/* ------------------------------------------------------------------ */
static i64 rk_bisect_left(const double *a, i64 n, double x) {
    i64 lo = 0, hi = n;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (a[mid] < x) lo = mid + 1; else hi = mid;
    }
    return lo;
}

static i64 rk_bisect_right(const double *a, i64 n, double x) {
    i64 lo = 0, hi = n;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (x < a[mid]) hi = mid; else lo = mid + 1;
    }
    return lo;
}

/* ------------------------------------------------------------------ */
/* queue rings                                                        */
/* ------------------------------------------------------------------ */
static double ring_get(const rk_state *s, i64 i) {
    return s->arr_ring[(s->arr_head + i) & s->arr_mask];
}

static void ring_push(rk_state *s, double t) {
    s->arr_ring[(s->arr_head + s->arr_len) & s->arr_mask] = t;
    s->arr_len++;
}

static void ring_pop(rk_state *s) {
    s->arr_head = (s->arr_head + 1) & s->arr_mask;
    s->arr_len--;
}

static void rq_push(rk_state *s, i64 rid) {
    s->rid_ring[(s->rq_head + s->rq_len) & s->rq_mask] = rid;
    s->rq_len++;
}

static i64 rq_pop(rk_state *s) {
    i64 rid = s->rid_ring[s->rq_head];
    s->rq_head = (s->rq_head + 1) & s->rq_mask;
    s->rq_len--;
    return rid;
}

/* ------------------------------------------------------------------ */
/* segment accounting + DVFS state machine (span mode)                */
/* ------------------------------------------------------------------ */
static void seg_append(rk_state *s, double start, double end,
                       double code, double freq, double mem_frac) {
    double *row = s->seg_buf + 5 * s->seg_count;
    row[0] = start;
    row[1] = end;
    row[2] = code;
    row[3] = freq;
    row[4] = mem_frac;
    s->seg_count++;
}

/* Request.advance(duration, freq) */
static void advance_current(rk_state *s, double duration, double freq) {
    double total = s->cur_C / freq + s->cur_M;
    if (total <= 0.0) { s->cur_progress = 1.0; return; }
    double p = s->cur_progress + duration / total;
    s->cur_progress = p > 1.0 ? 1.0 : p;
}

/* DvfsDomain._apply */
static void dvfs_apply(rk_state *s, double target, double at) {
    if (target == s->cur_hz) return;
    s->cur_hz = target;
    s->transitions++;
    if (s->record_history && s->hist_count < s->hist_cap) {
        s->hist_buf[2 * s->hist_count] = at;
        s->hist_buf[2 * s->hist_count + 1] = target;
        s->hist_count++;
    }
    if (s->unacct_n < 4) {
        s->unacct[2 * s->unacct_n] = at;
        s->unacct[2 * s->unacct_n + 1] = target;
        s->unacct_n++;
    }
}

/* DvfsDomain._sync */
static void dvfs_sync(rk_state *s) {
    while (s->pending_valid && s->now >= s->pending_apply_at) {
        double target = s->pending_target;
        double applied_at = s->pending_apply_at;
        s->pending_valid = 0;
        dvfs_apply(s, target, applied_at);
        if (s->latched_valid) {
            double nxt = s->latched_target;
            s->latched_valid = 0;
            if (nxt != s->cur_hz) {
                s->pending_valid = 1;
                s->pending_target = nxt;
                s->pending_apply_at = applied_at + s->trans_latency;
            }
        }
    }
}

/* Core._consume_boundary */
static void consume_boundary(rk_state *s, double at, double newf) {
    double duration = at - s->seg_start;
    if (duration > 0.0) {
        seg_append(s, s->seg_start, at, s->seg_code, s->seg_freq,
                   s->seg_mem_frac);
        if (s->seg_code == SEG_BUSY && s->has_current)
            advance_current(s, duration, s->seg_freq);
    }
    s->seg_start = at;
    s->seg_freq = newf;
    if (s->seg_code == SEG_BUSY) {
        double total = s->cur_C / newf + s->cur_M;
        s->seg_mem_frac = total > 0.0 ? s->cur_M / total : 0.0;
    } else {
        s->seg_mem_frac = 0.0;
    }
}

/* Core._sync_accounting */
static void sync_accounting(rk_state *s) {
    if (s->pending_valid && s->now >= s->pending_apply_at)
        dvfs_sync(s);
    for (i64 i = 0; i < s->unacct_n; i++)
        consume_boundary(s, s->unacct[2 * i], s->unacct[2 * i + 1]);
    s->unacct_n = 0;
}

/* Core._close_segment (the buffer-flush threshold is enforced by the
 * span loop's per-event headroom check instead). */
static void close_segment(rk_state *s) {
    if (s->unacct_n || (s->pending_valid && s->now >= s->pending_apply_at))
        sync_accounting(s);
    double duration = s->now - s->seg_start;
    if (duration > 0.0) {
        seg_append(s, s->seg_start, s->now, s->seg_code, s->seg_freq,
                   s->seg_mem_frac);
        if (s->seg_code == SEG_BUSY && s->has_current)
            advance_current(s, duration, s->seg_freq);
    }
    s->seg_start = s->now;
}

/* Core._open_segment (callers synced at this timestamp already) */
static void open_segment(rk_state *s) {
    s->seg_start = s->now;
    double freq = s->cur_hz;
    if (s->has_current) {
        s->seg_code = SEG_BUSY;
        double total = s->cur_C / freq + s->cur_M;
        s->seg_mem_frac = total > 0.0 ? s->cur_M / total : 0.0;
    } else {
        s->seg_code = SEG_IDLE;
        s->seg_mem_frac = 0.0;
    }
    s->seg_freq = freq;
}

/* Core._schedule_completion: walk the (<=2-entry) transition plan. */
static void schedule_completion(rk_state *s) {
    double progress = s->cur_progress;
    double prev = s->seg_start;
    double total = s->cur_C / s->cur_hz + s->cur_M;
    double finish = prev + (1.0 - progress) * total;
    if (s->pending_valid) {
        double apply_at = s->pending_apply_at;
        if (finish >= apply_at) {
            double p = progress + (apply_at - prev) / total;
            progress = p > 1.0 ? 1.0 : p;
            total = s->cur_C / s->pending_target + s->cur_M;
            finish = apply_at + (1.0 - progress) * total;
            if (s->latched_valid && s->latched_target != s->pending_target) {
                double chained_at = apply_at + s->trans_latency;
                if (finish >= chained_at) {
                    p = progress + (chained_at - apply_at) / total;
                    progress = p > 1.0 ? 1.0 : p;
                    total = s->cur_C / s->latched_target + s->cur_M;
                    finish = chained_at + (1.0 - progress) * total;
                }
            }
        }
    }
    /* Simulator.schedule_entry clamps to the current clock. */
    s->completion_time = finish > s->now ? finish : s->now;
    s->completion_valid = 1;
}

/* DvfsDomain.request + Core._on_retarget (grid membership is
 * guaranteed: every requested value is grid[idx]). */
static void dvfs_request(rk_state *s, double target) {
    if (!s->pending_valid) {
        if (target == s->cur_hz) return;
    } else {
        dvfs_sync(s);
    }
    double eff = s->latched_valid ? s->latched_target
               : (s->pending_valid ? s->pending_target : s->cur_hz);
    if (target == eff) return;
    if (s->pending_valid) {
        s->latched_valid = 1;
        s->latched_target = target;
    } else if (s->trans_latency <= 0.0) {
        dvfs_apply(s, target, s->now);
    } else {
        s->pending_valid = 1;
        s->pending_target = target;
        s->pending_apply_at = s->now + s->trans_latency;
    }
    /* on_retarget */
    if (s->unacct_n || (s->pending_valid && s->now >= s->pending_apply_at))
        sync_accounting(s);
    if (s->has_current)
        schedule_completion(s);
}

/* Core.current_request_elapsed */
static void compute_elapsed(rk_state *s, double *ec, double *em) {
    if (!s->has_current) { *ec = 0.0; *em = 0.0; return; }
    if (s->unacct_n || (s->pending_valid && s->now >= s->pending_apply_at))
        sync_accounting(s);
    double progress = s->cur_progress;
    if (s->seg_code == SEG_BUSY) {
        double total = s->cur_C / s->seg_freq + s->cur_M;
        if (total > 0.0) {
            double extra = (s->now - s->seg_start) / total;
            double p = progress + extra;
            progress = p > 1.0 ? 1.0 : p;
        }
    }
    *ec = progress * s->cur_C;
    *em = progress * s->cur_M;
}

/* ------------------------------------------------------------------ */
/* decision kernel (DecisionKernel ported verbatim)                   */
/* ------------------------------------------------------------------ */
static i64 ensure_mono(rk_state *s, i64 upto) {
    if (!s->mono_ok) return 0;
    i64 k = s->mono_len;
    if (k >= upto) return 1;
    const double *crow = s->rows_c + s->k_row_c * s->row_cap;
    const double *mrow = s->rows_m + s->k_row_m * s->row_cap;
    i64 len_c = s->rowlen_c[s->k_row_c];
    i64 len_m = s->rowlen_m[s->k_row_m];
    if (len_c < upto) upto = len_c;
    if (len_m < upto) upto = len_m;
    for (i64 j = (k > 1 ? k : 1); j < upto; j++) {
        if (crow[j] < crow[j - 1] || mrow[j] < mrow[j - 1]) {
            s->mono_ok = 0;
            return 0;
        }
    }
    s->mono_len = upto;
    return 1;
}

static i64 arrival_fast(rk_state *s, i64 n, double now, double target) {
    i64 fidx = s->k_fidx;
    const double *grid = s->grid;
    i64 last = s->nsteps - 1;
    i64 any_h = s->k_any_h;
    if (fidx < last && now > s->tau_abs)
        return 0;
    if (!any_h && fidx < s->nominal_idx && now > s->sigma_abs)
        return 0;
    i64 witness = s->k_witness;
    i64 floored = any_h && fidx == s->nominal_idx;
    const double *mrow = s->rows_m + s->k_row_m * s->row_cap;
    const double *crow = s->rows_c + s->k_row_c * s->row_cap;
    if (fidx > 0 && !floored) {
        if (witness < 0)
            return 0;
        if ((target - (now - ring_get(s, witness))) - mrow[witness] <= 0.0)
            return 0;
    }
    if (fidx == last) {
        s->decided_hz = grid[last];
        s->st_fast_arr++;
        return 1;
    }
    i64 n_idx = n - 1;  /* rows cover n: decide pre-checked */
    double c_i = crow[n_idx];
    double slack = (target - (now - ring_get(s, n - 1))) - mrow[n_idx];
    if (slack <= 0.0) {
        any_h = 1;
    } else {
        double guard = 1e-9 + 1e-12 * now;
        double sig = now + slack - guard;
        if (sig < s->sigma_abs) s->sigma_abs = sig;
        double p = grid[fidx] * slack;
        if (c_i <= p) {
            double tau = now + (p - c_i) * s->inv_grid[fidx] - guard;
            if (tau < s->tau_abs) s->tau_abs = tau;
        } else {
            i64 idx = rk_bisect_left(grid, s->nsteps, c_i / slack - 1e-9);
            fidx = idx < last ? idx : last;
            witness = n_idx;
            if (fidx < last) {
                p = grid[fidx] * slack;
                double tau = now + (p - c_i) * s->inv_grid[fidx] - guard;
                if (tau < s->tau_abs) s->tau_abs = tau;
            }
        }
    }
    if (any_h && fidx < s->nominal_idx) {
        fidx = s->nominal_idx;
        witness = -1;
    }
    s->k_fidx = fidx;
    s->k_witness = witness;
    s->k_any_h = any_h;
    s->decided_hz = grid[fidx];
    s->st_fast_arr++;
    return 1;
}

static i64 completion_fast(rk_state *s, i64 n, double now, double target) {
    (void)n;  /* the shifted length is validated by the caller's epoch */
    if (s->k_any_h)
        return 0;
    i64 fidx = s->k_fidx;
    const double *grid = s->grid;
    i64 last = s->nsteps - 1;
    if (fidx == 0) {
        if (now > s->tau_abs || now > s->sigma_abs)
            return 0;
        if (!ensure_mono(s, s->k_n))
            return 0;
        s->decided_hz = grid[0];
        s->k_witness = -1;
        s->st_fast_comp++;
        return 1;
    }
    i64 b = s->k_witness - 1;
    if (b < 0)
        return 0;
    if (fidx < last) {
        if (now > s->tau_abs)
            return 0;
        if (fidx < s->nominal_idx && now > s->sigma_abs)
            return 0;
        if (!ensure_mono(s, s->k_n))
            return 0;
    }
    const double *mrow = s->rows_m + s->k_row_m * s->row_cap;
    const double *crow = s->rows_c + s->k_row_c * s->row_cap;
    double slack = (target - (now - ring_get(s, b))) - mrow[b];
    if (slack <= 0.0)
        return 0;
    i64 idx = rk_bisect_left(grid, s->nsteps, crow[b] / slack - 1e-9);
    if ((idx < last ? idx : last) != fidx)
        return 0;
    s->decided_hz = grid[fidx];
    s->k_witness = b;
    s->st_fast_comp++;
    return 1;
}

static void full_fold(rk_state *s, i64 n, double now, double target,
                      i64 row_c, i64 row_m, i64 epoch) {
    /* Rows cover n (decide pre-checked), so the fold cannot surface:
     * the counter increments exactly once per completed fold. */
    s->st_cert++;
    if (row_c != s->k_row_c || row_m != s->k_row_m
            || s->tables_gen != s->k_tables_gen) {
        s->mono_ok = 1;
        s->mono_len = 0;
        s->k_row_c = row_c;
        s->k_row_m = row_m;
        s->k_tables_gen = s->tables_gen;
    }
    const double *crow = s->rows_c + row_c * s->row_cap;
    const double *mrow = s->rows_m + row_m * s->row_cap;
    const double *grid = s->grid;
    const double *inv_grid = s->inv_grid;
    i64 last = s->nsteps - 1;
    i64 fidx = 0;
    double f = grid[0];
    i64 any_h = 0;
    i64 witness = -1;
    double inv_f = inv_grid[0];
    double guard = 1e-9 + 1e-12 * now;
    double tau_abs = RK_INF;
    double sigma_abs = RK_INF;
    for (i64 i = 0; i < n; i++) {
        double c_i = crow[i];
        double m_i = mrow[i];
        double slack = (target - (now - ring_get(s, i))) - m_i;
        if (slack <= 0.0) {
            any_h = 1;
            continue;
        }
        double sig = now + slack - guard;
        if (sig < sigma_abs) sigma_abs = sig;
        double p = f * slack;
        if (c_i <= p) {
            double tau = now + (p - c_i) * inv_f - guard;
            if (tau < tau_abs) tau_abs = tau;
            continue;
        }
        i64 idx = rk_bisect_left(grid, s->nsteps, c_i / slack - 1e-9);
        witness = i;
        if (idx >= last) {
            fidx = last;
            tau_abs = RK_INF;
            sigma_abs = RK_INF;
            break;
        }
        fidx = idx;
        f = grid[fidx];
        inv_f = inv_grid[fidx];
        double tau = now + (f * slack - c_i) * inv_f - guard;
        if (tau < tau_abs) tau_abs = tau;
    }
    if (fidx < last && any_h && fidx < s->nominal_idx) {
        fidx = s->nominal_idx;
        witness = -1;
    }
    s->tau_abs = tau_abs;
    s->sigma_abs = sigma_abs;
    s->certs = 1;
    s->k_target = target;
    s->k_epoch = epoch;
    s->k_n = n;
    s->k_fidx = fidx;
    s->k_witness = witness;
    s->k_any_h = any_h;
    s->decided_hz = grid[fidx];
}

/* DecisionKernel.decide.  Restartable: RK_NEED_ROWS is returned before
 * any state (counters included) is mutated, so the wrapper fills the
 * requested rows and simply calls again. */
static i64 rk_decide(rk_state *s) {
    i64 n = s->arr_len;
    if (n == 0) {
        s->decided_hz = s->min_hz;
        s->st_idle++;
        s->certs = 0;
        return RK_OK;
    }
    if (!s->tables_ready) {
        s->decided_hz = s->max_hz;
        s->st_warmup++;
        s->certs = 0;
        return RK_OK;
    }
    double target = s->target;
    double now = s->now;
    double elapsed_c, elapsed_m;
    if (s->span_mode) {
        compute_elapsed(s, &elapsed_c, &elapsed_m);
    } else {
        elapsed_c = s->elapsed_c;
        elapsed_m = s->elapsed_m;
    }
    i64 row_c = rk_bisect_right(s->cbounds, s->nrows, elapsed_c) - 1;
    i64 row_m = rk_bisect_right(s->mbounds, s->nrows, elapsed_m) - 1;
    /* Row availability, checked up front so every later branch (lean
     * fold, arrival extension, full fold) can run to completion. */
    if (s->rowlen_c[row_c] < n || s->rowlen_m[row_m] < n) {
        s->need_row_c = row_c;
        s->need_row_m = row_m;
        s->need_len = n;
        return RK_NEED_ROWS;
    }
    const double *grid = s->grid;
    i64 last = s->nsteps - 1;

    if (n < s->cert_min_queue) {
        /* Lean fold.  The cached-pair bookkeeping mirrors the Python
         * refetch: the row lists are append-only, so the mono prefix
         * resets only when the pair (row indices or table identity)
         * actually changed. */
        if (row_c != s->k_row_c || row_m != s->k_row_m
                || s->tables_gen != s->k_tables_gen) {
            s->mono_ok = 1;
            s->mono_len = 0;
            s->k_row_c = row_c;
            s->k_row_m = row_m;
            s->k_tables_gen = s->tables_gen;
        }
        const double *crow = s->rows_c + row_c * s->row_cap;
        const double *mrow = s->rows_m + row_m * s->row_cap;
        s->certs = 0;
        s->st_lean++;
        if (n == 1) {
            double slack = (target - (now - ring_get(s, 0))) - mrow[0];
            i64 idx;
            if (slack <= 0.0) {
                idx = s->nominal_idx;
            } else {
                idx = rk_bisect_left(grid, s->nsteps,
                                     crow[0] / slack - 1e-9);
                if (idx > last) idx = last;
            }
            s->decided_hz = grid[idx];
            return RK_OK;
        }
        i64 fidx = 0;
        double f = grid[0];
        i64 any_h = 0;
        for (i64 i = 0; i < n; i++) {
            double slack = (target - (now - ring_get(s, i))) - mrow[i];
            if (slack <= 0.0) {
                any_h = 1;
            } else if (crow[i] > f * slack) {
                i64 idx = rk_bisect_left(grid, s->nsteps,
                                         crow[i] / slack - 1e-9);
                if (idx >= last) {
                    fidx = last;
                    break;
                }
                fidx = idx;
                f = grid[fidx];
            }
        }
        if (fidx < last && any_h && fidx < s->nominal_idx)
            fidx = s->nominal_idx;
        s->decided_hz = grid[fidx];
        return RK_OK;
    }

    i64 epoch = s->queue_epoch;
    if (s->certs && epoch == s->k_epoch + 1) {
        if (s->tables_gen != s->k_tables_gen) {
            s->st_inv_tables++;
        } else if (target != s->k_target) {
            s->st_inv_target++;
        } else if (row_c != s->k_row_c || row_m != s->k_row_m) {
            s->st_inv_row++;
        } else if (n == s->k_n + 1) {
            if (arrival_fast(s, n, now, target)) {
                s->k_epoch = epoch;
                s->k_n = n;
                return RK_OK;
            }
        } else if (n == s->k_n - 1) {
            if (completion_fast(s, n, now, target)) {
                s->k_epoch = epoch;
                s->k_n = n;
                return RK_OK;
            }
        }
    } else if (s->certs) {
        s->st_inv_epoch++;
    }
    full_fold(s, n, now, target, row_c, row_m, epoch);
    return RK_OK;
}

/* Per-event entry point (listener-driven mode). */
i64 rk_decide_entry(rk_state *s) { return rk_decide(s); }

/* ------------------------------------------------------------------ */
/* span event loop (run_trace inner loop)                             */
/* ------------------------------------------------------------------ */

/* Would the controller's _maybe_refresh_tables do any work right now?
 * Mirrors its three guards exactly (ready <=> total >= min_samples,
 * since min_samples <= window). */
static i64 refresh_due(const rk_state *s) {
    if (s->now - s->last_table_update < s->refresh_period) return 0;
    if (s->observed_total < s->profiler_min_samples) return 0;
    if (s->observed_total == s->samples_at_last_update) return 0;
    return 1;
}

/* Core._begin_service */
static void begin_service(rk_state *s, i64 rid) {
    close_segment(s);
    s->has_current = 1;
    s->cur_rid = rid;
    s->cur_C = s->tr_cycles[rid];
    s->cur_M = s->tr_memory[rid];
    s->cur_progress = 0.0;
    s->out_start[rid] = s->now;
    schedule_completion(s);
    open_segment(s);
}

/* Process one arrival; returns nonzero when the listener phase must
 * surface to Python (a refresh could fire before the decide). */
static i64 process_arrival(rk_state *s) {
    i64 rid = s->next_arrival++;
    s->now = s->tr_arrival[rid];
    s->events++;
    ring_push(s, s->now);
    s->queue_epoch++;
    if (!s->has_current)
        begin_service(s, rid);
    else
        rq_push(s, rid);
    return refresh_due(s);
}

/* Process one completion; surfaces when a refresh or a trimmer adjust
 * could fire before the decide (profiler/trimmer observes are buffered
 * and replayed by the wrapper at surfacings — invisible otherwise,
 * since that state is only ever read at refresh/adjust points). */
static i64 process_completion(rk_state *s) {
    s->now = s->completion_time;
    s->events++;
    s->completion_valid = 0;
    close_segment(s);
    i64 rid = s->cur_rid;
    s->out_finish[rid] = s->now;
    ring_pop(s);
    s->queue_epoch++;
    s->has_current = 0;
    if (s->rq_len > 0)
        begin_service(s, rq_pop(s));
    else
        open_segment(s);
    s->completed++;
    s->observed_total++;
    i64 surface = refresh_due(s);
    if (s->trimmer_on
            && s->now - s->trimmer_last_adjust >= s->trimmer_period)
        surface = 1;
    return surface;
}

/* Drive events until done, returning to Python only for NEED_ROWS,
 * surfacings, or a full segment/history buffer.  Re-enter after
 * servicing; `phase` records whether the current event still owes its
 * frequency decision. */
i64 rk_span(rk_state *s) {
    if (!s->span_mode)
        return RK_ERROR;
    for (;;) {
        if (s->phase == PH_DECIDE) {
            i64 rc = rk_decide(s);
            if (rc != RK_OK)
                return rc;
            if (s->decision_count < 2 * s->n_req)
                s->decision_log[s->decision_count] = s->decided_hz;
            s->decision_count++;
            dvfs_request(s, s->decided_hz);
            s->phase = PH_NEXT;
        }
        /* Buffer headroom: one event closes at most a handful of
         * segments (close + <=4 transition boundaries, twice). */
        if (s->seg_count + 16 > s->seg_cap)
            return RK_FLUSH_SEGMENTS;
        if (s->record_history && s->hist_count + 4 > s->hist_cap)
            return RK_FLUSH_HISTORY;
        i64 have_arrival = s->next_arrival < s->n_req;
        if (s->completion_valid) {
            /* COMPLETION_PRIORITY=0 beats ARRIVAL_PRIORITY=1 on ties. */
            if (have_arrival
                    && s->tr_arrival[s->next_arrival] < s->completion_time) {
                s->phase = PH_DECIDE;
                if (process_arrival(s))
                    return RK_SURFACE;
            } else {
                s->phase = PH_DECIDE;
                if (process_completion(s))
                    return RK_SURFACE;
            }
        } else if (have_arrival) {
            s->phase = PH_DECIDE;
            if (process_arrival(s))
                return RK_SURFACE;
        } else {
            return RK_DONE;
        }
    }
}

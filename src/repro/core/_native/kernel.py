"""ctypes mirror of the native Rubik kernel (per-event decide path).

:class:`RKState` replicates ``rk_state`` in ``rubik_native.c``
field-for-field (every field is 8 bytes wide, so there is no padding to
disagree on; the constructor asserts ``sizeof`` against the library's
``rk_state_size()``).  :class:`NativeDecisionKernel` is the drop-in
fourth decision path: it owns the numpy arrays the C side points into
(DVFS grid, flattened tail-table row lists, the arrival-time ring),
keeps them in sync with the controller between calls, and routes the
decided frequency through ``core.request_frequency`` in Python so
listeners, recorders and the DVFS domain see exactly the calls the
Python kernels make.

Row-list state round-trips across ``TailTableCache`` refresh carries
the same way :class:`repro.core.decision_kernel.DecisionKernel` does:
table identity maps to a generation counter (bumped only when the pair
object actually changes), and the flattened rows are filled lazily from
the tables' own append-only per-row caches on ``RK_NEED_ROWS``.
"""

from __future__ import annotations

import ctypes
from bisect import bisect_left
from typing import Optional

import numpy as np

from repro.core._native import build
from repro.core.decision_kernel import CERT_MIN_QUEUE, KernelStats

_DP = ctypes.POINTER(ctypes.c_double)
_IP = ctypes.POINTER(ctypes.c_int64)

# Return codes / phases (rubik_native.c).
RK_OK = 0
RK_DONE = 0
RK_NEED_ROWS = 1
RK_SURFACE = 2
RK_FLUSH_SEGMENTS = 3
RK_FLUSH_HISTORY = 4
RK_ERROR = 5
PH_NEXT = 0
PH_DECIDE = 1


class RKState(ctypes.Structure):
    """Field-for-field mirror of ``rk_state`` (see rubik_native.c)."""

    _fields_ = [
        # grid / config
        ("grid", _DP),
        ("inv_grid", _DP),
        ("nsteps", ctypes.c_int64),
        ("nominal_idx", ctypes.c_int64),
        ("min_hz", ctypes.c_double),
        ("max_hz", ctypes.c_double),
        ("trans_latency", ctypes.c_double),
        ("cert_min_queue", ctypes.c_int64),
        # evaluation context
        ("tables_ready", ctypes.c_int64),
        ("tables_gen", ctypes.c_int64),
        ("target", ctypes.c_double),
        ("cbounds", _DP),
        ("mbounds", _DP),
        ("nrows", ctypes.c_int64),
        ("rows_c", _DP),
        ("rows_m", _DP),
        ("rowlen_c", _IP),
        ("rowlen_m", _IP),
        ("row_cap", ctypes.c_int64),
        # queue mirror
        ("arr_ring", _DP),
        ("arr_mask", ctypes.c_int64),
        ("arr_head", ctypes.c_int64),
        ("arr_len", ctypes.c_int64),
        ("queue_epoch", ctypes.c_int64),
        # kernel incremental state
        ("certs", ctypes.c_int64),
        ("k_tables_gen", ctypes.c_int64),
        ("k_row_c", ctypes.c_int64),
        ("k_row_m", ctypes.c_int64),
        ("k_target", ctypes.c_double),
        ("mono_ok", ctypes.c_int64),
        ("mono_len", ctypes.c_int64),
        ("k_epoch", ctypes.c_int64),
        ("k_n", ctypes.c_int64),
        ("k_fidx", ctypes.c_int64),
        ("k_witness", ctypes.c_int64),
        ("k_any_h", ctypes.c_int64),
        ("tau_abs", ctypes.c_double),
        ("sigma_abs", ctypes.c_double),
        # decide I/O
        ("elapsed_c", ctypes.c_double),
        ("elapsed_m", ctypes.c_double),
        ("decided_hz", ctypes.c_double),
        ("need_row_c", ctypes.c_int64),
        ("need_row_m", ctypes.c_int64),
        ("need_len", ctypes.c_int64),
        # KernelStats branch counters
        ("st_idle", ctypes.c_int64),
        ("st_warmup", ctypes.c_int64),
        ("st_fast_arr", ctypes.c_int64),
        ("st_fast_comp", ctypes.c_int64),
        ("st_lean", ctypes.c_int64),
        ("st_cert", ctypes.c_int64),
        ("st_inv_tables", ctypes.c_int64),
        ("st_inv_target", ctypes.c_int64),
        ("st_inv_row", ctypes.c_int64),
        ("st_inv_epoch", ctypes.c_int64),
        # span-mode state
        ("span_mode", ctypes.c_int64),
        ("phase", ctypes.c_int64),
        ("now", ctypes.c_double),
        ("events", ctypes.c_int64),
        ("tr_arrival", _DP),
        ("tr_cycles", _DP),
        ("tr_memory", _DP),
        ("out_start", _DP),
        ("out_finish", _DP),
        ("decision_log", _DP),
        ("n_req", ctypes.c_int64),
        ("next_arrival", ctypes.c_int64),
        ("decision_count", ctypes.c_int64),
        ("rid_ring", _IP),
        ("rq_mask", ctypes.c_int64),
        ("rq_head", ctypes.c_int64),
        ("rq_len", ctypes.c_int64),
        ("has_current", ctypes.c_int64),
        ("cur_rid", ctypes.c_int64),
        ("cur_C", ctypes.c_double),
        ("cur_M", ctypes.c_double),
        ("cur_progress", ctypes.c_double),
        ("completion_valid", ctypes.c_int64),
        ("completion_time", ctypes.c_double),
        ("cur_hz", ctypes.c_double),
        ("pending_valid", ctypes.c_int64),
        ("pending_target", ctypes.c_double),
        ("pending_apply_at", ctypes.c_double),
        ("latched_valid", ctypes.c_int64),
        ("latched_target", ctypes.c_double),
        ("transitions", ctypes.c_int64),
        ("record_history", ctypes.c_int64),
        ("hist_buf", _DP),
        ("hist_cap", ctypes.c_int64),
        ("hist_count", ctypes.c_int64),
        ("unacct", ctypes.c_double * 8),
        ("unacct_n", ctypes.c_int64),
        ("seg_buf", _DP),
        ("seg_cap", ctypes.c_int64),
        ("seg_count", ctypes.c_int64),
        ("seg_start", ctypes.c_double),
        ("seg_code", ctypes.c_double),
        ("seg_freq", ctypes.c_double),
        ("seg_mem_frac", ctypes.c_double),
        # listener-phase bookkeeping
        ("completed", ctypes.c_int64),
        ("observed_total", ctypes.c_int64),
        ("profiler_min_samples", ctypes.c_int64),
        ("refresh_period", ctypes.c_double),
        ("last_table_update", ctypes.c_double),
        ("samples_at_last_update", ctypes.c_int64),
        ("trimmer_on", ctypes.c_int64),
        ("trimmer_period", ctypes.c_double),
        ("trimmer_last_adjust", ctypes.c_double),
    ]


def _dptr(arr: np.ndarray):
    return arr.ctypes.data_as(_DP)


def _iptr(arr: np.ndarray):
    return arr.ctypes.data_as(_IP)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Set prototypes once per loaded library and sanity-check the ABI."""
    if not getattr(lib, "_repro_prototypes_bound", False):
        lib.rk_state_size.restype = ctypes.c_int64
        lib.rk_abi_version.restype = ctypes.c_int64
        lib.rk_decide_entry.argtypes = [ctypes.POINTER(RKState)]
        lib.rk_decide_entry.restype = ctypes.c_int64
        lib.rk_span.argtypes = [ctypes.POINTER(RKState)]
        lib.rk_span.restype = ctypes.c_int64
        size = lib.rk_state_size()
        if size != ctypes.sizeof(RKState):
            raise RuntimeError(
                f"native rk_state is {size} bytes but the ctypes mirror "
                f"is {ctypes.sizeof(RKState)} — struct layouts drifted")
        lib._repro_prototypes_bound = True
    return lib


class NativeDecisionKernel:
    """Native (C) evaluator of Eq. 2 with the DecisionKernel interface.

    Exposes the same surface the controller relies on — ``decide(core)``,
    ``invalidate()``, ``note_refresh_carry()`` and ``stats`` — so the
    four-way dispatch in :class:`repro.core.controller.Rubik` treats it
    interchangeably with the Python kernel.
    """

    def __init__(self, controller) -> None:
        lib = build.load_library()
        if lib is None:
            raise RuntimeError("native kernel library is not available")
        self._lib = _bind(lib)
        self.controller = controller
        self._refresh_carries = 0

        st = self._st = RKState()  # zero-initialised by ctypes
        self._ref = ctypes.byref(st)

        dvfs = controller.context.dvfs
        grid = [float(f) for f in dvfs.frequencies]
        self._grid_arr = np.array(grid, dtype=np.float64)
        self._inv_grid_arr = np.array([1.0 / f for f in grid],
                                      dtype=np.float64)
        st.grid = _dptr(self._grid_arr)
        st.inv_grid = _dptr(self._inv_grid_arr)
        st.nsteps = len(grid)
        st.nominal_idx = min(
            bisect_left(grid, dvfs.nominal_hz - 1e-9), len(grid) - 1)
        st.min_hz = dvfs.min_hz
        st.max_hz = dvfs.max_hz
        st.trans_latency = dvfs.transition_latency_s
        st.cert_min_queue = CERT_MIN_QUEUE

        # Incremental-state keys: nothing cached yet.
        st.k_tables_gen = -1
        st.k_row_c = -1
        st.k_row_m = -1
        st.k_epoch = -1
        st.mono_ok = 1

        # Arrival-time ring (mirrors core._pending_arrivals).
        self._ring_arr = np.zeros(256, dtype=np.float64)
        st.arr_ring = _dptr(self._ring_arr)
        st.arr_mask = self._ring_arr.size - 1

        # Table row storage, bound lazily on the first tables sighting.
        self._tables_obj = None
        self._cbounds_arr: Optional[np.ndarray] = None
        self._mbounds_arr: Optional[np.ndarray] = None
        self._rows_c_arr: Optional[np.ndarray] = None
        self._rows_m_arr: Optional[np.ndarray] = None
        self._rowlen_c_arr: Optional[np.ndarray] = None
        self._rowlen_m_arr: Optional[np.ndarray] = None
        self._row_cap = 64

    # ------------------------------------------------------------------
    # DecisionKernel-compatible surface
    # ------------------------------------------------------------------
    @property
    def stats(self) -> KernelStats:
        """Branch counters, materialized from the C struct."""
        st = self._st
        return KernelStats(
            idle_decisions=st.st_idle,
            warmup_decisions=st.st_warmup,
            fast_arrivals=st.st_fast_arr,
            fast_completions=st.st_fast_comp,
            lean_folds=st.st_lean,
            cert_folds=st.st_cert,
            invalidations_tables=st.st_inv_tables,
            invalidations_target=st.st_inv_target,
            invalidations_row=st.st_inv_row,
            invalidations_epoch=st.st_inv_epoch,
            refresh_carries=self._refresh_carries,
        )

    def invalidate(self) -> None:
        """Drop all incremental state (next decision re-folds fully)."""
        self._st.certs = 0

    def note_refresh_carry(self) -> None:
        """A refresh re-resolved to the same table pair; state survived."""
        self._refresh_carries += 1

    # ------------------------------------------------------------------
    def decide(self, core) -> None:
        """Emit the Eq. 2 frequency request for the current queue."""
        ctrl = self.controller
        st = self._st
        pending = core._pending_arrivals
        n = len(pending)
        epoch = core.queue_epoch
        if epoch != st.queue_epoch or n != st.arr_len:
            self._sync_ring(pending, epoch, n)
        if n:
            tables = ctrl.tables
            if tables is not self._tables_obj:
                self._bind_tables(tables)
            if tables is not None:
                trimmer = ctrl.trimmer
                st.target = (trimmer.internal_target_s
                             if trimmer is not None
                             else ctrl.context.latency_bound_s)
                st.now = ctrl.sim.now
                elapsed_c, elapsed_m = core.current_request_elapsed()
                st.elapsed_c = elapsed_c
                st.elapsed_m = elapsed_m
        rc = self._lib.rk_decide_entry(self._ref)
        while rc == RK_NEED_ROWS:
            self._fill_rows()
            rc = self._lib.rk_decide_entry(self._ref)
        if rc != RK_OK:
            raise RuntimeError(f"native decide failed (rc={rc})")
        core.request_frequency(st.decided_hz)

    # ------------------------------------------------------------------
    # queue-mirror maintenance
    # ------------------------------------------------------------------
    def _sync_ring(self, pending, epoch: int, n: int) -> None:
        st = self._st
        if epoch == st.queue_epoch + 1 and n == st.arr_len + 1:
            # Exactly one arrival since the last decision: push.
            if n > st.arr_mask:
                self._grow_ring(n)
            self._ring_arr[(st.arr_head + st.arr_len) & st.arr_mask] = (
                pending[-1])
            st.arr_len = n
        elif epoch == st.queue_epoch + 1 and n == st.arr_len - 1:
            # Exactly one completion: pop the head.
            st.arr_head = (st.arr_head + 1) & st.arr_mask
            st.arr_len = n
        else:
            # Skipped deltas (mid-run toggle, first sighting): rebuild.
            if n > st.arr_mask:
                self._grow_ring(n)
            if n:
                self._ring_arr[:n] = list(pending)
            st.arr_head = 0
            st.arr_len = n
        st.queue_epoch = epoch

    def _grow_ring(self, need: int) -> None:
        st = self._st
        cap = self._ring_arr.size
        new_cap = cap
        while new_cap <= need:
            new_cap *= 2
        new = np.zeros(new_cap, dtype=np.float64)
        ln = st.arr_len
        for i in range(ln):  # unwrap the old ring in logical order
            new[i] = self._ring_arr[(st.arr_head + i) & st.arr_mask]
        self._ring_arr = new
        st.arr_ring = _dptr(new)
        st.arr_mask = new_cap - 1
        st.arr_head = 0

    # ------------------------------------------------------------------
    # table binding / row filling
    # ------------------------------------------------------------------
    def _bind_tables(self, tables) -> None:
        st = self._st
        self._tables_obj = tables
        if tables is None:
            st.tables_ready = 0
            return
        cbounds = tables.cycles._row_bounds_list
        mbounds = tables.memory._row_bounds_list
        nrows = len(cbounds)
        assert len(mbounds) == nrows
        if self._cbounds_arr is None or nrows != st.nrows:
            self._cbounds_arr = np.empty(nrows, dtype=np.float64)
            self._mbounds_arr = np.empty(nrows, dtype=np.float64)
            self._rows_c_arr = np.zeros((nrows, self._row_cap),
                                        dtype=np.float64)
            self._rows_m_arr = np.zeros((nrows, self._row_cap),
                                        dtype=np.float64)
            self._rowlen_c_arr = np.zeros(nrows, dtype=np.int64)
            self._rowlen_m_arr = np.zeros(nrows, dtype=np.int64)
            st.cbounds = _dptr(self._cbounds_arr)
            st.mbounds = _dptr(self._mbounds_arr)
            st.rows_c = _dptr(self._rows_c_arr)
            st.rows_m = _dptr(self._rows_m_arr)
            st.rowlen_c = _iptr(self._rowlen_c_arr)
            st.rowlen_m = _iptr(self._rowlen_m_arr)
            st.nrows = nrows
            st.row_cap = self._row_cap
        self._cbounds_arr[:] = cbounds
        self._mbounds_arr[:] = mbounds
        self._rowlen_c_arr[:] = 0
        self._rowlen_m_arr[:] = 0
        st.tables_ready = 1
        st.tables_gen += 1

    def _fill_rows(self) -> None:
        """Service RK_NEED_ROWS: copy the tables' (append-only) cached
        row lists into the flattened arrays, delta-only per row."""
        st = self._st
        tables = self._tables_obj
        n = st.need_len
        crow = tables.cycles.extended_row_list(st.need_row_c, n)
        mrow = tables.memory.extended_row_list(st.need_row_m, n)
        need = max(len(crow), len(mrow))
        if need > st.row_cap:
            self._grow_rows(need)
        rc, rm = st.need_row_c, st.need_row_m
        old_c = int(self._rowlen_c_arr[rc])
        if len(crow) > old_c:
            self._rows_c_arr[rc, old_c:len(crow)] = crow[old_c:]
            self._rowlen_c_arr[rc] = len(crow)
        old_m = int(self._rowlen_m_arr[rm])
        if len(mrow) > old_m:
            self._rows_m_arr[rm, old_m:len(mrow)] = mrow[old_m:]
            self._rowlen_m_arr[rm] = len(mrow)

    def _grow_rows(self, need: int) -> None:
        st = self._st
        new_cap = self._row_cap
        while new_cap < need:
            new_cap *= 2
        nrows = st.nrows
        for attr_rows, attr_ptr in (("_rows_c_arr", "rows_c"),
                                    ("_rows_m_arr", "rows_m")):
            old = getattr(self, attr_rows)
            new = np.zeros((nrows, new_cap), dtype=np.float64)
            new[:, :self._row_cap] = old
            setattr(self, attr_rows, new)
            setattr(st, attr_ptr, _dptr(new))
        self._row_cap = new_cap
        st.row_cap = new_cap

"""Whole-run native event loop (the ``rk_span`` driver).

When a :func:`repro.sim.server.run_trace` run is *eligible* — a plain
:class:`~repro.sim.core.Core` with no batch workload, a stock
:class:`~repro.core.controller.Rubik` resolved to the native path, and
an un-instrumented simulator — the entire event loop (event pop, clock
advance, arrival/completion fold, Eq. 2 decision, DVFS state machine,
segment accounting, completion scheduling) runs inside the C library
and only *surfaces* to Python when Python-owned state must act:

* ``RK_NEED_ROWS`` — the decision fold needs a longer tail-table row;
* ``RK_SURFACE`` — a table refresh or trimmer adjustment *could* fire
  before the next decision (the C side mirrors the controller's guards
  exactly, so it surfaces if and only if Python would do work);
* ``RK_FLUSH_SEGMENTS`` / ``RK_FLUSH_HISTORY`` — an output buffer
  needs draining into the meter / history list.

Profiler and trimmer observations are buffered (the C side only counts
them) and replayed in completion order at each surfacing — invisible
otherwise, because that state is read exclusively at refresh/adjust
points, which always surface.  Everything the Python event loop would
have produced — completed :class:`Request` records, meter totals,
segment log, DVFS transition count/history/pending state, the
simulator clock and event count — is exported back at the end, so
``finalize``/``RunResult`` code runs unchanged and the results are
bitwise-identical to the Python kernel path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core._native.kernel import (
    PH_NEXT,
    RK_DONE,
    RK_FLUSH_HISTORY,
    RK_FLUSH_SEGMENTS,
    RK_NEED_ROWS,
    RK_SURFACE,
    NativeDecisionKernel,
    _dptr,
    _iptr,
)
from repro.power.model import CoreState
from repro.sim.core import Core
from repro.sim.engine import Simulator

#: Segment-buffer rows between meter flushes (mirrors the Python
#: core's ``_FLUSH_THRESHOLD``).
_SEG_CAP = 1 << 16
_HIST_CAP = 8192


class NativeRunSession:
    """One run_trace execution driven through ``rk_span``."""

    def __init__(self, sim: Simulator, core: Core, rubik,
                 kernel: NativeDecisionKernel, trace) -> None:
        self.sim = sim
        self.core = core
        self.rubik = rubik
        self.kernel = kernel
        self.trace = trace
        st = self._st = kernel._st

        n = len(trace)
        self._arrivals = np.ascontiguousarray(trace.arrivals,
                                              dtype=np.float64)
        self._cycles = np.ascontiguousarray(trace.compute_cycles,
                                            dtype=np.float64)
        self._memory = np.ascontiguousarray(trace.memory_time_s,
                                            dtype=np.float64)
        self._out_start = np.zeros(n, dtype=np.float64)
        self._out_finish = np.zeros(n, dtype=np.float64)
        self._decision_log = np.zeros(2 * n, dtype=np.float64)
        # Python-float copies for the buffered observe replay (identical
        # values to the Request attributes the listener path reads).
        self._arr_list = self._arrivals.tolist()
        self._cyc_list = self._cycles.tolist()
        self._mem_list = self._memory.tolist()
        self._obs_flushed = 0
        self._events_committed = 0

        st.span_mode = 1
        st.phase = PH_NEXT
        st.now = sim.now
        st.events = 0
        st.tr_arrival = _dptr(self._arrivals)
        st.tr_cycles = _dptr(self._cycles)
        st.tr_memory = _dptr(self._memory)
        st.out_start = _dptr(self._out_start)
        st.out_finish = _dptr(self._out_finish)
        st.decision_log = _dptr(self._decision_log)
        st.n_req = n
        st.next_arrival = 0
        st.decision_count = 0

        # Queues: the arrival ring (shared with the per-event path) and
        # the waiting-request FIFO, both sized for the worst case (the
        # C side never grows them).
        kernel._grow_ring(n + 1)
        cap = 1
        while cap < n + 1:
            cap *= 2
        self._rid_ring = np.zeros(cap, dtype=np.int64)
        st.rid_ring = _iptr(self._rid_ring)
        st.rq_mask = cap - 1
        st.rq_head = 0
        st.rq_len = 0
        st.has_current = 0
        st.completion_valid = 0

        # DVFS domain import (the lazy state machine continues in C).
        dvfs = core.dvfs
        st.cur_hz = dvfs._current_hz
        st.pending_valid = int(dvfs._pending_target is not None)
        st.pending_target = (dvfs._pending_target
                             if dvfs._pending_target is not None else 0.0)
        st.pending_apply_at = dvfs._pending_apply_at
        st.latched_valid = int(dvfs._latched_target is not None)
        st.latched_target = (dvfs._latched_target
                             if dvfs._latched_target is not None else 0.0)
        st.transitions = dvfs.transitions
        st.record_history = int(dvfs.history is not None)
        self._hist = np.zeros(2 * _HIST_CAP, dtype=np.float64)
        st.hist_buf = _dptr(self._hist)
        st.hist_cap = _HIST_CAP
        st.hist_count = 0
        unacct = dvfs._unaccounted
        st.unacct_n = len(unacct)
        for i, (at, freq) in enumerate(unacct):
            st.unacct[2 * i] = at
            st.unacct[2 * i + 1] = freq

        # Segment accounting import.
        self._segs = np.zeros((_SEG_CAP, 5), dtype=np.float64)
        st.seg_buf = _dptr(self._segs)
        st.seg_cap = _SEG_CAP
        st.seg_count = 0
        st.seg_start = core._segment_start
        st.seg_code = float(core._seg_code)
        st.seg_freq = core._seg_freq
        st.seg_mem_frac = core._seg_mem_frac

        # Listener-phase bookkeeping (refresh / trimmer surfacing).
        st.completed = 0
        st.observed_total = rubik.profiler.total_observed
        st.profiler_min_samples = rubik.profiler.min_samples
        st.refresh_period = rubik.update_period_s
        st.last_table_update = rubik._last_table_update
        st.samples_at_last_update = rubik._samples_at_last_update
        trimmer = rubik.trimmer
        st.trimmer_on = int(trimmer is not None)
        st.trimmer_period = (trimmer.adjust_period_s
                             if trimmer is not None else 0.0)
        st.trimmer_last_adjust = (trimmer._last_adjust
                                  if trimmer is not None else 0.0)
        self._sync_eval_context()

        # Mid-run meter/segment-log readers call flush_accounting();
        # the C rows are chronologically older than anything the Python
        # buffer could accumulate, so they drain first.
        core._external_flush = self._flush_segments

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, sim: Simulator, core: Core, rubik,
               trace) -> Optional["NativeRunSession"]:
        """Build a session when the run is eligible, else None.

        Eligibility is deliberately conservative: any instrumentation or
        configuration the C loop does not model (batch background work,
        interference, extra listeners, monkeypatched core methods,
        subclassed simulator/core, pre-populated state) falls back to
        the Python event loop, which handles everything.
        """
        if len(trace) == 0:
            return None
        if type(sim) is not Simulator or type(core) is not Core:
            return None
        if sim._heap:
            return None
        if core.background is not None or core._interference_cycles is not None:
            return None
        if (core.current is not None or core.queue or core._pending_arrivals
                or core.completed or core._segment_buffer):
            return None
        if core.listeners != [rubik]:
            return None
        # A monkeypatched hot-path method (decision recorders in the
        # oracle tests) must observe every call: stay on the Python loop.
        for name in ("request_frequency", "enqueue", "flush_accounting"):
            if name in core.__dict__:
                return None
        if core.dvfs.on_retarget is None or not core.dvfs._track_boundaries:
            return None
        kernel = rubik._kernel
        if kernel is None:
            kernel = rubik._kernel = NativeDecisionKernel(rubik)
        elif not isinstance(kernel, NativeDecisionKernel):
            return None
        return cls(sim, core, rubik, kernel, trace)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Drive the span loop to completion and export final state."""
        lib = self.kernel._lib
        ref = self.kernel._ref
        fill_rows = self.kernel._fill_rows
        st = self._st
        while True:
            rc = lib.rk_span(ref)
            if rc == RK_DONE:
                break
            if rc == RK_NEED_ROWS:
                fill_rows()
            elif rc == RK_SURFACE:
                self._surface()
            elif rc == RK_FLUSH_SEGMENTS:
                self._flush_segments()
            elif rc == RK_FLUSH_HISTORY:
                self._flush_history()
            else:
                raise RuntimeError(f"native span failed (rc={rc})")
        assert st.completed == st.n_req and st.arr_len == 0
        assert not st.has_current and st.rq_len == 0
        self._finish()

    # ------------------------------------------------------------------
    # surfacing protocol
    # ------------------------------------------------------------------
    def _commit_clock(self) -> None:
        st = self._st
        self.sim.absorb_span(st.now, st.events - self._events_committed)
        self._events_committed = st.events

    def _replay_observations(self) -> None:
        """Feed buffered completions to the profiler/trimmer, in
        completion order (== rid order: FIFO, single server)."""
        st = self._st
        start, end = self._obs_flushed, st.completed
        if end == start:
            return
        self._obs_flushed = end
        observe = self.rubik.profiler.observe
        cyc, mem = self._cyc_list, self._mem_list
        trimmer = self.rubik.trimmer
        if trimmer is None:
            for i in range(start, end):
                observe(cyc[i], mem[i])
            return
        arr = self._arr_list
        fins = self._out_finish[start:end].tolist()
        t_observe = trimmer.observe
        for i, finish in zip(range(start, end), fins):
            observe(cyc[i], mem[i])
            t_observe(finish, finish - arr[i])

    def _surface(self) -> None:
        """A refresh or trimmer adjustment may fire before the owed
        decision: replay observations, run the controller's refresh,
        re-sync the evaluation context, re-enter."""
        self._commit_clock()
        self._replay_observations()
        self.rubik._maybe_refresh_tables()
        st = self._st
        st.last_table_update = self.rubik._last_table_update
        st.samples_at_last_update = self.rubik._samples_at_last_update
        st.observed_total = self.rubik.profiler.total_observed
        trimmer = self.rubik.trimmer
        if trimmer is not None:
            st.trimmer_last_adjust = trimmer._last_adjust
        self._sync_eval_context()

    def _sync_eval_context(self) -> None:
        st = self._st
        rubik = self.rubik
        tables = rubik.tables
        if tables is not self.kernel._tables_obj:
            self.kernel._bind_tables(tables)
        trimmer = rubik.trimmer
        st.target = (trimmer.internal_target_s if trimmer is not None
                     else rubik.context.latency_bound_s)

    # ------------------------------------------------------------------
    # output draining
    # ------------------------------------------------------------------
    def _flush_segments(self) -> None:
        """Drain closed C segments into the meter (and segment log) —
        the native half of ``Core.flush_accounting``, same arithmetic."""
        st = self._st
        count = st.seg_count
        if not count:
            return
        seg = self._segs[:count]
        st.seg_count = 0
        starts = seg[:, 0].copy()
        ends = seg[:, 1].copy()
        durations = ends - starts
        energies = self.core.meter.record_segments(
            durations, seg[:, 2].copy(), seg[:, 3].copy(), seg[:, 4].copy())
        if self.core.segment_log is not None:
            powers = energies / durations
            self.core.segment_log.extend(
                zip(starts.tolist(), ends.tolist(), powers.tolist()))

    def _flush_history(self) -> None:
        st = self._st
        count = st.hist_count
        if count:
            flat = self._hist[:2 * count]
            self.core.dvfs.history.extend(
                zip(flat[0::2].tolist(), flat[1::2].tolist()))
            st.hist_count = 0

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        """Export every piece of state the Python loop would have left
        behind, so ``finalize``/``RunResult`` run unchanged."""
        from repro.sim.request import Request

        st = self._st
        core = self.core
        self._commit_clock()
        self._replay_observations()
        self._flush_segments()
        self._flush_history()

        dvfs = core.dvfs
        dvfs._current_hz = st.cur_hz
        dvfs._pending_target = (st.pending_target if st.pending_valid
                                else None)
        dvfs._pending_apply_at = st.pending_apply_at
        dvfs._latched_target = (st.latched_target if st.latched_valid
                                else None)
        dvfs.transitions = st.transitions
        # A decide's early-returning request can leave applied-but-
        # unconsumed boundaries, exactly like the Python path; finalize's
        # close consumes them.
        dvfs._unaccounted = [
            (st.unacct[2 * i], st.unacct[2 * i + 1])
            for i in range(st.unacct_n)]
        st.unacct_n = 0

        core._segment_start = st.seg_start
        code = int(st.seg_code)
        core._seg_code = code
        core._seg_state = CoreState.BUSY if code == 0 else CoreState.IDLE
        core._seg_freq = st.seg_freq
        core._seg_mem_frac = st.seg_mem_frac
        core.queue_epoch = st.queue_epoch
        core.current = None
        core._completion_entry = None

        starts = self._out_start.tolist()
        fins = self._out_finish.tolist()
        pred = self.trace.predicted_cycles
        completed = core.completed
        for i in range(st.n_req):
            completed.append(Request(
                rid=i,
                arrival_time=self._arr_list[i],
                compute_cycles=self._cyc_list[i],
                memory_time_s=self._mem_list[i],
                start_time=starts[i],
                finish_time=fins[i],
                progress=1.0,
                predicted_cycles=float(pred[i]),
            ))

        core._external_flush = None
        st.span_mode = 0
        st.phase = PH_NEXT

"""Build-on-first-use loader for the native Rubik kernel.

The C source (``rubik_native.c``) is compiled into a plain shared
library the first time the native path is asked for, cached next to the
source keyed by a content digest (a source edit is a cache miss, never a
stale load), and loaded through :func:`ctypes.CDLL` — no Python headers
or build isolation needed, just a C compiler on ``PATH``.  ``setup.py``
exposes the same build as an optional install-time step.

Dispatch is gated by the ``REPRO_NATIVE`` environment variable:

* ``"1"`` — require the native kernel (build/load failures still fall
  back to the Python kernel, with the warn-once notice).
* ``"0"`` — never use it (the pure-Python fallback, exercised in CI).
* ``"auto"`` / unset — use it when it builds and loads (the default).

Anything else warns once per distinct value (mirroring the
``REPRO_MAX_WORKERS`` idiom in :mod:`repro.perf.parallel`) and is
treated as unset.  A failed build or load likewise warns once and the
controller silently dispatches to the Python kernel — a box without
``cc`` must never fail collection, equivalence tests, or experiments.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Set

from repro import config
from repro.resilience import faults

#: Environment toggle for the native decision/event kernel.
NATIVE_ENV = "REPRO_NATIVE"

_SOURCE = Path(__file__).resolve().parent / "rubik_native.c"

#: Flags chosen for bitwise float reproducibility: baseline ISA (no
#: -march=native) and -ffp-contract=off forbid fused multiply-adds, so
#: every double op rounds exactly like the CPython float op.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_COMPILERS = ("cc", "gcc", "clang")

#: Invalid REPRO_NATIVE values already warned about (warn once each).
_warned_env_values: Set[str] = set()

#: Build/load memo: ``None`` means "not attempted yet".
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None
_warned_load_failure = False
_build_seconds: Optional[float] = None
_compiler_used: Optional[str] = None
_lib_path: Optional[str] = None


def env_mode() -> str:
    """The validated ``REPRO_NATIVE`` mode: ``"1"``, ``"0"`` or ``"auto"``.

    Invalid values warn once per distinct raw value (registry owned
    here, reset by ``_reset_for_tests``) and read as unset (``"auto"``),
    via the shared gate helper in :mod:`repro.config`.
    """
    return config.env_tristate(NATIVE_ENV, _warned_env_values)


def _source_tag() -> str:
    digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()
    return digest[:16]


def _cached_paths() -> list:
    """Candidate .so locations, preferred first (package dir may be
    read-only in installed environments; fall back to a per-user temp
    cache)."""
    name = f"_rubik_native-{_source_tag()}.so"
    paths = [_SOURCE.parent / name]
    tmp = Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"
    paths.append(tmp / name)
    return paths


def _compile(out_path: Path) -> str:
    """Compile the C source to ``out_path``; returns the compiler used."""
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp_out = out_path.with_suffix(f".tmp{os.getpid()}.so")
    last_error: Optional[str] = None
    for compiler in _COMPILERS:
        cmd = [compiler, *_CFLAGS, "-o", str(tmp_out), str(_SOURCE)]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except (OSError, subprocess.TimeoutExpired) as exc:
            last_error = f"{compiler}: {exc}"
            continue
        if proc.returncode == 0:
            os.replace(tmp_out, out_path)
            return compiler
        last_error = f"{compiler}: {proc.stderr.strip() or proc.stdout.strip()}"
    tmp_out.unlink(missing_ok=True)
    raise RuntimeError(last_error or "no C compiler found")


def ensure_built() -> Path:
    """Compile (if needed) and return the shared-library path.

    Raises on failure — callers wanting the graceful path use
    :func:`load_library` / :func:`available` instead.
    """
    candidates = _cached_paths()
    for path in candidates:
        if path.is_file():
            return path
    errors = []
    for path in candidates:
        try:
            compiler = _compile(path)
        except (OSError, RuntimeError) as exc:
            errors.append(str(exc))
            continue
        global _compiler_used
        _compiler_used = compiler
        return path
    raise RuntimeError(
        "could not build the native kernel: " + "; ".join(errors))


def load_library() -> Optional[ctypes.CDLL]:
    """The loaded native library, or None (after a warn-once notice)
    when it cannot be built/loaded or ``REPRO_NATIVE=0`` disables it.

    The build/load attempt runs at most once per process; the env gate
    is re-read per call so tests can flip it.
    """
    if env_mode() == "0":
        return None
    global _lib, _load_attempted, _load_error, _warned_load_failure
    global _build_seconds, _lib_path
    if _load_attempted:
        return _lib
    _load_attempted = True
    # repro-lint: allow(determinism) -- build-time diagnostic only
    t0 = time.perf_counter()
    try:
        # Injected load failure (InjectedFault is a RuntimeError, so it
        # rides the existing warn-once fallback to the Python kernel).
        faults.maybe_inject("native.load_fail")
        path = ensure_built()
        lib = ctypes.CDLL(str(path))
        # Sanity-check the ABI before trusting the struct mirror.
        lib.rk_state_size.restype = ctypes.c_int64
        lib.rk_abi_version.restype = ctypes.c_int64
        if lib.rk_abi_version() != 1:
            raise RuntimeError(
                f"native kernel ABI {lib.rk_abi_version()} != 1")
        _lib = lib
        _lib_path = str(path)
    except (OSError, RuntimeError, AttributeError) as exc:
        _lib = None
        _load_error = str(exc)
        if not _warned_load_failure:
            _warned_load_failure = True
            warnings.warn(
                "native Rubik kernel unavailable "
                f"({_load_error}); falling back to the Python kernel",
                RuntimeWarning, stacklevel=3)
    finally:
        # repro-lint: allow(determinism) -- build-time diagnostic only
        _build_seconds = time.perf_counter() - t0
    return _lib


def available() -> bool:
    """True when the native path is enabled and the library loads."""
    return load_library() is not None


def build_info() -> Dict[str, object]:
    """Build/fallback status for benchmarks and diagnostics."""
    return {
        "env_mode": env_mode(),
        "attempted": _load_attempted,
        "loaded": _lib is not None,
        "path": _lib_path,
        "compiler": _compiler_used,
        "build_seconds": _build_seconds,
        "error": _load_error,
    }


def _reset_for_tests() -> None:
    """Forget the build/load memo (and warn-once state) so tests can
    exercise the failure and env-gate paths."""
    global _lib, _load_attempted, _load_error, _warned_load_failure
    global _build_seconds, _compiler_used, _lib_path
    _lib = None
    _load_attempted = False
    _load_error = None
    _warned_load_failure = False
    _build_seconds = None
    _compiler_used = None
    _lib_path = None
    _warned_env_values.clear()

"""The Rubik controller (paper Sec. 4).

On every request arrival and completion, Rubik evaluates the frequency
constraint (paper Eq. 2)

    f  >=  max_i  c_i / (L - (t_i + m_i))

where, for each request ``R_i`` in the system, ``t_i`` is the time it has
already spent in the system and ``(c_i, m_i)`` are the tail compute cycles
and tail memory time until its completion, read from the precomputed
target tail tables. The lowest DVFS step satisfying the constraint is
requested; if no step can (``L - t_i - m_i <= 0`` or the required
frequency exceeds the grid), the maximum frequency is used — latency is
already compromised and Rubik recovers as fast as possible.

Table refreshes are periodic (paper: every 100 ms, costing ~0.2 ms of idle
time, which we treat as free) and piggyback on event processing; the PI
trimmer (Sec. 4.2, "Feedback-based fine-tuning") optionally adjusts the
internal latency target from the measured tail.

Rubik is application-agnostic: it sees only arrival timestamps and
counter-measured demands of *completed* requests, never the app's identity
or per-request hints (contrast with Adrenaline).
"""

from __future__ import annotations

from typing import Optional

from repro.core._native import build as native_build
from repro.core.decision_kernel import DecisionKernel, KernelStats
from repro.core.feedback import LatencyTargetTrimmer
from repro.core.profiler import DemandProfiler
from repro.core.table_cache import (
    TABLE_CACHE,
    RefreshStats,
    snapshot_fingerprint,
)
from repro.core.tail_tables import (
    DEFAULT_MAX_EXPLICIT,
    DEFAULT_NUM_ROWS,
    TargetTailTables,
)
from repro.schemes.base import Scheme, SchemeContext
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request

#: Paper Sec. 4.2: the runtime refreshes the tables every 100 ms.
DEFAULT_UPDATE_PERIOD_S = 0.1


def _validate_kernel_mode(value: object) -> None:
    """``kernel=`` accepts exactly True, False, ``"auto"``, ``"native"``."""
    if value is True or value is False or value in ("auto", "native"):
        return
    raise ValueError(
        f"kernel must be True, False, 'auto', or 'native' (got {value!r})")


class Rubik(Scheme):
    """Fine-grain analytical DVFS for latency-critical workloads."""

    def __init__(
        self,
        update_period_s: float = DEFAULT_UPDATE_PERIOD_S,
        feedback: bool = True,
        profiler_window: int = 2000,
        min_samples: int = 16,
        num_rows: int = DEFAULT_NUM_ROWS,
        max_explicit: int = DEFAULT_MAX_EXPLICIT,
        vectorized: bool = True,
        kernel: object = "auto",
    ) -> None:
        """Args:
            update_period_s: target-tail-table refresh period.
            feedback: enable the PI latency-target trimmer (paper evaluates
                Rubik both with and without it, Fig. 9).
            profiler_window: completions retained for the demand model.
            min_samples: completions required before the model activates
                (until then Rubik conservatively runs at max frequency).
            num_rows: elapsed-work rows in the tail tables (octiles).
            max_explicit: queue depth covered by convolution before the
                CLT approximation takes over.
            vectorized: evaluate Eq. 2 as one NumPy expression over the
                whole queue. The scalar per-request loop is kept
                selectable (``vectorized=False``) so equivalence tests
                can pin every path to identical decisions.
            kernel: which incremental decision kernel to dispatch to.
                Tri-state:

                * ``"auto"`` (default) — the native C kernel
                  (:mod:`repro.core._native`) when its library builds
                  and loads, else the Python kernel
                  (:mod:`repro.core.decision_kernel`).
                * ``"native"`` — require the native kernel; if it is
                  unavailable the loader warns once and the Python
                  kernel serves (never an error — a box without ``cc``
                  still runs everything).
                * ``True`` — always the Python kernel.
                * ``False`` — no kernel: the plain vectorized path.

                All four resolutions are decision-equivalent, pinned
                bitwise to the scalar oracle by the 4-path suite in
                ``tests/core/test_decision_kernel.py``; requires
                ``vectorized`` (the scalar oracle always wins when
                ``vectorized=False``). The ``REPRO_NATIVE`` environment
                variable (``1``/``0``/``auto``) gates the native build
                process-wide.
        """
        if update_period_s <= 0:
            raise ValueError("update period must be positive")
        _validate_kernel_mode(kernel)
        self.update_period_s = update_period_s
        self.feedback_enabled = feedback
        self.profiler = DemandProfiler(profiler_window, min_samples)
        self.num_rows = num_rows
        self.max_explicit = max_explicit
        self._vectorized = vectorized
        self._kernel_enabled = kernel
        self._kernel: Optional[DecisionKernel] = None
        self.tables: Optional[TargetTailTables] = None
        self.trimmer: Optional[LatencyTargetTrimmer] = None
        self._last_table_update = float("-inf")
        self._samples_at_last_update = 0
        self.table_updates = 0
        #: Refresh-subsystem counters: snapshots taken, table-cache
        #: hits/misses, lazy columns carried over by reuse.
        self.refresh_stats = RefreshStats()
        # Pre-bound hot-path dispatch: the hooks run twice per simulated
        # event, and an if-dispatch per call is measurable there. The
        # `vectorized`/`kernel` property setters keep this in sync.
        self._rebind_decide()

    def _resolved_kernel(self) -> object:
        """The kernel mode after resolving ``"auto"``/``"native"``
        against native-library availability: ``"native"``, ``True``
        (Python kernel) or ``False``."""
        mode = self._kernel_enabled
        if mode == "auto" or mode == "native":
            # available() memoizes the build/load attempt and handles
            # the warn-once fallback notice; REPRO_NATIVE=0 opts out
            # silently.
            return "native" if native_build.available() else True
        return mode

    def _rebind_decide(self) -> None:
        """Bind ``_decide`` to the selected Eq. 2 evaluation path."""
        if not self._vectorized:
            self._decide = self._update_frequency_scalar
            return
        mode = self._resolved_kernel()
        if mode == "native":
            self._decide = self._update_frequency_native
        elif mode:
            self._decide = self._update_frequency_kernel
        else:
            self._decide = self._update_frequency_vectorized

    @property
    def name(self) -> str:  # type: ignore[override]
        return "Rubik" if self.feedback_enabled else "Rubik (No Feedback)"

    @property
    def vectorized(self) -> bool:
        """Whether the NumPy/kernel paths are enabled (False = scalar)."""
        return self._vectorized

    @vectorized.setter
    def vectorized(self, value: bool) -> None:
        # Keep the pre-bound hot-path dispatch in sync with the flag so
        # toggling after construction still takes effect.
        self._vectorized = value
        if self._kernel is not None:
            # A toggle may skip queue deltas; the epoch check would catch
            # it, but an explicit invalidation keeps intent obvious.
            self._kernel.invalidate()
        self._rebind_decide()

    @property
    def kernel(self) -> object:
        """The configured kernel mode: ``"auto"``, ``"native"``,
        ``True`` (Python kernel) or ``False``."""
        return self._kernel_enabled

    @kernel.setter
    def kernel(self, value: object) -> None:
        _validate_kernel_mode(value)
        self._kernel_enabled = value
        if self._kernel is not None:
            self._kernel.invalidate()
        self._rebind_decide()

    @property
    def decision_path(self) -> str:
        """The Eq. 2 evaluation path currently bound: ``"scalar"``,
        ``"vectorized"``, ``"kernel"``, or ``"native"`` — the path
        *actually taken* (``"auto"``/``"native"`` report ``"kernel"``
        when the native library is unavailable)."""
        if not self._vectorized:
            return "scalar"
        mode = self._resolved_kernel()
        if mode == "native":
            return "native"
        return "kernel" if mode else "vectorized"

    @property
    def kernel_stats(self) -> Optional[KernelStats]:
        """Decision-path counters of the active kernel (None before the
        kernel's first decision, or when the kernel path is off)."""
        return self._kernel.stats if self._kernel is not None else None

    # ------------------------------------------------------------------
    def setup(self, sim: Simulator, core: Core, context: SchemeContext) -> None:
        super().setup(sim, core, context)
        # The kernel caches the context's DVFS grid; rebuild per run so a
        # reused controller cannot carry a stale grid across contexts
        # (and rebind _decide away from a previous run's kernel).
        self._kernel = None
        self._rebind_decide()
        if self.feedback_enabled:
            self.trimmer = LatencyTargetTrimmer(
                bound_s=context.latency_bound_s,
                tail_percentile=context.tail_percentile,
            )

    def initial_frequency(self) -> float:
        """Start at max: safe before the demand model has data."""
        return self.context.dvfs.max_hz

    # ------------------------------------------------------------------
    # Event hooks: Fig. 3 — adjust frequency on each arrival/completion.
    # ------------------------------------------------------------------
    def on_arrival(self, core: Core, request: Request) -> None:
        self._maybe_refresh_tables()
        self._decide(core)

    def on_completion(self, core: Core, request: Request) -> None:
        # Counter-measured demands of the completed request feed the model.
        self.profiler.observe(request.compute_cycles, request.memory_time_s)
        if self.trimmer is not None:
            self.trimmer.observe(self.sim.now, request.response_time)
        self._maybe_refresh_tables()
        self._decide(core)

    # ------------------------------------------------------------------
    @property
    def internal_target_s(self) -> float:
        """The latency target the analytical model currently aims at."""
        if self.trimmer is not None:
            return self.trimmer.internal_target_s
        return self.context.latency_bound_s

    def _maybe_refresh_tables(self) -> None:
        now = self.sim.now
        if now - self._last_table_update < self.update_period_s:
            return
        if not self.profiler.ready:
            return
        if self.profiler.total_observed == self._samples_at_last_update:
            return  # nothing new to learn
        snapshot = self.profiler.snapshot()
        assert snapshot is not None
        cycles, memory = snapshot
        stats = self.refresh_stats
        stats.snapshots += 1
        # A table pair is a pure function of the snapshot + parameters,
        # so an unchanged fingerprint reuses the previous build outright
        # — including every lazy column / FFT power / row-list cache it
        # has accumulated since (value-identical to rebuilding).
        key = snapshot_fingerprint(
            cycles, memory, self.context.tail_quantile,
            self.num_rows, self.max_explicit)
        tables = TABLE_CACHE.get(key)
        if tables is None:
            tables = TargetTailTables(
                cycles,
                memory,
                quantile=self.context.tail_quantile,
                num_rows=self.num_rows,
                max_explicit=self.max_explicit,
            )
            TABLE_CACHE.put(key, tables)
            stats.cache_misses += 1
        else:
            stats.cache_hits += 1
            stats.columns_carried += (
                (tables.cycles._built_cols - 1)
                + (tables.memory._built_cols - 1))
        if tables is self.tables:
            # Steady state: the fingerprint re-resolved to the pair the
            # controller already holds — the decision kernel's per-queue
            # state (keyed on table identity) survives this refresh.
            stats.object_carries += 1
            kernel = self._kernel
            if kernel is not None:
                kernel.note_refresh_carry()
        self.tables = tables
        self._last_table_update = now
        self._samples_at_last_update = self.profiler.total_observed
        self.table_updates += 1

    def _update_frequency_kernel(self, core: Core) -> None:
        """First kernel dispatch: build the kernel (it caches the
        context's DVFS grid, available only after setup) and rebind
        ``_decide`` straight to it — no per-event wrapper hop."""
        kernel = self._kernel
        if type(kernel) is not DecisionKernel:
            # None, or a leftover native kernel from a mid-run toggle
            # (whose incremental state a fresh fold safely replaces).
            kernel = self._kernel = DecisionKernel(self)
        if self._decide.__func__ is Rubik._update_frequency_kernel:
            self._decide = kernel.decide
        kernel.decide(core)

    def _update_frequency_native(self, core: Core) -> None:
        """First native dispatch: build the ctypes wrapper and rebind
        ``_decide`` straight to it (mirrors the Python-kernel hop)."""
        from repro.core._native.kernel import NativeDecisionKernel

        kernel = self._kernel
        if not isinstance(kernel, NativeDecisionKernel):
            kernel = self._kernel = NativeDecisionKernel(self)
        if self._decide.__func__ is Rubik._update_frequency_native:
            self._decide = kernel.decide
        kernel.decide(core)

    def native_session(self, sim: Simulator, core: Core, trace):
        """Whole-run native event loop (see ``Scheme.native_session``).

        Engages only for a stock ``Rubik`` (subclasses overriding the
        event hooks or refresh logic keep the Python loop) resolved to
        the native decision path, on an eligible core/simulator pair —
        otherwise None, and ``run_trace`` runs the Python event loop.
        """
        if type(self) is not Rubik:
            return None
        if self._resolved_kernel() != "native" or not self._vectorized:
            return None
        from repro.core._native.session import NativeRunSession

        return NativeRunSession.create(sim, core, self, trace)

    def _update_frequency_vectorized(self, core: Core) -> None:
        """Eq. 2 over the whole queue in one NumPy expression.

        ``c`` and ``m`` are precomputed table-row slices (one row lookup
        per demand type), arrival times come from the core's incremental
        buffer — no per-request Python loop, no ``pending_requests()``
        list builds. Decision-equivalent to the scalar path: the same
        float64 divisions feed the same max.
        """
        dvfs = self.context.dvfs
        n = core.queue_length
        if n == 0:
            core.request_frequency(dvfs.min_hz)
            return
        tables = self.tables
        if tables is None:
            core.request_frequency(dvfs.max_hz)
            return

        trimmer = self.trimmer
        target = (trimmer.internal_target_s if trimmer is not None
                  else self.context.latency_bound_s)
        elapsed_c, elapsed_m = core.current_request_elapsed()
        cycles = tables.cycles
        memory = tables.memory
        now = self.sim.now

        if n == 1:
            # Single-request fast case (the dominant one at moderate
            # load): no row-list iteration at all, same float64 ops.
            slack = (target - (now - core.pending_arrivals[0])) - (
                memory.tails_head_list(elapsed_m, 1)[0])
            if slack <= 0.0:
                required_hz = dvfs.nominal_hz
            else:
                required_hz = cycles.tails_head_list(elapsed_c, 1)[0] / slack
        elif n <= cycles.max_explicit:
            # Shallow-queue fast path (the overwhelmingly common case):
            # one row lookup per demand type, then plain-float arithmetic
            # over cached row lists. Bit-identical to the array expression
            # below — same float64 operations in the same order — but
            # without per-call small-array dispatch overhead.
            crow = cycles.tails_head_list(elapsed_c, n)
            mrow = memory.tails_head_list(elapsed_m, n)
            required_hz = 0.0
            any_hopeless = False
            for i, arrival in enumerate(core.pending_arrivals):
                slack = (target - (now - arrival)) - mrow[i]
                if slack <= 0.0:
                    any_hopeless = True
                else:
                    ratio = crow[i] / slack
                    if ratio > required_hz:
                        required_hz = ratio
            if any_hopeless:
                # Non-positive Eq. 2 denominator: see the scalar path for
                # why hopeless requests floor the frequency at nominal.
                required_hz = max(required_hz, dvfs.nominal_hz)
        else:
            c = cycles.tails_for_queue(n, elapsed_c)
            m = memory.tails_for_queue(n, elapsed_m)
            slack = (target - (now - core.pending_arrival_times())) - m
            if slack.min() > 0.0:
                required_hz = (c / slack).max()
            else:
                feasible = slack > 0.0
                required_hz = 0.0
                if feasible.any():
                    required_hz = (c[feasible] / slack[feasible]).max()
                required_hz = max(required_hz, dvfs.nominal_hz)
        if required_hz >= dvfs.max_hz:
            core.request_frequency(dvfs.max_hz)
        else:
            core.request_frequency(dvfs.quantize_up(required_hz))

    def _update_frequency_scalar(self, core: Core) -> None:
        requests = core.pending_requests()
        dvfs = self.context.dvfs
        if not requests:
            # Empty system: nothing constrains frequency; park at the
            # bottom of the grid (idle power is handled by sleep states).
            core.request_frequency(dvfs.min_hz)
            return
        if self.tables is None:
            core.request_frequency(dvfs.max_hz)
            return

        now = self.sim.now
        target = self.internal_target_s
        elapsed_c, elapsed_m = core.current_request_elapsed()

        required_hz = 0.0
        any_hopeless = False
        for i, req in enumerate(requests):
            c_i, m_i = self.tables.constraint(i, elapsed_c, elapsed_m)
            slack = target - (now - req.arrival_time) - m_i
            if slack <= 0.0:
                # Constraint unsatisfiable at any frequency (Eq. 2's
                # denominator is non-positive): the request has already
                # lost its tail budget, so burning max frequency cannot
                # save it and it imposes no *latency* constraint of its
                # own. It does impose a *stability* constraint: the
                # backlog it represents must drain at least at the
                # nominal rate, or future arrivals inherit an ever-
                # growing queue (with no floor, a fully-hopeless queue
                # would leave Eq. 2 unconstrained and park the core at
                # minimum frequency — a death spiral under overload).
                any_hopeless = True
                continue
            required_hz = max(required_hz, c_i / slack)

        if any_hopeless:
            required_hz = max(required_hz, dvfs.nominal_hz)
        if required_hz >= dvfs.max_hz:
            core.request_frequency(dvfs.max_hz)
        else:
            core.request_frequency(dvfs.quantize_up(required_hz))

"""Rubik's analytical core: distributions, target tail tables, profiler,
refresh cache, PI feedback, and the controller itself (paper Sec. 4)."""

from repro.core.controller import Rubik
from repro.core.histogram import Histogram
from repro.core.table_cache import (
    TABLE_CACHE,
    RefreshStats,
    TailTableCache,
    snapshot_fingerprint,
)
from repro.core.tail_tables import TailTable, TargetTailTables

__all__ = [
    "Histogram",
    "RefreshStats",
    "Rubik",
    "TABLE_CACHE",
    "TailTable",
    "TailTableCache",
    "TargetTailTables",
    "snapshot_fingerprint",
]

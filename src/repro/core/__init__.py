"""Rubik's analytical core: distributions, target tail tables, profiler,
PI feedback, and the controller itself (paper Sec. 4)."""

from repro.core.controller import Rubik
from repro.core.histogram import Histogram
from repro.core.tail_tables import TailTable, TargetTailTables

__all__ = ["Histogram", "Rubik", "TailTable", "TargetTailTables"]

"""Target tail tables (paper Sec. 4.1--4.2, Fig. 5).

A :class:`TailTable` answers, in O(1) per query: *given that the running
request has already executed elapsed work* ``w`` *and that request* ``i``
*is i-th in line, what is the tail (e.g. 95th-percentile) total work until
request i completes?*

Construction (periodic, not per-event):

* Rows condition the running request's distribution on elapsed work. Rows
  are bounded by quantiles of the base distribution (paper: octiles); a
  lookup uses the row whose band contains the observed elapsed work, and
  each row is built by conditioning on the band's *lower* edge, which
  over-estimates remaining work (conservative, never violates the bound).
* Columns walk the queue: column ``i`` holds the tail of
  ``S_i = S_0 + S + ... + S`` (i-fold convolution, paper Eq. in Sec. 4.1).
* Beyond ``max_explicit`` columns, Lyapunov's CLT gives
  ``S_i ~ N(E[S_0] + i E[S], var[S_0] + i var[S])`` (paper: i >= 16).

The build shares work across cells: cell ``(r, i)`` is the quantile of
``cond_r * base^(*i)`` (``*`` denoting convolution), so one real FFT of
the base and one per conditioned row suffice — the whole explicit table is
an outer product in the frequency domain followed by a single batched
inverse FFT, instead of ``rows x max_explicit`` sequential convolutions.
This is what keeps the paper's periodic refresh at the ~0.2 ms scale.

Two tables are kept: compute cycles (c_i) and memory-bound time (m_i); the
controller combines their tails via the paper's triangle-inequality
approximation (Eq. 2).
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from repro.core.histogram import Histogram, _normal_quantile

#: Paper implementation uses octile rows and 16 explicit queue positions.
DEFAULT_NUM_ROWS = 8
DEFAULT_MAX_EXPLICIT = 16


class TailTable:
    """Precomputed tail-of-completion-work table for one demand type."""

    def __init__(
        self,
        base: Histogram,
        quantile: float = 0.95,
        num_rows: int = DEFAULT_NUM_ROWS,
        max_explicit: int = DEFAULT_MAX_EXPLICIT,
    ) -> None:
        """Args:
            base: distribution of per-request demand, ``P[S = c]``.
            quantile: tail percentile as a fraction (0.95 for the paper).
            num_rows: elapsed-work bands (paper: octiles).
            max_explicit: queue positions computed by convolution; deeper
                positions use the Gaussian approximation.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if num_rows <= 0 or max_explicit <= 0:
            raise ValueError("num_rows and max_explicit must be positive")
        self.base = base
        self.quantile = quantile
        self.num_rows = num_rows
        self.max_explicit = max_explicit
        self.base_mean = base.mean()
        self.base_var = base.variance()
        self._z = _normal_quantile(quantile)

        # Row boundaries: elapsed-work quantiles of the base distribution.
        # Row r covers elapsed in [bounds[r], bounds[r+1]); row 0 is w = 0.
        qs = [k / num_rows for k in range(1, num_rows)]
        self.row_bounds = np.array([0.0] + [base.quantile(q) for q in qs])
        # Python-float mirror for bisect in the per-event fast path (same
        # ordering semantics as np.searchsorted side="right").
        self._row_bounds_list = self.row_bounds.tolist()

        conditioned = [base.condition_on_elapsed(e) for e in self.row_bounds]
        self.row_means = np.array([c.mean() for c in conditioned])
        self.row_vars = np.array([c.variance() for c in conditioned])

        # Explicit table: rows x max_explicit tails, built lazily one
        # *column* at a time (all rows batched per column). Column i is
        # the quantile of ``cond_r * base^(*i)`` (``*`` = convolution):
        # the base's transform powers accumulate across columns and each
        # column needs only one batched irfft at the smallest power-of-two
        # size covering its support — rows + depth transforms in total
        # instead of rows x depth convolutions. Laziness matters because
        # the controller only ever reads columns up to the queue depth it
        # actually observes between refreshes: at low load most refreshed
        # tables never see a deep queue, so deep columns are never paid
        # for. Unbuilt cells hold NaN; all public accessors build on
        # demand.
        width = base.bucket_width
        self._width = width
        self._base_len = base.pmf.size
        self._conditioned = conditioned
        self._cond_lens = [c.pmf.size for c in conditioned]
        self._max_cond = max(self._cond_lens)
        self._eps_q = quantile - 1e-12
        #: size -> [exponent, transform of base^(*exponent), stacked
        #: conditioned-row transforms]
        self._fft_state: dict = {}
        #: row -> python-float list of built explicit tails (fast path).
        self._row_lists: dict = {}
        self.table = np.full((num_rows, max_explicit), np.nan)

        # Column 0 is the conditioned distribution itself: read its
        # quantile directly, no convolution needed.
        for r, cond in enumerate(conditioned):
            self.table[r, 0] = cond.quantile(quantile)
        self._built_cols = 1

    def _ensure_columns(self, upto: int) -> None:
        """Materialize explicit columns ``< upto`` (clamped to the table)."""
        upto = min(upto, self.max_explicit)
        base = self.base
        base_len = self._base_len
        while self._built_cols < upto:
            i = self._built_cols
            need = self._max_cond + i * (base_len - 1)
            size = 1 << (need - 1).bit_length()
            state = self._fft_state.get(size)
            if state is None:
                state = [1, base.rfft(size),
                         np.stack([c.rfft(size) for c in self._conditioned])]
                self._fft_state[size] = state
            fbase = base.rfft(size)
            while state[0] < i:
                state[1] = state[1] * fbase
                state[0] += 1
            pmfs = np.fft.irfft(state[2] * state[1][None, :], size, axis=-1)
            np.clip(pmfs, 0.0, None, out=pmfs)
            cdfs = np.cumsum(pmfs, axis=-1)
            # Per row: first bucket where the normalized CDF reaches q
            # (same epsilon Histogram.quantile uses), capped at the cell's
            # true support length.
            for r in range(self.num_rows):
                cdf = cdfs[r]
                idx = int(cdf.searchsorted(self._eps_q * cdf[-1]))
                support = self._cond_lens[r] + i * (base_len - 1)
                self.table[r, i] = (min(idx, support - 1) + 1) * self._width
            self._built_cols = i + 1

    def materialize(self) -> np.ndarray:
        """Force every explicit column and return the full table."""
        self._ensure_columns(self.max_explicit)
        return self.table

    def _row_index(self, elapsed: float) -> int:
        """``row_for_elapsed`` without validation or ndarray dispatch —
        the controller calls this twice per simulated event."""
        return bisect.bisect_right(self._row_bounds_list, elapsed) - 1

    def row_tails_list(self, row: int, count: int) -> list:
        """First ``count`` explicit tails of ``row`` as python floats.

        Cached per row so per-event scalar loops read plain floats
        instead of boxing ndarray scalars; ``count`` must not exceed
        ``max_explicit``.
        """
        if count > self._built_cols:
            self._ensure_columns(count)
        cached = self._row_lists.get(row)
        if cached is None:
            cached = self.table[row, : self._built_cols].tolist()
            self._row_lists[row] = cached
        elif len(cached) < count:
            # Columns grew (here or via tail()/tails_for_queue) since
            # this row was cached: extend the list in place — built
            # columns are append-only, so the prefix stays valid and
            # other rows' caches survive the growth untouched.
            cached.extend(
                self.table[row, len(cached): self._built_cols].tolist())
        return cached

    def tails_head_list(self, elapsed: float, count: int) -> list:
        """``row_tails_list(_row_index(elapsed), count)`` in one call —
        the per-event controller lookup, minus one method dispatch."""
        return self.row_tails_list(
            bisect.bisect_right(self._row_bounds_list, elapsed) - 1, count)

    def extended_row_list(self, row: int, count: int) -> list:
        """Row tails for positions ``0..count-1`` as python floats,
        CLT-extended past ``max_explicit``.

        Returns the *same* cached append-only list object as
        :meth:`row_tails_list`: once ``count`` exceeds the explicit
        table, the full explicit prefix is forced and Gaussian tails are
        appended with exactly the arithmetic :meth:`tail` uses
        (bit-identical floats). Deep-queue controllers (the decision
        kernel) therefore read one flat list per demand type — and the
        extension travels with the table pair across ``TailTableCache``
        hits, so deep columns built in one run are never re-paid by the
        next.
        """
        max_explicit = self.max_explicit
        cached = self.row_tails_list(
            row, count if count <= max_explicit else max_explicit)
        if count > len(cached):
            row_mean = float(self.row_means[row])
            row_var = float(self.row_vars[row])
            base_mean = self.base_mean
            base_var = self.base_var
            z = self._z
            append = cached.append
            for position in range(len(cached), count):
                mean = row_mean + position * base_mean
                var = row_var + position * base_var
                append(max(0.0, float(mean + z * math.sqrt(max(var, 0.0)))))
        return cached

    # ------------------------------------------------------------------
    def row_for_elapsed(self, elapsed: float) -> int:
        """Row whose elapsed-work band contains ``elapsed``."""
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        # ndarray method, not np.searchsorted: this runs twice per
        # simulated event and the dispatch wrapper is measurable there.
        return int(self.row_bounds.searchsorted(elapsed, side="right")) - 1

    def tail(self, position: int, elapsed: float = 0.0) -> float:
        """Tail work until the request at queue ``position`` completes.

        Args:
            position: 0 for the running request, i for the i-th queued one.
            elapsed: work the *running* request has already executed.
        """
        if position < 0:
            raise ValueError("position must be non-negative")
        row = self.row_for_elapsed(elapsed)
        if position < self.max_explicit:
            if position >= self._built_cols:
                self._ensure_columns(position + 1)
            return float(self.table[row, position])
        # CLT extension (paper: i >= 16): Gaussian with accumulated
        # moments. math.sqrt, not np.sqrt: this runs per event past
        # max_explicit and ndarray scalar boxing is measurable there
        # (same bits — see Histogram.gaussian_tail).
        mean = self.row_means[row] + position * self.base_mean
        var = self.row_vars[row] + position * self.base_var
        return max(0.0, float(mean + self._z * math.sqrt(max(var, 0.0))))

    def tails_for_queue(self, queue_len: int,
                        elapsed: float = 0.0) -> np.ndarray:
        """Tails for positions 0..queue_len-1 (single row lookup).

        Returns a read-only view into the precomputed row when the queue
        fits the explicit columns (the common case: one slice, no copies);
        deeper queues get the vectorized CLT extension appended.
        """
        row = self.row_for_elapsed(elapsed)
        if queue_len <= self.max_explicit:
            if queue_len > self._built_cols:
                self._ensure_columns(queue_len)
            return self.table[row, :queue_len]
        self._ensure_columns(self.max_explicit)
        positions = np.arange(self.max_explicit, queue_len)
        mean = self.row_means[row] + positions * self.base_mean
        var = self.row_vars[row] + positions * self.base_var
        clt = np.maximum(0.0, mean + self._z * np.sqrt(np.maximum(var, 0.0)))
        return np.concatenate([self.table[row], clt])


class TargetTailTables:
    """The pair of tables Rubik consults on every event (Fig. 5)."""

    def __init__(
        self,
        cycles: Histogram,
        memory: Histogram,
        quantile: float = 0.95,
        num_rows: int = DEFAULT_NUM_ROWS,
        max_explicit: int = DEFAULT_MAX_EXPLICIT,
    ) -> None:
        self.cycles = TailTable(cycles, quantile, num_rows, max_explicit)
        self.memory = TailTable(memory, quantile, num_rows, max_explicit)

    def constraint(self, position: int, elapsed_cycles: float,
                   elapsed_memory_s: float) -> tuple:
        """(c_i, m_i): tail compute cycles and tail memory seconds until
        completion of the request at ``position``."""
        c_i = self.cycles.tail(position, elapsed_cycles)
        m_i = self.memory.tail(position, elapsed_memory_s)
        return c_i, m_i

"""Target tail tables (paper Sec. 4.1--4.2, Fig. 5).

A :class:`TailTable` answers, in O(1) per query: *given that the running
request has already executed elapsed work* ``w`` *and that request* ``i``
*is i-th in line, what is the tail (e.g. 95th-percentile) total work until
request i completes?*

Construction (periodic, not per-event):

* Rows condition the running request's distribution on elapsed work. Rows
  are bounded by quantiles of the base distribution (paper: octiles); a
  lookup uses the row whose band contains the observed elapsed work, and
  each row is built by conditioning on the band's *lower* edge, which
  over-estimates remaining work (conservative, never violates the bound).
* Columns walk the queue: column ``i`` holds the tail of
  ``S_i = S_0 + S + ... + S`` (i-fold convolution, paper Eq. in Sec. 4.1).
* Beyond ``max_explicit`` columns, Lyapunov's CLT gives
  ``S_i ~ N(E[S_0] + i E[S], var[S_0] + i var[S])`` (paper: i >= 16).

Two tables are kept: compute cycles (c_i) and memory-bound time (m_i); the
controller combines their tails via the paper's triangle-inequality
approximation (Eq. 2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.histogram import Histogram, _normal_quantile

#: Paper implementation uses octile rows and 16 explicit queue positions.
DEFAULT_NUM_ROWS = 8
DEFAULT_MAX_EXPLICIT = 16


class TailTable:
    """Precomputed tail-of-completion-work table for one demand type."""

    def __init__(
        self,
        base: Histogram,
        quantile: float = 0.95,
        num_rows: int = DEFAULT_NUM_ROWS,
        max_explicit: int = DEFAULT_MAX_EXPLICIT,
    ) -> None:
        """Args:
            base: distribution of per-request demand, ``P[S = c]``.
            quantile: tail percentile as a fraction (0.95 for the paper).
            num_rows: elapsed-work bands (paper: octiles).
            max_explicit: queue positions computed by convolution; deeper
                positions use the Gaussian approximation.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if num_rows <= 0 or max_explicit <= 0:
            raise ValueError("num_rows and max_explicit must be positive")
        self.base = base
        self.quantile = quantile
        self.num_rows = num_rows
        self.max_explicit = max_explicit
        self.base_mean = base.mean()
        self.base_var = base.variance()
        self._z = _normal_quantile(quantile)

        # Row boundaries: elapsed-work quantiles of the base distribution.
        # Row r covers elapsed in [bounds[r], bounds[r+1]); row 0 is w = 0.
        qs = [k / num_rows for k in range(1, num_rows)]
        self.row_bounds = [0.0] + [base.quantile(q) for q in qs]

        # Explicit table: rows x max_explicit tails, plus per-row moments
        # of the conditioned distribution for the Gaussian extension.
        self.table = np.empty((num_rows, max_explicit))
        self.row_means = np.empty(num_rows)
        self.row_vars = np.empty(num_rows)
        for r, elapsed in enumerate(self.row_bounds):
            conditioned = base.condition_on_elapsed(elapsed)
            self.row_means[r] = conditioned.mean()
            self.row_vars[r] = conditioned.variance()
            acc = conditioned
            for i in range(max_explicit):
                self.table[r, i] = acc.quantile(quantile)
                if i + 1 < max_explicit:
                    acc = acc.convolve(base)

    # ------------------------------------------------------------------
    def row_for_elapsed(self, elapsed: float) -> int:
        """Row whose elapsed-work band contains ``elapsed``."""
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        row = 0
        for r, bound in enumerate(self.row_bounds):
            if elapsed >= bound:
                row = r
            else:
                break
        return row

    def tail(self, position: int, elapsed: float = 0.0) -> float:
        """Tail work until the request at queue ``position`` completes.

        Args:
            position: 0 for the running request, i for the i-th queued one.
            elapsed: work the *running* request has already executed.
        """
        if position < 0:
            raise ValueError("position must be non-negative")
        row = self.row_for_elapsed(elapsed)
        if position < self.max_explicit:
            return float(self.table[row, position])
        # CLT extension (paper: i >= 16): Gaussian with accumulated moments.
        mean = self.row_means[row] + position * self.base_mean
        var = self.row_vars[row] + position * self.base_var
        return max(0.0, float(mean + self._z * np.sqrt(max(var, 0.0))))

    def tails_for_queue(self, queue_len: int, elapsed: float = 0.0) -> List[float]:
        """Tails for positions 0..queue_len-1 (single row lookup)."""
        return [self.tail(i, elapsed) for i in range(queue_len)]


class TargetTailTables:
    """The pair of tables Rubik consults on every event (Fig. 5)."""

    def __init__(
        self,
        cycles: Histogram,
        memory: Histogram,
        quantile: float = 0.95,
        num_rows: int = DEFAULT_NUM_ROWS,
        max_explicit: int = DEFAULT_MAX_EXPLICIT,
    ) -> None:
        self.cycles = TailTable(cycles, quantile, num_rows, max_explicit)
        self.memory = TailTable(memory, quantile, num_rows, max_explicit)

    def constraint(self, position: int, elapsed_cycles: float,
                   elapsed_memory_s: float) -> tuple:
        """(c_i, m_i): tail compute cycles and tail memory seconds until
        completion of the request at ``position``."""
        c_i = self.cycles.tail(position, elapsed_cycles)
        m_i = self.memory.tail(position, elapsed_memory_s)
        return c_i, m_i

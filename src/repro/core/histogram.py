"""Fixed-bucket probability distributions for Rubik's statistical model.

The paper (Sec. 4.2) represents per-request compute-cycle and memory-time
distributions as 128-bucket histograms, collected online from performance
counters, and manipulates them with three operations:

* **conditioning** on work already performed by the running request
  (``P[S0 = c] = P[S = c + w | S > w]``),
* **convolution** to obtain the completion distribution of the i-th queued
  request (``S_i = S_0 + S + ... + S``), accelerated with FFTs,
* **tail extraction** (the 95th percentile of each ``S_i``).

:class:`Histogram` implements all three over a uniform bucket grid anchored
at zero. Probability mass in bucket ``k`` represents values in
``[k*w, (k+1)*w)``; quantiles return the *upper* edge of the crossing
bucket, so the model never under-estimates a tail (Rubik's guarantees rely
on conservative tails).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

#: Histogram resolution used by the paper's implementation (Sec. 4.2).
DEFAULT_NUM_BUCKETS = 128

#: Mass below which a conditioned distribution is treated as exhausted.
_EPS_MASS = 1e-12


class Histogram:
    """A discrete distribution over non-negative values on a uniform grid.

    Attributes:
        bucket_width: width of each bucket (same units as the values).
        pmf: probability masses, normalized to sum to 1. Treated as
            immutable after construction — derived caches (CDF, FFT)
            assume the masses never change.
    """

    __slots__ = ("bucket_width", "pmf", "_cdf", "_rfft_cache")

    def __init__(self, bucket_width: float, pmf: Sequence[float]) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        arr = np.asarray(pmf, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("pmf must be a non-empty 1-D array")
        if np.any(arr < -1e-12):
            raise ValueError("pmf must be non-negative")
        arr = np.clip(arr, 0.0, None)
        total = arr.sum()
        if total <= _EPS_MASS:
            raise ValueError("pmf must have positive total mass")
        self.bucket_width = float(bucket_width)
        self.pmf = arr / total
        self._cdf: Optional[np.ndarray] = None
        self._rfft_cache: Optional[dict] = None

    @classmethod
    def _from_normalized(cls, bucket_width: float,
                         pmf: np.ndarray) -> "Histogram":
        """Fast constructor for *internal* operators.

        Skips validation and re-normalization: ``pmf`` must already be a
        non-negative float64 array summing to 1. Public entry points
        (``__init__``, ``from_samples``, ``point_mass``) keep validating;
        hot operators (conditioning, convolution, rebucketing, the table
        builds) go through here.
        """
        self = object.__new__(cls)
        self.bucket_width = bucket_width
        self.pmf = pmf
        self._cdf = None
        self._rfft_cache = None
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        upper: Optional[float] = None,
    ) -> "Histogram":
        """Build a histogram from observed samples.

        Args:
            samples: non-empty sequence of non-negative values.
            num_buckets: histogram resolution (paper uses 128).
            upper: value of the top bucket edge; defaults to the sample
                maximum (plus a hair so the max lands inside the top
                bucket). Samples above ``upper`` are clamped into the top
                bucket.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot build a histogram from zero samples")
        if np.any(arr < 0):
            raise ValueError("samples must be non-negative")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        top = float(arr.max()) if upper is None else float(upper)
        if top <= 0:
            # All-zero samples: a point mass near zero with a tiny width.
            return cls.point_mass(0.0, bucket_width=1.0)
        width = top / num_buckets * (1.0 + 1e-9)
        idx = np.minimum((arr / width).astype(int), num_buckets - 1)
        pmf = np.bincount(idx, minlength=num_buckets).astype(float)
        return cls(width, pmf)

    @classmethod
    def point_mass(cls, value: float, bucket_width: float = 1.0) -> "Histogram":
        """A degenerate distribution concentrated at ``value``."""
        if value < 0:
            raise ValueError("value must be non-negative")
        idx = int(value / bucket_width)
        pmf = np.zeros(idx + 1)
        pmf[idx] = 1.0
        return cls(bucket_width, pmf)

    # ------------------------------------------------------------------
    # Moments and quantiles
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return int(self.pmf.size)

    def _centers(self) -> np.ndarray:
        return (np.arange(self.pmf.size) + 0.5) * self.bucket_width

    def mean(self) -> float:
        """Expected value (using bucket centers)."""
        return float(np.dot(self._centers(), self.pmf))

    def variance(self) -> float:
        """Variance (using bucket centers)."""
        centers = self._centers()
        mu = float(np.dot(centers, self.pmf))
        return float(np.dot((centers - mu) ** 2, self.pmf))

    def cumulative(self) -> np.ndarray:
        """Cached CDF (``np.cumsum(pmf)``); do not mutate the result."""
        if self._cdf is None:
            self._cdf = np.cumsum(self.pmf)
        return self._cdf

    def quantile(self, q: float) -> float:
        """Upper bucket edge at cumulative probability ``q`` in (0, 1].

        Conservative by construction: the true quantile is never larger
        than the returned value by more than one bucket width.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        cdf = self.cumulative()
        idx = int(np.searchsorted(cdf, q - 1e-12))
        idx = min(idx, self.pmf.size - 1)
        return (idx + 1) * self.bucket_width

    def cdf_at(self, value: float) -> float:
        """P[X <= value], counting whole buckets below ``value``."""
        if value < 0:
            return 0.0
        idx = int(value / self.bucket_width)
        if idx >= self.pmf.size:
            return 1.0
        return float(self.cumulative()[idx])

    # ------------------------------------------------------------------
    # Rubik's operators
    # ------------------------------------------------------------------
    def condition_on_elapsed(self, elapsed: float) -> "Histogram":
        """Distribution of remaining work given ``elapsed`` already done.

        Implements ``P[S0 = c] = P[S = c + w] / P[S > w]`` (paper Sec. 4.1):
        mass below ``elapsed`` is discarded, the rest is shifted to the
        origin and renormalized. If (numerically) all mass has elapsed, the
        request is past the modeled support and a point mass of one bucket
        of remaining work is returned — the request should finish
        imminently.
        """
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        shift = int(elapsed / self.bucket_width)
        if shift == 0:
            return self
        remaining = self.pmf[shift:]
        total = remaining.sum() if remaining.size else 0.0
        if total <= _EPS_MASS:
            return Histogram._from_normalized(self.bucket_width,
                                              np.ones(1))
        return Histogram._from_normalized(self.bucket_width,
                                          remaining / total)

    def rfft(self, size: int) -> np.ndarray:
        """Cached real FFT of the pmf zero-padded to ``size``.

        Repeated convolutions against the same operand (the tail tables
        convolve the base distribution dozens of times per refresh) reuse
        the transform instead of recomputing it; do not mutate the result.
        """
        if self._rfft_cache is None:
            self._rfft_cache = {}
        cached = self._rfft_cache.get(size)
        if cached is None:
            cached = np.fft.rfft(self.pmf, size)
            self._rfft_cache[size] = cached
        return cached

    def convolve(self, other: "Histogram") -> "Histogram":
        """Distribution of the sum of two independent variables.

        Both operands must share a bucket width. Uses FFT convolution for
        large supports (the paper uses FFTs to keep the periodic table
        refresh at ~0.2 ms).
        """
        if not math.isclose(self.bucket_width, other.bucket_width, rel_tol=1e-9):
            raise ValueError("convolution requires matching bucket widths")
        n = self.pmf.size + other.pmf.size - 1
        if n <= 256:
            pmf = np.convolve(self.pmf, other.pmf)
        else:
            size = 1 << (n - 1).bit_length()
            fa = self.rfft(size)
            fb = other.rfft(size)
            pmf = np.fft.irfft(fa * fb, size)[:n]
            pmf = np.clip(pmf, 0.0, None)
        return Histogram._from_normalized(self.bucket_width,
                                          pmf / pmf.sum())

    def rebucket(self, num_buckets: int) -> "Histogram":
        """Coarsen to at most ``num_buckets`` buckets (merging neighbours).

        Keeps repeated convolutions from growing without bound while
        preserving total mass. The bucket width grows by an integer factor.
        """
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if self.pmf.size <= num_buckets:
            return self
        factor = -(-self.pmf.size // num_buckets)  # ceil division
        padded = np.zeros(factor * num_buckets)
        padded[: self.pmf.size] = self.pmf
        merged = padded.reshape(num_buckets, factor).sum(axis=1)
        return Histogram._from_normalized(self.bucket_width * factor,
                                          merged / merged.sum())

    def gaussian_tail(self, q: float, extra_mean: float = 0.0,
                      extra_var: float = 0.0) -> float:
        """Tail quantile of a Gaussian matched to this distribution's
        moments, optionally augmented with ``extra_mean``/``extra_var``.

        Implements the paper's CLT extension for deep queues (``i >= 16``):
        ``S_i ~ N(E[S0] + i*E[S], var[S0] + i*var[S])``.
        """
        mu = self.mean() + extra_mean
        var = self.variance() + extra_var
        z = _normal_quantile(q)
        return max(0.0, mu + z * math.sqrt(max(var, 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(buckets={self.pmf.size}, width={self.bucket_width:.4g}, "
            f"mean={self.mean():.4g})"
        )


def _normal_quantile(q: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the hot
    path of the runtime.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / \
        (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0)

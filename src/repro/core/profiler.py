"""Online demand profiling (paper Sec. 4.2, "Estimating probability
distributions").

The real Rubik runtime derives per-request compute cycles and memory-bound
time from CPI-stack performance counters. In simulation those two demands
are known exactly per request, so the profiler's job reduces to windowed
collection: keep the most recent completions and expose them as 128-bucket
histograms on demand.

A bounded window (rather than all history) is what lets Rubik track
long-term drift in service demands — e.g. when colocation interference
inflates compute cycles, the distributions follow within one window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.histogram import DEFAULT_NUM_BUCKETS, Histogram


class DemandProfiler:
    """Sliding-window collector of per-request (cycles, memory-time) pairs."""

    def __init__(
        self,
        window: int = 2000,
        min_samples: int = 16,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        """Args:
            window: number of most-recent completions retained.
            min_samples: completions required before snapshots are offered
                (the controller stays at a safe frequency until then).
            num_buckets: histogram resolution (paper: 128).
        """
        if window <= 0 or min_samples <= 0:
            raise ValueError("window and min_samples must be positive")
        if min_samples > window:
            raise ValueError("min_samples cannot exceed the window")
        self.window = window
        self.min_samples = min_samples
        self.num_buckets = num_buckets
        self._cycles: Deque[float] = deque(maxlen=window)
        self._memory: Deque[float] = deque(maxlen=window)
        self.total_observed = 0

    def observe(self, compute_cycles: float, memory_time_s: float) -> None:
        """Record one completed request's measured demands."""
        if compute_cycles < 0 or memory_time_s < 0:
            raise ValueError("demands must be non-negative")
        self._cycles.append(compute_cycles)
        self._memory.append(memory_time_s)
        self.total_observed += 1

    @property
    def ready(self) -> bool:
        """True once enough samples exist to build distributions."""
        return len(self._cycles) >= self.min_samples

    @property
    def sample_count(self) -> int:
        return len(self._cycles)

    def snapshot(self) -> Optional[Tuple[Histogram, Histogram]]:
        """Current (compute-cycles, memory-time) histograms, or None.

        The memory histogram degenerates to a point mass at zero for
        compute-only workloads; the tail tables handle that uniformly.
        """
        if not self.ready:
            return None
        cycles = Histogram.from_samples(list(self._cycles), self.num_buckets)
        mem_samples = list(self._memory)
        if max(mem_samples) <= 0:
            memory = Histogram.point_mass(0.0, bucket_width=1e-9)
        else:
            memory = Histogram.from_samples(mem_samples, self.num_buckets)
        return cycles, memory

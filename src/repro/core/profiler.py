"""Online demand profiling (paper Sec. 4.2, "Estimating probability
distributions").

The real Rubik runtime derives per-request compute cycles and memory-bound
time from CPI-stack performance counters. In simulation those two demands
are known exactly per request, so the profiler's job reduces to windowed
collection: keep the most recent completions and expose them as 128-bucket
histograms on demand.

A bounded window (rather than all history) is what lets Rubik track
long-term drift in service demands — e.g. when colocation interference
inflates compute cycles, the distributions follow within one window.

Snapshots are **incremental**: each demand stream maintains its window
maximum and per-bucket counts under ring-buffer append/evict, so
:meth:`DemandProfiler.snapshot` costs O(new samples + buckets) instead of
re-bucketing the full window twice per refresh. The maintained state is
bitwise-equivalent to :meth:`Histogram.from_samples` on the window
contents (pinned by a randomized add/evict oracle test): counts are exact
integer arithmetic in float64, the bucket width is recomputed with the
same expression, and the whole window is re-bucketed only when the width
actually changes (a new maximum arrived, or the maximum left the window).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.histogram import DEFAULT_NUM_BUCKETS, Histogram

#: Bucket width of the degenerate all-zero memory-time distribution.
ZERO_MEMORY_WIDTH = 1e-9


class _SlidingHistogram:
    """One demand stream's window, bucketed incrementally.

    Ground truth is the sample ring buffer; ``_counts``/``_width`` mirror
    ``Histogram.from_samples`` on it. Appends and evictions are queued in
    pending lists and folded in vectorized at the next :meth:`sync` —
    per-observation work is a couple of float compares (window-max
    maintenance), and the only O(window) steps are the rare re-buckets
    when the maximum (and therefore the bucket width) changes.
    """

    __slots__ = ("window", "num_buckets", "samples", "max_value",
                 "_max_count", "_width", "_counts", "_added", "_evicted",
                 "_rebin")

    def __init__(self, window: int, num_buckets: int) -> None:
        self.window = window
        self.num_buckets = num_buckets
        self.samples: Deque[float] = deque()
        #: Window maximum (-inf while empty); drives the bucket width
        #: exactly as ``float(arr.max())`` does in ``from_samples``.
        self.max_value = -math.inf
        self._max_count = 0
        self._width = 0.0
        self._counts: Optional[np.ndarray] = None
        self._added: List[float] = []
        self._evicted: List[float] = []
        self._rebin = True

    def __len__(self) -> int:
        return len(self.samples)

    def add(self, value: float) -> None:
        samples = self.samples
        if len(samples) == self.window:
            evicted = samples.popleft()
            self._evicted.append(evicted)
            if evicted == self.max_value:
                self._max_count -= 1
        samples.append(value)
        self._added.append(value)
        if value > self.max_value:
            self.max_value = value
            self._max_count = 1
            self._rebin = True  # width grows: incremental repair invalid
        elif value == self.max_value:
            self._max_count += 1
        if self._max_count == 0:
            # The last copy of the maximum left the window and the new
            # sample is smaller: rescan (at most ~once per window period).
            self._rescan_max()
        if len(self._added) >= self.window:
            # Everything currently in the window arrived since the last
            # sync; a full re-bucket is cheaper than replaying the queues
            # (and bounds their memory when syncs are rare).
            self._added.clear()
            self._evicted.clear()
            self._rebin = True

    def _rescan_max(self) -> None:
        m = -math.inf
        count = 0
        for s in self.samples:
            if s > m:
                m = s
                count = 1
            elif s == m:
                count += 1
        self.max_value = m
        self._max_count = count
        self._rebin = True  # width shrank with the departed maximum

    def sync(self) -> None:
        """Fold pending appends/evictions into the bucket counts."""
        added, evicted = self._added, self._evicted
        if self.max_value <= 0.0:
            # All-zero (or empty) window: no bucketed form exists; the
            # snapshot degenerates to a point mass.
            self._counts = None
            self._width = 0.0
        elif self._rebin or self._counts is None:
            # Same expressions as Histogram.from_samples, so the counts
            # and width stay bitwise-equal to a from-scratch build.
            width = self.max_value / self.num_buckets * (1.0 + 1e-9)
            arr = np.asarray(self.samples, dtype=float)
            idx = np.minimum((arr / width).astype(int), self.num_buckets - 1)
            self._counts = np.bincount(
                idx, minlength=self.num_buckets).astype(float)
            self._width = width
        elif added or evicted:
            # Width unchanged since the last sync: integer count updates
            # (exact in float64) under the same binning arithmetic.
            counts = self._counts
            width = self._width
            top = self.num_buckets - 1
            if added:
                arr = np.asarray(added, dtype=float)
                idx = np.minimum((arr / width).astype(int), top)
                counts += np.bincount(
                    idx, minlength=self.num_buckets).astype(float)
            if evicted:
                arr = np.asarray(evicted, dtype=float)
                idx = np.minimum((arr / width).astype(int), top)
                counts -= np.bincount(
                    idx, minlength=self.num_buckets).astype(float)
        added.clear()
        evicted.clear()
        self._rebin = False

    def histogram(self) -> Optional[Histogram]:
        """Bitwise-equal to ``Histogram.from_samples(list(samples))``,
        or None when the window maximum is non-positive (the degenerate
        case both callers special-case)."""
        self.sync()
        if self._counts is None:
            return None
        # Histogram.__init__ performs the identical clip/sum/normalize
        # from_samples applies to its freshly-bincounted array; the copy
        # keeps the live counts independent of the returned object.
        return Histogram(self._width, self._counts.copy())


class DemandProfiler:
    """Sliding-window collector of per-request (cycles, memory-time) pairs."""

    def __init__(
        self,
        window: int = 2000,
        min_samples: int = 16,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        """Args:
            window: number of most-recent completions retained.
            min_samples: completions required before snapshots are offered
                (the controller stays at a safe frequency until then).
            num_buckets: histogram resolution (paper: 128).
        """
        if window <= 0 or min_samples <= 0:
            raise ValueError("window and min_samples must be positive")
        if min_samples > window:
            raise ValueError("min_samples cannot exceed the window")
        self.window = window
        self.min_samples = min_samples
        self.num_buckets = num_buckets
        self._cycles = _SlidingHistogram(window, num_buckets)
        self._memory = _SlidingHistogram(window, num_buckets)
        self.total_observed = 0

    def observe(self, compute_cycles: float, memory_time_s: float) -> None:
        """Record one completed request's measured demands."""
        if compute_cycles < 0 or memory_time_s < 0:
            raise ValueError("demands must be non-negative")
        self._cycles.add(compute_cycles)
        self._memory.add(memory_time_s)
        self.total_observed += 1

    @property
    def ready(self) -> bool:
        """True once enough samples exist to build distributions."""
        return len(self._cycles) >= self.min_samples

    @property
    def sample_count(self) -> int:
        return len(self._cycles)

    def snapshot(self) -> Optional[Tuple[Histogram, Histogram]]:
        """Current (compute-cycles, memory-time) histograms, or None.

        The memory histogram degenerates to a point mass at zero for
        compute-only workloads; the tail tables handle that uniformly.
        """
        if not self.ready:
            return None
        cycles = self._cycles.histogram()
        if cycles is None:
            # from_samples' own top <= 0 path.
            cycles = Histogram.point_mass(0.0, bucket_width=1.0)
        memory = self._memory.histogram()
        if memory is None:
            memory = Histogram.point_mass(0.0, bucket_width=ZERO_MEMORY_WIDTH)
        return cycles, memory

"""Incremental Eq. 2 decision kernel (perf layer 6; docs/performance.md).

Rubik evaluates the frequency constraint (paper Eq. 2)

    f  >=  max_i  c_i / (L - (now - a_i) - m_i)

on *every* arrival and completion, then rounds the result up onto the
DVFS grid. Between table refreshes the constraint is a pure function of
(tables, internal target, queue composition, head-request elapsed
bucket): the per-position tail pairs ``(c_i, m_i)`` come from one row of
each tail table, and the arrival times ``a_i`` are already maintained
incrementally by the core. The scalar and vectorized paths nevertheless
recompute every term per event — O(queue) subtract/divide/compare work
even when a single request arrived into an otherwise unchanged queue.

The kernel exploits two structural facts:

* **The decision decomposes over the queue.** ``quantize_up`` is
  monotone, so the chosen step is ``max_i quantize_up(c_i / slack_i)``
  (with the hopeless floor folded in as one more term). Non-binding
  terms therefore never need their division: ``c_i <= f * slack_i``
  (exact float comparison, one multiplication) already proves
  ``quantize_up(c_i / slack_i)`` cannot exceed the running step ``f``.
  Only terms that *raise* the step divide — and they replicate the
  scalar oracle's arithmetic verbatim (same division, same
  ``bisect_left(grid, ratio - 1e-9)``), so the emitted
  ``request_frequency`` value is always bit-identical to the scalar
  path's. This *lean fold* is the workhorse at shallow queue depths,
  where per-event certificates cannot amortize.
* **Deep queues move slowly.** At depths >= ``CERT_MIN_QUEUE`` the fold
  additionally maintains conservative expiry clocks — ``tau``, before
  which no live term can exceed the current step, and ``sigma``, before
  which no live term can turn hopeless — plus the *witness*: the queue
  position whose term raised the decision to the current step. While
  the clocks hold and the eval context (tables identity, trimmer
  target, head-row bucket, exactly-one-queue-delta epoch) is unchanged,
  an arrival folds in one new term and a completion re-certifies the
  shifted witness with a single division: O(changed state), not
  O(queue). Completions additionally require the row lists to be
  non-decreasing along the queue (checked once per list, memoized) so
  the position shift can only have *lowered* surviving terms, keeping
  the stale clocks conservative.

The clocks are sound in float semantics because their 1e-9 + 1e-12*now
guard dwarfs every accumulated rounding error (~2^-50 relative on
second-scale slacks) while staying far below inter-event gaps; an
expired clock merely forces a re-fold, never a wrong answer.

Persistent per-queue state lives on the kernel and keys off the table
pair's *identity*: the cached ``c``/``m`` row lists are the tail
tables' own append-only per-row caches, so a steady-state refresh that
re-resolves the snapshot fingerprint to the same pair
(``TailTableCache`` hit) carries the kernel's state across the refresh
untouched (counted as ``refresh_carries``). The ``Core.queue_epoch``
counter guarantees the kernel saw exactly one queue delta since its
last decision; any skip (mid-run path toggle, schemes sharing a core)
safely degrades to a full fold.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right
from typing import Dict, Optional

#: Queue depth from which the fold also maintains the tau/sigma expiry
#: clocks that unlock the O(1) per-event paths. Below it the extra
#: bookkeeping costs more than a shallow re-fold saves.
CERT_MIN_QUEUE = 4

_INF = float("inf")


@dataclasses.dataclass
class KernelStats:
    """Decision-path counters (exposed like ``RefreshStats``).

    Attributes:
        decisions: kernel decisions taken.
        fast_arrivals: arrivals served by the O(1) incremental path.
        fast_completions: completions served by the O(1) path.
        lean_folds: shallow-queue re-folds (no certificate upkeep).
        cert_folds: deep-queue re-folds that refreshed the certificates.
        invalidations_tables: re-folds forced by a refresh that actually
            swapped the table pair.
        invalidations_target: re-folds forced by a trimmer move.
        invalidations_row: re-folds forced by a head elapsed-bucket
            change.
        invalidations_epoch: re-folds forced by a queue-epoch skip
            (missed delta, e.g. a mid-run path toggle).
        refresh_carries: decisions taken after a refresh re-resolved to
            the *same* table pair (kernel state survived the refresh).
    """

    idle_decisions: int = 0
    warmup_decisions: int = 0
    fast_arrivals: int = 0
    fast_completions: int = 0
    lean_folds: int = 0
    cert_folds: int = 0
    invalidations_tables: int = 0
    invalidations_target: int = 0
    invalidations_row: int = 0
    invalidations_epoch: int = 0
    refresh_carries: int = 0

    def as_dict(self) -> Dict[str, int]:
        out = dataclasses.asdict(self)
        out["decisions"] = self.decisions
        return out

    @property
    def decisions(self) -> int:
        """All kernel decisions (every branch counts itself — keeping
        the hot prologue free of an unconditional increment)."""
        return (self.idle_decisions + self.warmup_decisions
                + self.fast_arrivals + self.fast_completions
                + self.lean_folds + self.cert_folds)

    @property
    def full_folds(self) -> int:
        """All O(queue) re-folds (lean + certificate)."""
        return self.lean_folds + self.cert_folds


class DecisionKernel:
    """Incremental, allocation-free evaluator of Eq. 2 for one core."""

    __slots__ = (
        "controller", "stats", "_dvfs", "_grid", "_inv_grid", "_nsteps",
        "_min_hz", "_max_hz", "_nominal_idx", "_certs",
        "_tables", "_btables", "_cbounds", "_mbounds", "_target",
        "_row_c", "_row_m", "_crow", "_mrow", "_mono_ok", "_mono_len",
        "_epoch", "_n", "_fidx", "_witness", "_any_hopeless", "_tau_abs",
        "_sigma_abs",
    )

    def __init__(self, controller) -> None:
        self.controller = controller
        self.stats = KernelStats()
        dvfs = controller.context.dvfs
        self._dvfs = dvfs
        grid = dvfs.frequencies
        self._grid = grid
        self._inv_grid = tuple(1.0 / f for f in grid)
        self._nsteps = len(grid)
        self._min_hz = dvfs.min_hz
        self._max_hz = dvfs.max_hz
        # The step the hopeless floor rounds to: identical, by
        # construction, to ``quantize_up(nominal_hz)`` (clamped).
        self._nominal_idx = min(
            bisect_left(grid, dvfs.nominal_hz - 1e-9), len(grid) - 1)
        self._certs = False  # decision state + tau/sigma clocks usable
        self._tables = None       # identity key of _crow/_mrow
        self._btables = None      # identity key of _cbounds/_mbounds
        self._cbounds: Optional[list] = None
        self._mbounds: Optional[list] = None
        self._target = 0.0
        self._row_c = -1
        self._row_m = -1
        self._crow: Optional[list] = None
        self._mrow: Optional[list] = None
        self._mono_ok = True
        self._mono_len = 0
        self._epoch = -1
        self._n = 0
        self._fidx = 0
        self._witness = -1
        self._any_hopeless = False
        self._tau_abs = -_INF
        self._sigma_abs = -_INF

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all incremental state (next decision re-folds fully)."""
        self._certs = False

    def note_refresh_carry(self) -> None:
        """Count a refresh that re-resolved to the same table pair (the
        kernel's per-queue state survived it). Part of the kernel
        interface shared with the native wrapper, where the Python-side
        counter cannot live on the materialized stats snapshot."""
        self.stats.refresh_carries += 1

    # ------------------------------------------------------------------
    def decide(self, core) -> None:
        """Emit the Eq. 2 frequency request for the current queue."""
        ctrl = self.controller
        # The arrival buffer holds current + queued by invariant; reading
        # it directly skips the queue_length property call per event.
        pending = core._pending_arrivals
        n = len(pending)
        if n == 0:
            # Empty system: park at the bottom of the grid. The next
            # arrival re-folds a one-term queue (trivially cheap).
            core.request_frequency(self._min_hz)
            self.stats.idle_decisions += 1
            self._certs = False
            return
        tables = ctrl.tables
        if tables is None:
            core.request_frequency(self._max_hz)
            self.stats.warmup_decisions += 1
            self._certs = False
            return
        trimmer = ctrl.trimmer
        target = (trimmer.internal_target_s if trimmer is not None
                  else ctrl.context.latency_bound_s)
        now = ctrl.sim.now
        elapsed_c, elapsed_m = core.current_request_elapsed()
        if tables is not self._btables:
            self._btables = tables
            self._cbounds = tables.cycles._row_bounds_list
            self._mbounds = tables.memory._row_bounds_list
        row_c = bisect_right(self._cbounds, elapsed_c) - 1
        row_m = bisect_right(self._mbounds, elapsed_m) - 1

        if n < CERT_MIN_QUEUE:
            # Shallow queue (dominant at moderate load): lean fold,
            # inline — no certificate upkeep, row-list refs cached
            # across events, one division per binding term only.
            crow = self._crow
            mrow = self._mrow
            if (row_c != self._row_c or row_m != self._row_m
                    or tables is not self._tables or crow is None
                    or len(crow) < n or len(mrow) < n):
                crow = tables.cycles.extended_row_list(row_c, n)
                mrow = tables.memory.extended_row_list(row_m, n)
                if crow is not self._crow or mrow is not self._mrow:
                    self._mono_ok = True
                    self._mono_len = 0
                self._crow = crow
                self._mrow = mrow
                self._tables = tables
                self._row_c = row_c
                self._row_m = row_m
            self._certs = False
            self.stats.lean_folds += 1
            grid = self._grid
            last = self._nsteps - 1
            if n == 1:
                slack = (target - (now - pending[0])) - mrow[0]
                if slack <= 0.0:
                    idx = self._nominal_idx
                else:
                    idx = bisect_left(grid, crow[0] / slack - 1e-9)
                    if idx > last:
                        idx = last
                core.request_frequency(grid[idx])
                return
            fidx = 0
            f = grid[0]
            any_h = False
            for c_i, m_i, arrival in zip(crow, mrow, pending):
                slack = (target - (now - arrival)) - m_i
                if slack <= 0.0:
                    any_h = True
                elif c_i > f * slack:
                    idx = bisect_left(grid, c_i / slack - 1e-9)
                    if idx >= last:
                        fidx = last
                        break
                    fidx = idx
                    f = grid[fidx]
            if fidx < last and any_h and fidx < self._nominal_idx:
                fidx = self._nominal_idx
            core.request_frequency(grid[fidx])
            return

        epoch = core.queue_epoch
        if self._certs and epoch == self._epoch + 1:
            stats = self.stats
            if tables is not self._tables:
                stats.invalidations_tables += 1
            elif target != self._target:
                stats.invalidations_target += 1
            elif row_c != self._row_c or row_m != self._row_m:
                stats.invalidations_row += 1
            elif n == self._n + 1:
                if self._arrival_fast(core, n, now, target):
                    self._epoch = epoch
                    self._n = n
                    return
            elif n == self._n - 1:
                if self._completion_fast(core, n, now, target):
                    self._epoch = epoch
                    self._n = n
                    return
        elif self._certs:
            self.stats.invalidations_epoch += 1
        self._full_fold(core, n, now, target, tables, row_c, row_m, epoch)

    # ------------------------------------------------------------------
    def _arrival_fast(self, core, n: int, now: float,
                      target: float) -> bool:
        """Fold the newest term onto the certified previous decision.

        Returns False when a certificate expired (the caller re-folds).
        """
        fidx = self._fidx
        grid = self._grid
        last = self._nsteps - 1
        any_h = self._any_hopeless
        if fidx < last and now > self._tau_abs:
            return False  # some live term may now exceed the step
        if (not any_h and fidx < self._nominal_idx
                and now > self._sigma_abs):
            return False  # some live term may have turned hopeless
        witness = self._witness
        floored = any_h and fidx == self._nominal_idx
        mrow = self._mrow
        crow = self._crow
        pending = core._pending_arrivals
        if fidx > 0 and not floored:
            # Lower bound: the witness's ratio only grows with the clock
            # while the composition holds (tau keeps it <= the step from
            # above) — unless it turned hopeless, which would *remove*
            # its term entirely.
            if witness < 0:
                return False
            if (target - (now - pending[witness])) - mrow[witness] <= 0.0:
                return False
        if fidx == last:
            # Pinned at the top step: a new term cannot raise it and the
            # floor cannot exceed it.
            core.request_frequency(grid[last])
            self.stats.fast_arrivals += 1
            return True

        # Extend the shared row lists to cover the new position.
        n_idx = n - 1
        if len(crow) < n or len(mrow) < n:
            tables = self._tables
            crow = tables.cycles.extended_row_list(self._row_c, n)
            mrow = tables.memory.extended_row_list(self._row_m, n)
            self._crow = crow
            self._mrow = mrow

        c_i = crow[n_idx]
        slack = (target - (now - pending[-1])) - mrow[n_idx]
        if slack <= 0.0:
            any_h = True
        else:
            guard = 1e-9 + 1e-12 * now
            sig = now + slack - guard
            if sig < self._sigma_abs:
                self._sigma_abs = sig
            p = grid[fidx] * slack
            if c_i <= p:
                tau = now + (p - c_i) * self._inv_grid[fidx] - guard
                if tau < self._tau_abs:
                    self._tau_abs = tau
            else:
                # The new term binds: its exact step, scalar arithmetic.
                idx = bisect_left(grid, c_i / slack - 1e-9)
                fidx = idx if idx < last else last
                witness = n_idx
                if fidx < last:
                    p = grid[fidx] * slack
                    tau = now + (p - c_i) * self._inv_grid[fidx] - guard
                    if tau < self._tau_abs:
                        self._tau_abs = tau
        if any_h and fidx < self._nominal_idx:
            fidx = self._nominal_idx
            witness = -1  # the floor, not a term, holds the step up
        self._fidx = fidx
        self._witness = witness
        self._any_hopeless = any_h
        core.request_frequency(grid[fidx])
        self.stats.fast_arrivals += 1
        return True

    # ------------------------------------------------------------------
    def _completion_fast(self, core, n: int, now: float,
                         target: float) -> bool:
        """Keep the decision across a head departure (positions shift).

        For steps below the top, soundness needs the row lists to be
        non-decreasing along the queue: then every surviving term's
        ratio can only have dropped, so the stale ``tau``/``sigma``
        clocks stay conservative and the re-divided witness alone pins
        the step from below. At the top step the fresh witness division
        pins the decision by itself.
        """
        if self._any_hopeless:
            return False  # the floor (or a hopeless term) may lift
        fidx = self._fidx
        grid = self._grid
        last = self._nsteps - 1
        if fidx == 0:
            if now > self._tau_abs or now > self._sigma_abs:
                return False
            if not self._ensure_mono(self._n):
                return False
            core.request_frequency(grid[0])
            self._witness = -1
            self.stats.fast_completions += 1
            return True
        b = self._witness - 1
        if b < 0:
            return False  # the binding term departed
        if fidx < last:
            if now > self._tau_abs:
                return False
            if fidx < self._nominal_idx and now > self._sigma_abs:
                return False
            if not self._ensure_mono(self._n):
                return False
        slack = (target - (now - core._pending_arrivals[b])) - self._mrow[b]
        if slack <= 0.0:
            return False
        idx = bisect_left(grid, self._crow[b] / slack - 1e-9)
        if (idx if idx < last else last) != fidx:
            return False  # the witness no longer pins this step
        core.request_frequency(grid[fidx])
        self._witness = b
        self.stats.fast_completions += 1
        return True

    # ------------------------------------------------------------------
    def _ensure_mono(self, upto: int) -> bool:
        """Verify the cached row lists are non-decreasing over the first
        ``upto`` positions (prefix memoized; lists are append-only)."""
        if not self._mono_ok:
            return False
        k = self._mono_len
        if k >= upto:
            return True
        crow = self._crow
        mrow = self._mrow
        upto = min(upto, len(crow), len(mrow))
        for j in range(k if k > 1 else 1, upto):
            if crow[j] < crow[j - 1] or mrow[j] < mrow[j - 1]:
                self._mono_ok = False
                return False
        self._mono_len = upto
        return True

    # ------------------------------------------------------------------
    def _full_fold(self, core, n: int, now: float, target: float,
                   tables, row_c: int, row_m: int, epoch: int) -> None:
        """Re-fold the whole (deep) queue onto the grid, refreshing the
        tau/sigma clocks that unlock the O(1) paths.

        Non-binding terms are filtered with one multiplication; binding
        terms replicate the scalar division + quantization verbatim.
        Only called at depths >= ``CERT_MIN_QUEUE`` (shallower queues
        take the inline lean fold in :meth:`decide`).
        """
        stats = self.stats
        stats.cert_folds += 1
        if (row_c == self._row_c and row_m == self._row_m
                and tables is self._tables and self._crow is not None
                and len(self._crow) >= n and len(self._mrow) >= n):
            crow = self._crow
            mrow = self._mrow
        else:
            crow = tables.cycles.extended_row_list(row_c, n)
            mrow = tables.memory.extended_row_list(row_m, n)
            if crow is not self._crow or mrow is not self._mrow:
                self._mono_ok = True
                self._mono_len = 0
            self._tables = tables
            self._row_c = row_c
            self._row_m = row_m
            self._crow = crow
            self._mrow = mrow
        grid = self._grid
        last = self._nsteps - 1
        fidx = 0
        f = grid[0]
        any_h = False
        witness = -1
        inv_grid = self._inv_grid
        inv_f = inv_grid[0]
        guard = 1e-9 + 1e-12 * now
        tau_abs = _INF
        sigma_abs = _INF
        for i, (c_i, m_i, arrival) in enumerate(
                zip(crow, mrow, core._pending_arrivals)):
            slack = (target - (now - arrival)) - m_i
            if slack <= 0.0:
                any_h = True
                continue
            sig = now + slack - guard
            if sig < sigma_abs:
                sigma_abs = sig
            p = f * slack
            if c_i <= p:
                tau = now + (p - c_i) * inv_f - guard
                if tau < tau_abs:
                    tau_abs = tau
                continue
            idx = bisect_left(grid, c_i / slack - 1e-9)
            witness = i
            if idx >= last:
                # Pinned at the top step regardless of the remaining
                # terms; the witness re-division replaces the expiry
                # clocks while pinned.
                fidx = last
                tau_abs = _INF
                sigma_abs = _INF
                break
            fidx = idx
            f = grid[fidx]
            inv_f = inv_grid[fidx]
            tau = now + (f * slack - c_i) * inv_f - guard
            if tau < tau_abs:
                tau_abs = tau
        if fidx < last and any_h and fidx < self._nominal_idx:
            fidx = self._nominal_idx
            witness = -1
        self._tau_abs = tau_abs
        self._sigma_abs = sigma_abs
        self._certs = True
        self._target = target
        self._epoch = epoch
        self._n = n
        self._fidx = fidx
        self._witness = witness
        self._any_hopeless = any_h
        core.request_frequency(grid[fidx])

"""Refresh-cached target tail tables (perf layer 5; see
docs/performance.md).

The paper's runtime rebuilds its target tail tables every 100 ms
(Sec. 4.2). In steady state the demand window barely moves between
refreshes, and across experiment variants (ablations, scalar-vs-vector
A/B runs, `compare_schemes` seeds) *identical* demand windows recur
constantly — yet every refresh used to rebuild
:class:`~repro.core.tail_tables.TargetTailTables` from scratch,
discarding the conditioned histograms, FFT state, and row-list caches
the previous identical build had accumulated.

A :class:`TailTableCache` memoizes built table pairs behind a
**snapshot fingerprint**. A `TargetTailTables` is a pure function of
``(cycles histogram, memory histogram, quantile, num_rows,
max_explicit)``, and a histogram is fully determined by its bucket width
and pmf bytes — so the fingerprint is exactly that tuple, and an
unchanged fingerprint reuses the previous object outright. Reuse carries
over every lazily-built column, ``_fft_state`` transform power, and
``_row_lists`` float cache, so work accumulated since the last miss is
never re-paid. The cache is bounded (LRU) and shared process-wide;
worker processes each hold their own (results stay bitwise-identical
either way — pinned by the runner equivalence tests).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional, Tuple


def snapshot_fingerprint(cycles, memory, quantile: float, num_rows: int,
                         max_explicit: int) -> Tuple:
    """Hashable identity of the table pair a demand snapshot implies.

    ``bucket_width`` + raw pmf bytes fully determine a
    :class:`~repro.core.histogram.Histogram`; the three parameters are
    everything else the ``TargetTailTables`` constructor consumes.
    Windows whose *counts* differ but normalize to the same pmf (e.g. a
    point mass at any sample count) fingerprint identically — exactly
    the steady-state reuse the refresh subsystem is after.
    """
    return (
        float(quantile), int(num_rows), int(max_explicit),
        cycles.bucket_width, cycles.pmf.tobytes(),
        memory.bucket_width, memory.pmf.tobytes(),
    )


@dataclasses.dataclass
class RefreshStats:
    """Per-controller counters for the periodic table refresh.

    Attributes:
        snapshots: demand snapshots taken (accepted refreshes).
        cache_hits: refreshes that reused a cached table pair.
        cache_misses: refreshes that rebuilt tables from scratch.
        columns_carried: explicit columns (beyond the always-built
            column 0) already materialized in reused table pairs at hit
            time — lazy build work the hit avoided re-paying.
        object_carries: refreshes whose cache hit re-resolved to the
            very table pair the controller already held (steady-state
            fingerprints). Everything keyed on table identity — notably
            the decision kernel's incremental per-queue state — survives
            such a refresh untouched.
    """

    snapshots: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    columns_carried: int = 0
    object_carries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class TailTableCache:
    """Bounded LRU of ``TargetTailTables`` keyed by snapshot fingerprint.

    Entries are *live* objects: lazy columns built through a cached pair
    accumulate in place, so later hits inherit them. Eviction only drops
    the cache's reference — controllers holding the pair keep it.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[object]:
        """The cached table pair for ``key``, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Tuple, tables: object) -> None:
        """Insert (or refresh) ``key``, evicting the least recent over
        ``maxsize``."""
        entries = self._entries
        entries[key] = tables
        entries.move_to_end(key)
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters persist; see :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Process-wide cache every Rubik instance consults: ablation variants
#: and repeated `compare_schemes` runs over identical demand windows
#: share builds. Pool workers hold their own copy (bitwise-invisible).
#: The default bound must comfortably exceed one run's refresh count
#: (~22 at bench scale) or a rerun evicts its own fingerprints and the
#: warm-reuse guarantee quietly degrades — the ``perf_smoke`` guard
#: asserts zero evictions across the cold+warm pair to keep that cliff
#: self-diagnosing.
TABLE_CACHE = TailTableCache()

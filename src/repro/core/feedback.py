"""Feedback-based fine-tuning (paper Sec. 4.2).

Rubik's analytical model is deliberately conservative (bucket-edge tails,
triangle-inequality combination of compute and memory tails), so it tends
to run slightly faster than necessary. A small PI controller observes the
measured tail latency over a rolling window (paper: 1 s) and nudges the
*internal* latency target the analytical model aims at: when the measured
tail sits below the bound, the internal target relaxes and frequencies
drop; if the tail creeps above the bound, the target tightens.

The adjustment range is clamped — feedback is a trim, not the mechanism
that enforces the bound (that is the analytical model's job).
"""

from __future__ import annotations

from repro.analysis.windows import RollingTailEstimator


class LatencyTargetTrimmer:
    """PI controller on the internal latency target."""

    def __init__(
        self,
        bound_s: float,
        tail_percentile: float = 95.0,
        window_s: float = 1.0,
        adjust_period_s: float = 0.1,
        kp: float = 0.6,
        ki: float = 0.8,
        min_scale: float = 0.6,
        max_scale: float = 2.5,
        min_window_samples: int = 40,
    ) -> None:
        """Args:
            bound_s: the external tail-latency bound ``L``.
            tail_percentile: percentile the bound applies to.
            window_s: rolling measurement window (paper: 1 s).
            adjust_period_s: how often the target is re-trimmed.
            kp, ki: proportional and integral gains on the *relative*
                error ``(L - measured_tail) / L``.
            min_scale, max_scale: clamp on the internal target as a
                multiple of the bound.
            min_window_samples: completions required in the window before
                trimming (tail estimates from few samples are noise).
        """
        if bound_s <= 0:
            raise ValueError("bound must be positive")
        if min_scale <= 0 or max_scale < min_scale:
            raise ValueError("need 0 < min_scale <= max_scale")
        self.bound_s = bound_s
        self.kp = kp
        self.ki = ki
        self.min_scale = min_scale
        self.max_scale = max_scale
        self.adjust_period_s = adjust_period_s
        self.min_window_samples = min_window_samples
        self._estimator = RollingTailEstimator(window_s, tail_percentile)
        self._integral = 0.0
        self._last_adjust = float("-inf")
        self.internal_target_s = bound_s

    def observe(self, now: float, latency_s: float) -> None:
        """Record a completion and re-trim if the period elapsed."""
        self._estimator.observe(now, latency_s)
        if now - self._last_adjust >= self.adjust_period_s:
            self._adjust(now)
            self._last_adjust = now

    def _adjust(self, now: float) -> None:
        if self._estimator.count() < self.min_window_samples:
            return
        measured = self._estimator.tail(now)
        if measured is None:
            return
        error = (self.bound_s - measured) / self.bound_s
        self._integral += error * self.adjust_period_s
        scale = 1.0 + self.kp * error + self.ki * self._integral
        scale = min(self.max_scale, max(self.min_scale, scale))
        # Anti-windup: when clamped, freeze the integral at the value that
        # produces the clamp so recovery is immediate.
        implied = (scale - 1.0 - self.kp * error) / self.ki if self.ki else 0.0
        self._integral = implied
        self.internal_target_s = scale * self.bound_s

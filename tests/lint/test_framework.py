"""Framework tests: pragmas, suppression accounting, engine dispatch,
and the command line."""

import textwrap

import pytest

from repro.lint import lint_sources
from repro.lint.__main__ import main as lint_main
from repro.lint.base import all_rules


def _lint(source, rules=None, path="mod.py"):
    return lint_sources({path: textwrap.dedent(source)}, rules=rules)


CLOCK = """\
    import time

    def stamp():
        return time.time()
    """


class TestSuppressions:

    def test_same_line_pragma_suppresses(self):
        res = _lint("""\
            import time

            def stamp():
                return time.time()  # repro-lint: allow(determinism) -- meta
            """)
        assert res.clean

    def test_standalone_line_above_suppresses(self):
        res = _lint("""\
            import time

            def stamp():
                # repro-lint: allow(determinism) -- metadata only
                return time.time()
            """)
        assert res.clean

    def test_unsuppressed_finding_reported(self):
        res = _lint(CLOCK)
        assert [f.rule for f in res.findings] == ["determinism"]
        assert res.findings[0].line == 4

    def test_wrong_rule_id_does_not_suppress(self):
        res = _lint("""\
            import time

            def stamp():
                return time.time()  # repro-lint: allow(env-gate) -- nope
            """)
        rules = {f.rule for f in res.findings}
        # the read still fires AND the pragma is reported as unused
        assert "determinism" in rules
        assert "unused-suppression" in rules

    def test_unused_pragma_is_a_finding(self):
        res = _lint("""\
            x = 1  # repro-lint: allow(determinism) -- stale claim
            """)
        assert [f.rule for f in res.findings] == ["unused-suppression"]

    def test_unused_pragma_not_reported_when_rule_filtered_out(self):
        # Only env-gate ran; a determinism pragma might be load-bearing
        # for the rules that did not run, so it must not be flagged.
        res = _lint("""\
            x = 1  # repro-lint: allow(determinism) -- checked elsewhere
            """, rules=["env-gate"])
        assert res.clean

    def test_malformed_pragma_is_a_finding(self):
        res = _lint("""\
            x = 1  # repro-lint: allow determinism
            """)
        assert [f.rule for f in res.findings] == ["pragma"]

    def test_pragma_without_reason_is_malformed(self):
        res = _lint("""\
            x = 1  # repro-lint: allow(determinism)
            """)
        assert [f.rule for f in res.findings] == ["pragma"]

    def test_multi_rule_pragma(self):
        res = _lint("""\
            import os
            import time

            def probe():
                # repro-lint: allow(determinism, env-gate) -- diag probe
                return time.time(), os.getenv("REPRO_NATIVE")
            """)
        assert res.clean

    def test_pragma_in_docstring_is_documentation(self):
        # Pragmas live in comments; mentioning one in a docstring or a
        # string literal must neither suppress nor count as unused.
        res = _lint('''\
            """Suppress with: # repro-lint: allow(determinism) -- why."""
            PATTERN = "repro-lint: allow(x) -- malformed ( example"
            ''')
        assert res.clean

    def test_syntax_error_reported_as_parse_finding(self):
        res = _lint("def broken(:\n")
        assert [f.rule for f in res.findings] == ["parse"]


class TestEngine:

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            _lint("x = 1\n", rules=["no-such-rule"])

    def test_rules_filter_limits_findings(self):
        source = """\
            import os
            import time

            T = time.time()
            V = os.environ.get("REPRO_NATIVE")
            """
        assert {f.rule for f in _lint(source).findings} == {
            "determinism", "env-gate"}
        only = _lint(source, rules=["env-gate"])
        assert {f.rule for f in only.findings} == {"env-gate"}

    def test_findings_sorted_by_location(self):
        res = lint_sources({
            "b.py": "import time\nT = time.time()\n",
            "a.py": "import time\nT = time.time()\n",
        })
        assert [f.path for f in res.findings] == ["a.py", "b.py"]

    def test_c_sources_are_scanned_for_pragmas(self):
        res = lint_sources({
            "x.c": "// repro-lint: allow(determinism) -- stale\nint x;\n"})
        assert [f.rule for f in res.findings] == ["unused-suppression"]

    def test_registry_has_the_seven_documented_rules(self):
        assert list(all_rules()) == [
            "determinism", "native-abi", "flush-hook",
            "fingerprint-coverage", "env-gate", "picklable-worker",
            "fault-gate"]
        for rule in all_rules().values():
            assert rule.title and rule.invariant


class TestCli:

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "native-abi" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_render_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nT = time.time()\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2: [determinism]" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert lint_main(["--rules", "bogus", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_directory_collection_recurses(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "bad.py").write_text("import time\nT = time.time()\n")
        assert lint_main([str(tmp_path)]) == 1

"""Tier-1 gate: the shipped source tree satisfies every lint rule, and
the dogfood fixes the linter forced stay fixed."""

import inspect

from repro.experiments import fig06_power_savings
from repro.experiments.configs import CONFIGS
from repro.lint import default_paths, lint_paths


class TestRepoClean:

    def test_tree_is_clean(self):
        result = lint_paths()
        assert result.clean, "\n" + result.render()

    def test_scan_covers_the_package_and_the_c_kernel(self):
        result = lint_paths()
        # The default scan must include the native C source (the ABI
        # cross-check pairs it with the ctypes mirror) and be non-toy.
        assert result.files_scanned > 50
        assert len(result.rules_run) == 7

    def test_default_paths_is_the_package_tree(self):
        (root,) = default_paths()
        assert root.name == "repro"
        assert (root / "core" / "_native" / "rubik_native.c").exists()


class TestDogfoodFixes:
    """Regressions for true positives the first lint run surfaced."""

    def test_fig6_seed_axis_comes_from_the_driver_config(self):
        # The fig06 config declared seeds nobody consumed: run_fig6
        # defaulted to common.DEFAULT_EVAL_SEEDS, so editing the config
        # axis silently changed nothing. The default must track the
        # config (and stay non-empty so the sweep is multi-seed).
        cfg_seeds = CONFIGS["fig06"].seeds
        assert cfg_seeds, "fig06 is a multi-seed driver"
        param = inspect.signature(
            fig06_power_savings.run_fig6).parameters["seeds"]
        assert param.default == cfg_seeds
        assert fig06_power_savings.SEEDS == cfg_seeds

"""native-abi rule: the C parser and compiler-free drift detection.

The acceptance property: mutating a *copy* of the real sources — two
rk_state mirror fields reordered, or one field's type changed — makes
the rule fire, with no C compiler involved anywhere.
"""

import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_sources
from repro.lint.c_abi import CParseError, parse_struct, strip_comments

KERNEL_PY = Path(__file__).resolve().parents[2] \
    / "src/repro/core/_native/kernel.py"
NATIVE_C = Path(__file__).resolve().parents[2] \
    / "src/repro/core/_native/rubik_native.c"


def abi_findings(sources):
    res = lint_sources(sources, rules=["native-abi"])
    return [f for f in res.findings if f.rule == "native-abi"]


MINI_C = textwrap.dedent("""\
    /* minimal mirror fixture */
    typedef struct {
        double now;
        i64 decisions;
        double *grid;
        double unacct[8];
    } rk_state;
    """)

MINI_PY = textwrap.dedent("""\
    import ctypes

    _DP = ctypes.POINTER(ctypes.c_double)

    class RKState(ctypes.Structure):
        _fields_ = [
            ("now", ctypes.c_double),
            ("decisions", ctypes.c_int64),
            ("grid", _DP),
            ("unacct", ctypes.c_double * 8),
        ]
    """)


class TestCParser:

    def test_parses_fields_in_order(self):
        struct = parse_struct(MINI_C)
        assert [(f.name, f.ctype) for f in struct.fields] == [
            ("now", "double"), ("decisions", "i64"),
            ("grid", "double*"), ("unacct", "double[8]")]

    def test_strip_comments_preserves_offsets(self):
        src = "int a; /* gone */ int b;\n// line\nint c;\n"
        stripped = strip_comments(src)
        originals = src.splitlines()
        assert len(stripped) == len(originals)
        assert [len(s) for s in stripped] == [len(o) for o in originals]
        assert "gone" not in "".join(stripped)
        assert stripped[2] == "int c;"
        # code after a block comment survives at its original column
        assert stripped[0].index("int b;") == originals[0].index("int b;")

    def test_commented_out_field_ignored(self):
        src = MINI_C.replace("i64 decisions;",
                             "i64 decisions;\n    /* double old; */")
        names = [f.name for f in parse_struct(src).fields]
        assert "old" not in names and "decisions" in names

    def test_unknown_member_type_raises(self):
        bad = MINI_C.replace("i64 decisions;", "int decisions;")
        with pytest.raises(CParseError, match="decisions"):
            parse_struct(bad)

    def test_missing_struct_returns_none(self):
        assert parse_struct("int main(void) { return 0; }\n") is None


class TestMirrorComparison:

    def test_matching_fixture_clean(self):
        assert not abi_findings({"k.py": MINI_PY, "n.c": MINI_C})

    def test_name_drift(self):
        drifted = MINI_PY.replace('"decisions"', '"decision_count"')
        found = abi_findings({"k.py": drifted, "n.c": MINI_C})
        assert any("name drift" in f.message for f in found)

    def test_type_drift(self):
        drifted = MINI_PY.replace('("grid", _DP)',
                                  '("grid", ctypes.POINTER(ctypes.c_int64))')
        found = abi_findings({"k.py": drifted, "n.c": MINI_C})
        assert any("type drift" in f.message and "'grid'" in f.message
                   for f in found)

    def test_count_drift(self):
        drifted = MINI_PY.replace(
            '("unacct", ctypes.c_double * 8),\n', "")
        found = abi_findings({"k.py": drifted, "n.c": MINI_C})
        assert any("count drift" in f.message for f in found)

    def test_array_length_drift(self):
        drifted = MINI_PY.replace("ctypes.c_double * 8",
                                  "ctypes.c_double * 4")
        found = abi_findings({"k.py": drifted, "n.c": MINI_C})
        assert any("'unacct'" in f.message for f in found)

    def test_missing_c_side_reported(self):
        found = abi_findings({"k.py": MINI_PY})
        assert found and "no C source" in found[0].message

    def test_missing_py_side_reported(self):
        found = abi_findings({"n.c": MINI_C})
        assert found and "no ctypes" in found[0].message


class TestRealSources:
    """Drift detection against copies of the actual repo sources —
    the no-compiler guarantee the runtime size guard cannot give."""

    @pytest.fixture()
    def real(self):
        return {"kernel.py": KERNEL_PY.read_text(),
                "rubik_native.c": NATIVE_C.read_text()}

    def test_real_pair_is_clean(self, real):
        assert not abi_findings(real)

    def test_swapping_two_mirror_fields_fires(self, real):
        lines = real["kernel.py"].splitlines(keepends=True)
        adjacent = [i for i in range(len(lines) - 1)
                    if '", ctypes.c_double)' in lines[i]
                    and '", ctypes.c_double)' in lines[i + 1]]
        assert adjacent, "fixture rot: no adjacent c_double pair"
        i = adjacent[0]
        swapped = lines[:i] + [lines[i + 1], lines[i]] + lines[i + 2:]
        found = abi_findings({"kernel.py": "".join(swapped),
                              "rubik_native.c": real["rubik_native.c"]})
        # both positions drift: the swap cannot be shadowed
        assert sum("name drift" in f.message for f in found) == 2

    def test_type_mutation_in_c_copy_fires(self, real):
        m = re.search(r"^(\s*)double (\w+);", real["rubik_native.c"],
                      re.MULTILINE)
        assert m, "fixture rot: no plain double field in rk_state"
        mutated = real["rubik_native.c"].replace(
            m.group(0), f"{m.group(1)}i64 {m.group(2)};", 1)
        found = abi_findings({"kernel.py": real["kernel.py"],
                              "rubik_native.c": mutated})
        assert any("type drift" in f.message and m.group(2) in f.message
                   for f in found)

"""Per-rule unit tests over in-memory snippets: at least one firing and
one silent case per checker (the native-abi rule has its own module)."""

import textwrap

from repro.lint import lint_sources


def findings(rule, source, path="mod.py", extra_sources=None):
    sources = {path: textwrap.dedent(source)}
    if extra_sources:
        sources.update(extra_sources)
    res = lint_sources(sources, rules=[rule])
    return [f for f in res.findings if f.rule == rule]


class TestDeterminism:
    RULE = "determinism"

    def test_wall_clock_fires(self):
        found = findings(self.RULE, """\
            import time
            T = time.time()
            """)
        assert len(found) == 1 and found[0].line == 2
        assert "time.time" in found[0].message

    def test_datetime_now_fires(self):
        assert findings(self.RULE, """\
            import datetime
            N = datetime.datetime.now()
            """)

    def test_simulated_clock_silent(self):
        assert not findings(self.RULE, """\
            def advance(core, dt):
                core.now += dt
                return core.now
            """)

    def test_global_random_fires(self):
        found = findings(self.RULE, """\
            import random
            X = random.random()
            """)
        assert found and "global random" in found[0].message

    def test_local_name_random_silent(self):
        # No `import random`: a local object named random is fine.
        assert not findings(self.RULE, """\
            def f(random):
                return random.random()
            """)

    def test_np_legacy_rng_fires(self):
        assert findings(self.RULE, """\
            import numpy as np
            X = np.random.rand(3)
            """)

    def test_unseeded_default_rng_fires(self):
        assert findings(self.RULE, """\
            import numpy as np
            RNG = np.random.default_rng()
            """)

    def test_seeded_default_rng_silent(self):
        assert not findings(self.RULE, """\
            import numpy as np
            RNG = np.random.default_rng(1234)
            """)

    def test_fleet_literal_seed_fires(self):
        # In repro/fleet/, a literal seed is deterministic but not
        # provably placement-free: the seed must come from a
        # shard_seed/server_seed derivation.
        found = findings(self.RULE, """\
            import numpy as np
            RNG = np.random.default_rng(1234)
            """, path="src/repro/fleet/routing.py")
        assert found and "repro.fleet.seeding" in found[0].message

    def test_fleet_derived_seed_silent(self):
        assert not findings(self.RULE, """\
            import numpy as np
            from repro.fleet.seeding import server_seed, shard_seed

            A = np.random.default_rng(shard_seed(21, 0))
            B = np.random.default_rng(seed=server_seed(21, 5))
            """, path="src/repro/fleet/shards.py")

    def test_fleet_seeding_module_exempt(self):
        # seeding.py is the owner module constructing RNGs from the
        # derived integers; the scope check must not recurse into it.
        assert not findings(self.RULE, """\
            import numpy as np

            def shard_rng(seed, shard_index):
                return np.random.default_rng(shard_seed(seed, shard_index))

            def raw(value):
                return np.random.default_rng(value)
            """, path="src/repro/fleet/seeding.py")

    def test_non_fleet_literal_seed_still_silent(self):
        assert not findings(self.RULE, """\
            import numpy as np
            RNG = np.random.default_rng(1234)
            """, path="src/repro/coloc/batch.py")

    def test_unsorted_listdir_fires(self):
        assert findings(self.RULE, """\
            import os
            def entries(d):
                return [x for x in os.listdir(d)]
            """)

    def test_sorted_listdir_silent(self):
        assert not findings(self.RULE, """\
            import os
            def entries(d):
                return sorted(os.listdir(d))
            """)

    def test_unsorted_iterdir_fires(self):
        assert findings(self.RULE, """\
            def entries(root):
                for p in root.iterdir():
                    yield p
            """)

    def test_sorted_glob_silent(self):
        assert not findings(self.RULE, """\
            def entries(root):
                for p in sorted(root.glob("*.pkl")):
                    yield p
            """)

    def test_set_literal_iteration_fires(self):
        assert findings(self.RULE, """\
            def f():
                for x in {1, 2, 3}:
                    print(x)
            """)

    def test_set_call_in_comprehension_fires(self):
        assert findings(self.RULE, """\
            def f(items):
                return [x for x in set(items)]
            """)

    def test_sorted_set_iteration_silent(self):
        assert not findings(self.RULE, """\
            def f(items):
                for x in sorted(set(items)):
                    print(x)
            """)


class TestEnvGate:
    RULE = "env-gate"

    def test_environ_get_literal_fires(self):
        found = findings(self.RULE, """\
            import os
            V = os.environ.get("REPRO_THING")
            """)
        assert found and "REPRO_THING" in found[0].message

    def test_getenv_fires(self):
        assert findings(self.RULE, """\
            import os
            V = os.getenv("REPRO_THING")
            """)

    def test_subscript_fires(self):
        assert findings(self.RULE, """\
            import os
            V = os.environ["REPRO_THING"]
            """)

    def test_module_constant_key_fires(self):
        assert findings(self.RULE, """\
            import os
            THING_ENV = "REPRO_THING"
            V = os.environ.get(THING_ENV)
            """)

    def test_non_repro_variable_silent(self):
        assert not findings(self.RULE, """\
            import os
            V = os.environ.get("HOME")
            """)

    def test_helper_module_is_exempt(self):
        assert not findings(self.RULE, """\
            import os
            V = os.environ.get("REPRO_THING")
            """, path="src/repro/config.py")


class TestPicklableWorker:
    RULE = "picklable-worker"

    def test_lambda_fires(self):
        found = findings(self.RULE, """\
            def sweep(items):
                return parallel_map(lambda x: x + 1, items)
            """)
        assert found and "lambda" in found[0].message

    def test_partial_fires(self):
        assert findings(self.RULE, """\
            from functools import partial

            def sweep(items, k):
                return parallel_map(partial(work, k), items)
            """)

    def test_closure_fires(self):
        found = findings(self.RULE, """\
            def sweep(items):
                def point(x):
                    return x + 1
                return parallel_map(point, items)
            """)
        assert found and "closure" in found[0].message

    def test_bound_method_fires(self):
        assert findings(self.RULE, """\
            class Driver:
                def sweep(self, items):
                    return parallel_map(self.point, items)
            """)

    def test_run_cells_checks_second_positional(self):
        assert findings(self.RULE, """\
            def sweep(items):
                return run_cells("fig06", lambda x: x, items)
            """)

    def test_fn_keyword_checked(self):
        assert findings(self.RULE, """\
            def sweep(items):
                return parallel_map(items=items, fn=lambda x: x)
            """)

    def test_module_level_worker_silent(self):
        assert not findings(self.RULE, """\
            def point(x):
                return x + 1

            def sweep(items):
                return parallel_map(point, items)
            """)

    def test_forwarded_parameter_silent(self):
        # A dispatch helper forwarding a worker it was handed must pass:
        # the callable is checked at the site that names it.
        assert not findings(self.RULE, """\
            def dispatch(fn, items):
                return parallel_map(fn, items)
            """)


class TestFlushHook:
    RULE = "flush-hook"

    def test_read_without_flush_fires(self):
        found = findings(self.RULE, """\
            def probe(core):
                return core.meter.energy_j
            """)
        assert found and "flush" in found[0].message

    def test_segment_log_fires(self):
        assert findings(self.RULE, """\
            def probe(core):
                return len(core.segment_log)
            """)

    def test_dvfs_history_fires(self):
        assert findings(self.RULE, """\
            def probe(core):
                return core.dvfs.history[-1]
            """)

    def test_flush_before_read_silent(self):
        assert not findings(self.RULE, """\
            def probe(core):
                core.flush_accounting()
                return core.meter.energy_j
            """)

    def test_finalize_before_read_silent(self):
        assert not findings(self.RULE, """\
            def probe(cores):
                for c in cores:
                    c.finalize()
                return sum(c.meter.energy_j for c in cores)
            """)

    def test_read_before_flush_still_fires(self):
        found = findings(self.RULE, """\
            def probe(core):
                early = core.meter.energy_j
                core.flush_accounting()
                return early
            """)
        assert found and found[0].line == 2

    def test_self_reads_exempt(self):
        assert not findings(self.RULE, """\
            class Core:
                def energy(self):
                    return self.meter.energy_j
            """)

    def test_result_annotated_param_exempt(self):
        assert not findings(self.RULE, """\
            def series(run: RunResult):
                return run.segment_log
            """)

    def test_run_trace_local_exempt(self):
        assert not findings(self.RULE, """\
            def evaluate(trace):
                run = run_trace(trace)
                return run.segment_log
            """)

    def test_owner_modules_whitelisted(self):
        assert not findings(self.RULE, """\
            def flush_accounting(core):
                return core.meter
            """, path="src/repro/sim/core.py")


class TestFaultGate:
    RULE = "fault-gate"

    def test_os_exit_fires(self):
        found = findings(self.RULE, """\
            import os

            def die():
                os._exit(1)
            """)
        assert found and "os._exit" in found[0].message
        assert "maybe_inject" in found[0].message

    def test_os_kill_fires(self):
        assert findings(self.RULE, """\
            import os, signal

            def kill(pid):
                os.kill(pid, signal.SIGKILL)
            """)

    def test_signal_handler_install_fires(self):
        assert findings(self.RULE, """\
            import signal

            def arm():
                signal.signal(signal.SIGALRM, lambda *a: None)
            """)

    def test_resilience_plane_is_exempt(self):
        assert not findings(self.RULE, """\
            import os

            def _fire():
                os._exit(113)
            """, path="src/repro/resilience/faults.py")

    def test_bare_except_pass_fires(self):
        found = findings(self.RULE, """\
            def f():
                try:
                    work()
                except:
                    pass
            """)
        assert found and "bare except" in found[0].message

    def test_except_exception_pass_fires(self):
        found = findings(self.RULE, """\
            def f():
                try:
                    work()
                except Exception:
                    pass
            """)
        assert found and "except Exception" in found[0].message

    def test_broad_handler_that_surfaces_is_silent(self):
        assert not findings(self.RULE, """\
            def f():
                try:
                    work()
                except Exception as exc:
                    record(exc)
            """)

    def test_narrow_handler_pass_is_silent(self):
        # Suppressing a *named* exception type is a decision, not a
        # swallow: contextlib.suppress semantics stay fine.
        assert not findings(self.RULE, """\
            def f():
                try:
                    work()
                except OSError:
                    pass
            """)

    def test_unrelated_os_calls_silent(self):
        assert not findings(self.RULE, """\
            import os

            def pid():
                return os.getpid()
            """)


class TestFingerprintCoverage:
    RULE = "fingerprint-coverage"

    CONFIG = """\
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class DriverConfig:
            name: str
            loads: tuple = ()
            seeds: tuple = ()
        """

    def test_unread_field_fires(self):
        consumer = "def use(cfg):\n    return cfg.name, cfg.loads\n"
        found = findings(self.RULE, self.CONFIG, path="configs.py",
                         extra_sources={"driver.py": consumer,
                                        "fp.py": self.FINGERPRINT})
        assert len(found) == 1
        assert "'seeds'" in found[0].message
        assert found[0].path == "configs.py"

    def test_all_fields_read_silent(self):
        consumer = ("def use(cfg):\n"
                    "    return cfg.name, cfg.loads, cfg.seeds\n")
        assert not findings(self.RULE, self.CONFIG, path="configs.py",
                            extra_sources={"driver.py": consumer,
                                           "fp.py": self.FINGERPRINT})

    FINGERPRINT = textwrap.dedent("""\
        def cell_fingerprint(driver, version, fn, args):
            payload = (
                ("schema", 1),
                ("driver", driver),
                ("version", version),
                ("fn", fn.__qualname__),
                ("kernel", "native"),
                ("args", args),
            )
            return hash(payload)
        """)

    def test_dropped_payload_key_fires(self):
        dropped = self.FINGERPRINT.replace('("kernel", "native"),\n', "")
        consumer = ("def use(cfg):\n"
                    "    return cfg.name, cfg.loads, cfg.seeds\n")
        found = findings(self.RULE, self.CONFIG, path="configs.py",
                         extra_sources={"driver.py": consumer,
                                        "fp.py": dropped})
        assert len(found) == 1
        assert "'kernel'" in found[0].message and found[0].path == "fp.py"

    def test_complete_payload_silent(self):
        assert not findings(self.RULE, self.FINGERPRINT, path="fp.py")

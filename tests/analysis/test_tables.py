"""Tests for text-table rendering."""

import pytest

from repro.analysis.tables import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(("A", "B"), [(1, 2.5)])
        lines = out.splitlines()
        assert len(lines) == 3  # header, rule, row
        assert "A" in lines[0] and "B" in lines[0]

    def test_title(self):
        out = render_table(("A",), [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(("x",), [(1.23456,)], float_fmt=".2f")
        assert "1.23" in out

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("A", "B"), [(1,)])

    def test_string_cells(self):
        out = render_table(("name",), [("hello",)])
        assert "hello" in out

    def test_alignment(self):
        out = render_table(("col",), [("a",), ("bbbb",)])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2])  # fixed width


class TestRenderSeries:
    def test_pairs(self):
        out = render_series("s", [1, 2], [3, 4])
        assert out.startswith("s:")
        assert "(1, 3)" in out and "(2, 4)" in out

    def test_float_format(self):
        out = render_series("s", [0.123456], [1.0], float_fmt=".2g")
        assert "0.12" in out

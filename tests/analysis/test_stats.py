"""Tests for the statistics toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_ci,
    coefficient_of_variation,
    empirical_cdf,
    pearson,
    percentile,
    tail_latency,
)

floats_list = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2, max_size=100)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == pytest.approx(2.0)

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1.0
        assert percentile([1, 2, 3], 100) == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_tail_latency_default_is_95th(self):
        samples = list(range(1, 101))
        assert tail_latency(samples) == percentile(samples, 95)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=5000), rng.normal(size=5000)
        assert abs(pearson(x, y)) < 0.05

    def test_large_magnitude_near_constant_is_constant(self):
        """Table 1 regression: ns-scale latencies that are constant up to
        float rounding noise must read as constant (r = 0), not as a
        correlation of rounding artifacts. The old absolute 1e-15
        threshold saw std ~1e-5 here and happily divided by it."""
        rng = np.random.default_rng(7)
        base = 2.4e9  # "2.4 s in ns" — large-magnitude, constant data
        x = np.full(200, base) + rng.normal(0.0, 1e-5, 200)
        y = rng.normal(size=200)
        assert np.std(x) > 1e-15  # the old threshold would NOT fire
        assert pearson(x, y) == 0.0

    def test_large_magnitude_real_variation_still_correlates(self):
        """The relative tolerance must not swallow genuine variation on
        large-magnitude data."""
        rng = np.random.default_rng(8)
        x = 2.4e9 + rng.normal(0.0, 1e3, 500)  # real jitter, tiny CV
        y = 3.0 * x + rng.normal(0.0, 1e2, 500)
        assert pearson(x, y) == pytest.approx(1.0, abs=0.05)

    def test_tiny_magnitude_real_variation_not_constant(self):
        """Sub-1e-15 std with real relative variation is *not* constant
        (the old absolute threshold returned 0 here)."""
        x = np.array([1e-20, 2e-20, 3e-20])
        y = np.array([2e-20, 4e-20, 6e-20])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_all_zero_input_is_constant(self):
        assert pearson([0.0, 0.0, 0.0], [1.0, 2.0, 3.0]) == 0.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            pearson([1], [2])

    @given(floats_list)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, xs):
        ys = [x * 2 + 1 for x in xs]
        r = pearson(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestBootstrap:
    def test_contains_true_mean(self):
        samples = np.random.default_rng(1).normal(10, 1, 500)
        lo, hi = bootstrap_ci(samples)
        assert lo <= 10.1 and hi >= 9.9

    def test_interval_ordering(self):
        lo, hi = bootstrap_ci([1, 2, 3, 4, 5])
        assert lo <= hi

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1, 2], confidence=1.5)


class TestCv:
    def test_constant_has_zero_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_known_value(self):
        # std of [1,3] (population) is 1, mean 2 -> CV 0.5
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1, 1])


class TestCdf:
    def test_sorted_output(self):
        vals, pct = empirical_cdf([3, 1, 2])
        assert list(vals) == [1, 2, 3]
        assert pct[-1] == pytest.approx(100.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

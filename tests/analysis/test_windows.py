"""Tests for rolling-window estimators."""

import numpy as np
import pytest

from repro.analysis.windows import (
    RollingTailEstimator,
    instantaneous_qps,
    windowed_series,
)


class TestRollingTailEstimator:
    def test_empty_returns_none(self):
        est = RollingTailEstimator(1.0)
        assert est.tail() is None

    def test_single_sample(self):
        est = RollingTailEstimator(1.0)
        est.observe(0.0, 5.0)
        assert est.tail() == pytest.approx(5.0)

    def test_eviction(self):
        est = RollingTailEstimator(1.0)
        est.observe(0.0, 100.0)
        est.observe(2.0, 1.0)
        assert est.tail() == pytest.approx(1.0)
        assert est.count() == 1

    def test_tail_with_explicit_now(self):
        est = RollingTailEstimator(1.0)
        est.observe(0.0, 1.0)
        assert est.tail(now=5.0) is None

    def test_percentile(self):
        est = RollingTailEstimator(100.0, pct=50.0)
        for i in range(11):
            est.observe(float(i), float(i))
        assert est.tail() == pytest.approx(5.0)

    def test_rejects_out_of_order(self):
        est = RollingTailEstimator(1.0)
        est.observe(5.0, 1.0)
        with pytest.raises(ValueError):
            est.observe(1.0, 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RollingTailEstimator(0.0)


class TestWindowedSeries:
    def test_tumbling_windows(self):
        # Power-of-two timestamps keep window edges float-exact.
        ts = [0.25, 0.5, 1.5, 1.75]
        vs = [1.0, 2.0, 3.0, 4.0]
        t, v = windowed_series(ts, vs, window_s=1.0, reducer=np.mean)
        assert len(t) == 2
        assert v[0] == pytest.approx(1.5)   # window ending 1.25
        assert v[1] == pytest.approx(3.5)   # window ending 2.25

    def test_empty_input(self):
        t, v = windowed_series([], [], 1.0)
        assert len(t) == 0

    def test_default_reducer_is_p95(self):
        ts = np.linspace(0, 0.9, 100)
        vs = np.arange(100.0)
        t, v = windowed_series(ts, vs, window_s=1.0)
        assert v[0] == pytest.approx(np.percentile(vs, 95))

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            windowed_series([1], [1, 2], 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            windowed_series([1], [1], 0.0)

    def test_sliding_step(self):
        ts = np.linspace(0, 2, 50)
        vs = np.ones(50)
        t, v = windowed_series(ts, vs, window_s=1.0, step_s=0.5,
                               reducer=np.mean)
        assert len(t) > 2  # overlapping windows


class TestInstantaneousQps:
    def test_uniform_rate(self):
        # 1000 arrivals at 1 kHz -> instantaneous QPS ~1000 within window
        ts = np.arange(0, 1, 0.001)
        qps = instantaneous_qps(ts, window_s=5e-3)
        assert np.median(qps) == pytest.approx(1000, rel=0.25)

    def test_empty(self):
        assert len(instantaneous_qps([])) == 0

    def test_burst_detected(self):
        ts = np.concatenate([np.arange(0, 1, 0.01),
                             np.full(50, 1.0)])  # burst at t=1
        qps = instantaneous_qps(ts, window_s=5e-3)
        assert qps.max() > 50 / 5e-3 * 0.9

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            instantaneous_qps([1.0], window_s=0.0)

"""Tests for analytic replay (the Lindley recurrence engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.schemes.replay import lindley_finish_times, replay
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE


def brute_force_finish(arrivals, service):
    finish = []
    prev = -np.inf
    for a, s in zip(arrivals, service):
        start = max(a, prev)
        prev = start + s
        finish.append(prev)
    return np.array(finish)


class TestLindley:
    def test_no_queueing(self):
        arr = np.array([0.0, 10.0, 20.0])
        svc = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(lindley_finish_times(arr, svc),
                                   [1.0, 11.0, 21.0])

    def test_full_queueing(self):
        arr = np.zeros(3)
        svc = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(lindley_finish_times(arr, svc),
                                   [1.0, 3.0, 6.0])

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0.01, max_value=10)), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, pairs):
        arr = np.sort(np.array([a for a, _ in pairs]))
        svc = np.array([s for _, s in pairs])
        np.testing.assert_allclose(
            lindley_finish_times(arr, svc),
            brute_force_finish(arr, svc), rtol=1e-12)


class TestReplay:
    def test_scalar_frequency_broadcast(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 200, seed=0)
        rep = replay(trace, 2.4e9)
        assert len(rep.response_times) == 200
        assert np.all(rep.freqs_hz == 2.4e9)

    def test_per_request_frequencies(self):
        trace = Trace.generate_at_load(MASSTREE, 0.3, 100, seed=0)
        freqs = np.where(np.arange(100) % 2 == 0, 2.4e9, 0.8e9)
        rep = replay(trace, freqs)
        assert set(np.unique(rep.freqs_hz)) == {0.8e9, 2.4e9}

    def test_higher_frequency_lower_latency(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 500, seed=1)
        slow = replay(trace, 1.2e9)
        fast = replay(trace, 3.4e9)
        assert fast.tail_latency() < slow.tail_latency()

    def test_higher_frequency_higher_power(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 500, seed=1)
        slow = replay(trace, 1.2e9)
        fast = replay(trace, 3.4e9)
        assert fast.mean_core_power_w > slow.mean_core_power_w

    def test_rejects_bad_frequency(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 10, seed=0)
        with pytest.raises(ValueError):
            replay(trace, 0.0)

    def test_energy_includes_idle_sleep(self):
        trace = Trace.generate_at_load(MASSTREE, 0.1, 100, seed=0)
        rep = replay(trace, 2.4e9)
        assert rep.total_energy_j > float(rep.busy_energy_j.sum())

    def test_violation_rate(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 500, seed=0)
        rep = replay(trace, 2.4e9)
        bound = rep.tail_latency(95)
        assert rep.violation_rate(bound) == pytest.approx(0.05, abs=0.01)

    def test_busy_freq_hist(self):
        trace = Trace.generate_at_load(MASSTREE, 0.3, 100, seed=0)
        rep = replay(trace, 2.4e9)
        hist = rep.busy_freq_hist()
        assert hist[2.4e9] == pytest.approx(1.0)

"""Tests for StaticOracle, AdrenalineOracle, DynamicOracle, and the
fixed-frequency baseline."""

import numpy as np
import pytest

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.experiments.common import make_context
from repro.schemes.adrenaline import AdrenalineOracle, tune_adrenaline
from repro.schemes.base import Scheme, SchemeContext
from repro.schemes.dynamic_oracle import (
    dynamic_oracle_schedule,
    evaluate_dynamic_oracle,
)
from repro.schemes.fixed import FixedFrequency
from repro.schemes.replay import replay
from repro.schemes.static_oracle import StaticOracle, find_static_frequency
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE, SHORE


@pytest.fixture(scope="module")
def setup():
    ctx = make_context(MASSTREE, 5, 2500)
    trace = Trace.generate_at_load(MASSTREE, 0.4, 2500, 5)
    return ctx, trace


class TestFixedFrequency:
    def test_defaults_to_nominal(self, setup):
        ctx, trace = setup
        run = run_trace(trace, FixedFrequency(), ctx,
                        record_freq_history=True)
        assert run.freq_history[0][1] == ctx.dvfs.nominal_hz
        assert run.dvfs_transitions == 0

    def test_explicit_frequency(self, setup):
        ctx, trace = setup
        run = run_trace(trace, FixedFrequency(1.2e9), ctx,
                        record_freq_history=True)
        # history[0] is the DVFS domain's nominal start; the scheme's
        # setting applies from the first transition on.
        assert all(f == 1.2e9 for _, f in run.freq_history[1:])

    def test_rejects_off_grid(self, setup):
        ctx, trace = setup
        with pytest.raises(ValueError):
            run_trace(trace, FixedFrequency(1.23e9), ctx)

    def test_name(self):
        assert FixedFrequency().name == "Fixed-frequency"
        assert "2.4" in FixedFrequency(2.4e9).name


class TestStaticOracle:
    def test_picks_lowest_feasible(self, setup):
        ctx, trace = setup
        f = find_static_frequency(trace, ctx.latency_bound_s, ctx)
        assert replay(trace, f).tail_latency() <= ctx.latency_bound_s
        below = ctx.dvfs.quantize_down(f - 0.1e9)
        if below < f:
            assert replay(trace, below).tail_latency() > ctx.latency_bound_s

    def test_infeasible_returns_max(self, setup):
        ctx, trace = setup
        tight = SchemeContext(latency_bound_s=1e-6)
        assert find_static_frequency(trace, 1e-6, tight) == ctx.dvfs.max_hz

    def test_at_bound_load_picks_nominal(self):
        """By construction, the bound equals the nominal tail at 50%
        load, so StaticOracle picks exactly nominal there."""
        ctx = make_context(MASSTREE, 5, 2500)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 2500, 5)
        so = StaticOracle()
        so.tune(trace, ctx)
        assert so.tuned_hz == ctx.dvfs.nominal_hz

    def test_requires_tuning_before_run(self, setup):
        ctx, trace = setup
        with pytest.raises(RuntimeError):
            run_trace(trace, StaticOracle(), ctx)

    def test_evaluate_meets_bound(self, setup):
        ctx, trace = setup
        rep = StaticOracle().evaluate(trace, ctx)
        assert rep.tail_latency() <= ctx.latency_bound_s


class TestAdrenalineOracle:
    def test_boost_at_least_short(self, setup):
        ctx, trace = setup
        setting = AdrenalineOracle().tune([trace], ctx)
        assert setting.f_boost_hz >= setting.f_short_hz

    def test_feasible_on_training_trace(self, setup):
        ctx, trace = setup
        setting = AdrenalineOracle().tune([trace], ctx)
        assert setting.tail_latency_s <= ctx.latency_bound_s

    def test_never_worse_than_static_when_self_tuned(self, setup):
        """With tuning on the eval trace, Adrenaline generalizes
        StaticOracle (f_short == f_boost is in its search space)."""
        ctx, trace = setup
        static = StaticOracle().evaluate(trace, ctx)
        adren = AdrenalineOracle().evaluate(trace, ctx)
        assert (adren.energy_per_request_j
                <= static.energy_per_request_j * 1.001)

    def test_infeasible_falls_back_to_max(self, setup):
        _, trace = setup
        tight = SchemeContext(latency_bound_s=1e-6)
        setting = tune_adrenaline([trace], tight)
        assert setting.f_short_hz == tight.dvfs.max_hz

    def test_bounds_length_mismatch_rejected(self, setup):
        ctx, trace = setup
        with pytest.raises(ValueError):
            tune_adrenaline([trace], ctx, bounds_s=[1.0, 2.0])

    def test_event_driven_matches_replay_shape(self, setup):
        """The event-driven scheme (used in Fig. 10) produces tails in
        the same ballpark as its analytic replay."""
        ctx, trace = setup
        adren = AdrenalineOracle()
        rep = adren.evaluate(trace, ctx)
        run = run_trace(trace, adren, ctx)
        assert run.tail_latency() <= max(rep.tail_latency() * 1.3,
                                         ctx.latency_bound_s * 1.3)

    def test_uses_predictions_not_truth(self):
        """With useless hints (hint_quality=0), boosting cannot target
        the true long requests."""
        import dataclasses
        noisy = dataclasses.replace(SHORE, hint_quality=0.0)
        ctx = make_context(noisy, 5, 2500)
        trace = Trace.generate_at_load(noisy, 0.3, 2500, 5)
        setting = AdrenalineOracle().tune([trace], ctx)
        boosted = trace.predicted_cycles >= setting.threshold_cycles
        truly_long = trace.compute_cycles >= np.quantile(
            trace.compute_cycles, 0.8)
        if boosted.any() and setting.f_boost_hz > setting.f_short_hz:
            hit_rate = (boosted & truly_long).sum() / max(1, boosted.sum())
            assert hit_rate < 0.6  # mostly misfires


class TestDynamicOracle:
    def test_violations_within_budget(self, setup):
        ctx, trace = setup
        rep = evaluate_dynamic_oracle(trace, ctx, max_rounds=2)
        assert rep.violation_rate(ctx.latency_bound_s) <= 0.05 + 1e-9

    def test_beats_static_oracle(self, setup):
        """Short-term adaptation with future knowledge lower-bounds all
        other schemes (paper Fig. 9b)."""
        ctx, trace = setup
        static = StaticOracle().evaluate(trace, ctx)
        dyn = evaluate_dynamic_oracle(trace, ctx, max_rounds=2)
        assert dyn.energy_per_request_j < static.energy_per_request_j

    def test_schedule_on_grid(self, setup):
        ctx, trace = setup
        freqs = dynamic_oracle_schedule(trace, ctx, max_rounds=1)
        assert set(np.unique(freqs)).issubset(set(ctx.dvfs.frequencies))

    def test_infeasible_requests_at_max(self):
        """At very high load, late requests get max frequency."""
        ctx = make_context(MASSTREE, 5, 1200)
        trace = Trace.generate_at_load(MASSTREE, 1.2, 1200, 5)
        freqs = dynamic_oracle_schedule(trace, ctx, max_rounds=0)
        assert (freqs == ctx.dvfs.max_hz).any()

"""Tests for the Pegasus feedback baseline."""

import pytest

from repro.experiments.common import make_context
from repro.schemes.pegasus import Pegasus
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE


class TestPegasus:
    def test_starts_at_max(self):
        ctx = make_context(MASSTREE, 5, 2000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 2000, 5)
        run = run_trace(trace, Pegasus(), ctx, record_freq_history=True)
        assert run.freq_history[1][1] == ctx.dvfs.max_hz

    def test_steps_down_at_low_load(self):
        """With latency comfortably under the bound, the controller
        lowers frequency over time."""
        ctx = make_context(MASSTREE, 5, 6000)
        trace = Trace.generate_at_load(MASSTREE, 0.2, 6000, 5)
        scheme = Pegasus(adjust_period_s=0.2)
        run = run_trace(trace, scheme, ctx, record_freq_history=True)
        final_freqs = [f for t, f in run.freq_history if t > run.duration_s / 2]
        assert final_freqs and min(final_freqs) < ctx.dvfs.nominal_hz
        assert scheme.adjustments > 3

    def test_keeps_tail_reasonable(self):
        ctx = make_context(MASSTREE, 5, 6000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 6000, 5)
        run = run_trace(trace, Pegasus(adjust_period_s=0.2), ctx)
        # Feedback-only control tracks the bound loosely.
        assert run.tail_latency() <= ctx.latency_bound_s * 1.5

    def test_coarse_adaptation_slower_than_rubik(self):
        """Pegasus adjusts orders of magnitude less often than Rubik."""
        from repro.core.controller import Rubik

        ctx = make_context(MASSTREE, 5, 4000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 4000, 5)
        peg_run = run_trace(trace, Pegasus(adjust_period_s=0.2), ctx)
        rub_run = run_trace(trace, Rubik(), ctx)
        assert peg_run.dvfs_transitions < rub_run.dvfs_transitions / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            Pegasus(window_s=0)
        with pytest.raises(ValueError):
            Pegasus(step_down_margin=2.0)


class TestPegasusPowerTelemetry:
    def test_power_log_records_window_means(self):
        from repro.experiments.common import make_context
        from repro.sim.server import run_trace
        from repro.sim.trace import Trace
        from repro.workloads.apps import MASSTREE

        ctx = make_context(MASSTREE, 5, 6000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 6000, 5)
        scheme = Pegasus(adjust_period_s=0.2)
        run = run_trace(trace, scheme, ctx)
        # One power sample per adjustment, all positive and bounded by
        # the run's own extremes.
        assert len(scheme.power_log) == scheme.adjustments
        assert scheme.power_log
        times = [t for t, _ in scheme.power_log]
        assert times == sorted(times)
        for _, watts in scheme.power_log:
            assert 0.0 < watts < 50.0

    def test_midrun_flushes_do_not_perturb_energy(self):
        """The flush-hook contract: Pegasus's mid-run meter reads must
        leave the final energy bitwise-identical to a scheme-free run's
        accounting invariants (energy = sum of state components)."""
        from repro.experiments.common import make_context
        from repro.sim.server import run_trace
        from repro.sim.trace import Trace
        from repro.workloads.apps import MASSTREE

        ctx = make_context(MASSTREE, 5, 3000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 3000, 5)
        run = run_trace(trace, Pegasus(adjust_period_s=0.2), ctx)
        assert run.energy_j == pytest.approx(
            run.active_energy_j + run.idle_energy_j, rel=1e-12)

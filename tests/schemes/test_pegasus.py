"""Tests for the Pegasus feedback baseline."""

import pytest

from repro.experiments.common import make_context
from repro.schemes.pegasus import Pegasus
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE


class TestPegasus:
    def test_starts_at_max(self):
        ctx = make_context(MASSTREE, 5, 2000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 2000, 5)
        run = run_trace(trace, Pegasus(), ctx)
        assert run.freq_history[1][1] == ctx.dvfs.max_hz

    def test_steps_down_at_low_load(self):
        """With latency comfortably under the bound, the controller
        lowers frequency over time."""
        ctx = make_context(MASSTREE, 5, 6000)
        trace = Trace.generate_at_load(MASSTREE, 0.2, 6000, 5)
        scheme = Pegasus(adjust_period_s=0.2)
        run = run_trace(trace, scheme, ctx)
        final_freqs = [f for t, f in run.freq_history if t > run.duration_s / 2]
        assert final_freqs and min(final_freqs) < ctx.dvfs.nominal_hz
        assert scheme.adjustments > 3

    def test_keeps_tail_reasonable(self):
        ctx = make_context(MASSTREE, 5, 6000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 6000, 5)
        run = run_trace(trace, Pegasus(adjust_period_s=0.2), ctx)
        # Feedback-only control tracks the bound loosely.
        assert run.tail_latency() <= ctx.latency_bound_s * 1.5

    def test_coarse_adaptation_slower_than_rubik(self):
        """Pegasus adjusts orders of magnitude less often than Rubik."""
        from repro.core.controller import Rubik

        ctx = make_context(MASSTREE, 5, 4000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 4000, 5)
        peg_run = run_trace(trace, Pegasus(adjust_period_s=0.2), ctx)
        rub_run = run_trace(trace, Rubik(), ctx)
        assert peg_run.dvfs_transitions < rub_run.dvfs_transitions / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            Pegasus(window_s=0)
        with pytest.raises(ValueError):
            Pegasus(step_down_margin=2.0)

"""Artifact-store tests: fingerprint axes, env gates, on-disk
semantics (corruption, atomicity, invalidation), ``run_cells``
hit/miss behaviour, and the PR acceptance pins — a warm regeneration
recomputes zero cells bitwise-identically, and bumping one driver's
version tag recomputes exactly that driver's cells.
"""

import dataclasses
import pickle
import threading
import warnings

import numpy as np
import pytest

from repro.experiments import artifacts, configs, runner
from repro.experiments.artifacts import (
    ArtifactStore,
    activate,
    active_store,
    artifact_dir,
    cache_mode,
    canonical,
    cell_fingerprint,
    default_store,
)
from repro.experiments.common import make_cells, run_cells
from repro.workloads.apps import MASSTREE

N = 300  # tiny but queueing-meaningful


def _fn(args):
    """Deterministic module-level cell worker for store tests."""
    x, y = args
    return {"sum": x + y, "arr": np.arange(3) * x}


def _other_fn(args):
    x, y = args
    return x - y


class TestFingerprint:
    def test_deterministic(self):
        a = cell_fingerprint("d", "1", _fn, (1, 2.5))
        b = cell_fingerprint("d", "1", _fn, (1, 2.5))
        assert a == b and len(a) == 64

    @pytest.mark.parametrize("kwargs", [
        dict(driver="e"),
        dict(version="2"),
        dict(fn=_other_fn),
        dict(args=(1, 2.6)),
    ])
    def test_every_axis_changes_it(self, kwargs):
        base = dict(driver="d", version="1", fn=_fn, args=(1, 2.5))
        assert cell_fingerprint(**base) != cell_fingerprint(**{
            **base, **kwargs})

    def test_int_float_and_type_distinctions(self):
        assert canonical(1) != canonical(1.0)
        assert canonical(True) != canonical(1)
        assert canonical((1, 2)) != canonical([1, 2])
        assert canonical("1") != canonical(1)

    def test_float_canonical_is_exact(self):
        a = canonical(0.1 + 0.2)
        b = canonical(0.3)
        assert a != b  # repr would round these together at low precision

    def test_ndarray_content_and_dtype(self):
        x = np.arange(4, dtype=np.float64)
        assert canonical(x) == canonical(x.copy())
        assert canonical(x) != canonical(x.astype(np.float32))
        assert canonical(x) != canonical(x + 1)

    def test_dataclass_fields_recurse(self):
        app2 = dataclasses.replace(MASSTREE, mem_fraction=0.999)
        assert canonical(MASSTREE) == canonical(
            dataclasses.replace(MASSTREE))
        assert canonical(MASSTREE) != canonical(app2)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            canonical(object())

    def test_unknown_type_inside_tuple_raises(self):
        with pytest.raises(TypeError):
            cell_fingerprint("d", "1", _fn, (1, object()))


class TestEnvGates:
    @pytest.mark.parametrize("raw", ["", "-3", "abc"])
    def test_invalid_cache_mode_warns_once_reads_auto(self, raw,
                                                      monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, raw)
        with pytest.warns(RuntimeWarning, match="REPRO_ARTIFACT_CACHE"):
            assert cache_mode() == "auto"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache_mode() == "auto"  # second read: no re-warn

    @pytest.mark.parametrize("raw,expect", [
        ("0", "0"), ("1", "1"), ("auto", "auto"),
        (" 1 ", "1"), ("AUTO", "auto"),
    ])
    def test_valid_cache_modes(self, raw, expect, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, raw)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache_mode() == expect

    def test_unset_cache_mode_is_auto(self):
        assert cache_mode() == "auto"

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_empty_artifact_dir_warns_once_uses_default(self, raw,
                                                        monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, raw)
        with pytest.warns(RuntimeWarning, match="REPRO_ARTIFACT_DIR"):
            assert artifact_dir() == \
                artifacts.Path(artifacts.DEFAULT_ARTIFACT_DIR)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            artifact_dir()

    @pytest.mark.parametrize("raw", ["abc", "-3"])
    def test_odd_but_valid_artifact_dirs(self, raw, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, raw)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert str(artifact_dir()) == raw

    def test_mode_zero_beats_activation(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, "0")
        with activate():
            assert active_store() is None

    def test_mode_one_enables_without_activation(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, "1")
        assert active_store() is default_store()

    def test_auto_defers_to_activation(self):
        assert active_store() is None
        with activate() as store:
            assert active_store() is store
        assert active_store() is None


class TestStoreSemantics:
    def test_roundtrip_bitwise(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        value = {"f": 0.1 + 0.2, "arr": np.linspace(0, 1, 7)}
        fp = cell_fingerprint("d", "1", _fn, (1, 2.0))
        store.put("d", fp, value)
        found, loaded = store.get("d", fp)
        assert found
        assert loaded["f"] == value["f"]  # bitwise float equality
        np.testing.assert_array_equal(loaded["arr"], value["arr"])
        assert store.stats()["puts"] == 1 and store.stats()["hits"] == 1

    def test_missing_counts_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        found, value = store.get("d", "0" * 64)
        assert not found and value is None
        assert store.misses == 1 and store.errors == 0

    def test_corrupt_artifact_warns_once_deletes_recomputes(self,
                                                            tmp_path):
        store = ArtifactStore(tmp_path / "s")
        fp = "a" * 64
        store.put("d", fp, 42)
        path = store.path_for("d", fp)
        path.write_bytes(b"not a pickle at all")
        with pytest.warns(RuntimeWarning, match="corrupt artifact"):
            found, _ = store.get("d", fp)
        assert not found
        assert not path.exists()  # deleted, so a recompute can re-put
        assert store.errors == 1
        # Same path corrupted again: counted, but not re-warned.
        store.put("d", fp, 42)
        path.write_bytes(b"garbage again")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            found, _ = store.get("d", fp)
        assert not found and store.errors == 2
        # After recompute the cell serves normally.
        store.put("d", fp, 42)
        assert store.get("d", fp) == (True, 42)

    def test_truncated_artifact_is_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        fp = "b" * 64
        store.put("d", fp, {"k": 1})
        path = store.path_for("d", fp)
        with open(path, "wb") as fh:
            pickle.dump({"driver": "d"}, fh)  # header only, no payload
        with pytest.warns(RuntimeWarning, match="corrupt artifact"):
            found, _ = store.get("d", fp)
        assert not found and not path.exists()

    def test_invalidate_exactly_one_driver(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        for driver in ("d1", "d2"):
            for i in range(3):
                store.put(driver, f"{i}{'c' * 63}", i)
        assert store.cached_cells() == 6
        assert store.invalidate("d1") == 3
        assert store.cached_cells("d1") == 0
        assert store.cached_cells("d2") == 3
        assert store.invalidate("missing") == 0

    def test_manifest_reads_headers_without_payloads(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        fp = "d" * 64
        store.put("drv", fp, [1, 2, 3], meta={"version": "7"})
        entries = store.manifest()
        assert len(entries) == 1
        assert entries[0]["driver"] == "drv"
        assert entries[0]["fingerprint"] == fp
        assert entries[0]["version"] == "7"
        assert entries[0]["schema"] == artifacts.STORE_SCHEMA_VERSION

    def test_concurrent_put_get_never_tears(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        fp = "e" * 64
        value = {"arr": np.arange(512), "x": 0.12345}
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                store.put("d", fp, value)

        def reader():
            while not stop.is_set():
                found, got = store.get("d", fp)
                if found:
                    try:
                        assert got["x"] == value["x"]
                        np.testing.assert_array_equal(
                            got["arr"], value["arr"])
                    except AssertionError as exc:  # pragma: no cover
                        failures.append(exc)
                        stop.set()

        threads = [threading.Thread(target=writer) for _ in range(2)] + \
                  [threading.Thread(target=reader) for _ in range(4)]
        with warnings.catch_warnings():
            # A torn read would also surface as a corrupt-artifact warning.
            warnings.simplefilter("error")
            for t in threads:
                t.start()
            timer = threading.Timer(1.0, stop.set)
            timer.start()
            for t in threads:
                t.join()
            timer.cancel()
        assert not failures
        assert store.errors == 0
        assert store.get("d", fp)[0]


def _assert_fn_results(actual, items):
    assert len(actual) == len(items)
    for got, args in zip(actual, items):
        expected = _fn(args)
        assert got["sum"] == expected["sum"]
        np.testing.assert_array_equal(got["arr"], expected["arr"])


class TestStaleTmpSweep:
    """Satellite: orphaned ``.*.tmp`` staging files (a writer SIGKILLed
    between tmp-write and rename) are swept at store open."""

    def _orphan(self, root, driver="fig06", age_s=3600.0, name=None):
        d = root / driver
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / (name or ".deadbeef.1234.0.tmp")
        tmp.write_bytes(b"torn")
        import os
        old = tmp.stat().st_mtime - age_s
        os.utime(tmp, (old, old))
        return tmp

    def test_old_orphans_swept_warned_and_counted(self, tmp_path):
        root = tmp_path / "store"
        a = self._orphan(root, "fig06")
        b = self._orphan(root, "fig09", name=".cafe.99.1.tmp")
        with pytest.warns(RuntimeWarning, match="2 orphaned"):
            store = ArtifactStore(root)
        assert not a.exists() and not b.exists()
        assert store.stats()["stale_tmps_removed"] == 2

    def test_fresh_tmp_left_for_live_writer(self, tmp_path):
        root = tmp_path / "store"
        tmp = self._orphan(root, age_s=0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = ArtifactStore(root)
        assert tmp.exists()
        assert store.stats()["stale_tmps_removed"] == 0

    def test_sweep_never_touches_real_artifacts(self, tmp_path):
        root = tmp_path / "store"
        store = ArtifactStore(root)
        store.put("fig06", "a" * 16, {"v": 1})
        self._orphan(root)
        with pytest.warns(RuntimeWarning, match="orphaned"):
            reopened = ArtifactStore(root)
        found, value = reopened.get("fig06", "a" * 16)
        assert found and value == {"v": 1}


class TestRunCells:
    ITEMS = [(1, 2.0), (3, 4.0), (5, 6.0)]

    def test_inactive_store_is_plain_map(self):
        out = run_cells("table1", _fn, self.ITEMS, processes=1)
        _assert_fn_results(out, self.ITEMS)
        assert default_store().cached_cells() == 0  # nothing written

    def test_cold_then_warm(self):
        with activate() as store:
            cold = run_cells("table1", _fn, self.ITEMS, processes=1)
            assert (store.hits, store.misses, store.puts) == (0, 3, 3)
            store.reset_stats()
            warm = run_cells("table1", _fn, self.ITEMS, processes=1)
            assert (store.hits, store.misses, store.puts) == (3, 0, 0)
        for c, w in zip(cold, warm):
            assert c["sum"] == w["sum"]
            np.testing.assert_array_equal(c["arr"], w["arr"])

    def test_partial_miss_dispatches_only_misses(self):
        with activate() as store:
            run_cells("table1", _fn, self.ITEMS[:2], processes=1)
            store.reset_stats()
            out = run_cells("table1", _fn, self.ITEMS, processes=1)
            assert (store.hits, store.misses, store.puts) == (2, 1, 1)
        _assert_fn_results(out, self.ITEMS)

    def test_env_force_enable_without_activation(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, "1")
        run_cells("table1", _fn, self.ITEMS, processes=1)
        assert default_store().cached_cells("table1") == 3

    def test_env_force_disable_under_activation(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_CACHE_ENV, "0")
        with activate():
            run_cells("table1", _fn, self.ITEMS, processes=1)
        assert default_store().cached_cells() == 0

    def test_distinct_args_are_distinct_cells(self):
        cells = make_cells("table1", _fn, self.ITEMS)
        assert len({c.fingerprint for c in cells}) == len(self.ITEMS)


class TestColdWarmRegenerate:
    """The PR acceptance pins, on the real drivers at reduced scale."""

    DRIVERS = ["fig06", "table1", "ablations"]

    def test_warm_recomputes_zero_cells_bitwise(self):
        store = default_store()
        cold = runner.regenerate(self.DRIVERS, num_requests=N,
                                 processes=1, use_cache=True)
        cold_stats = store.stats()
        assert cold_stats["hits"] == 0
        assert cold_stats["puts"] == cold_stats["misses"] > 0
        store.reset_stats()
        warm = runner.regenerate(self.DRIVERS, num_requests=N,
                                 processes=1, use_cache=True)
        warm_stats = store.stats()
        assert warm_stats["misses"] == 0 and warm_stats["puts"] == 0
        assert warm_stats["hits"] == cold_stats["puts"]
        assert warm == cold  # report strings identical char-for-char

    def test_version_bump_recomputes_exactly_that_driver(self,
                                                         monkeypatch):
        store = default_store()
        runner.regenerate(["table1", "ablations"], num_requests=N,
                          processes=1, use_cache=True)
        bumped = dataclasses.replace(configs.CONFIGS["table1"],
                                     version="test-bump")
        monkeypatch.setitem(configs.CONFIGS, "table1", bumped)
        store.reset_stats()
        runner.regenerate(["table1", "ablations"], num_requests=N,
                          processes=1, use_cache=True)
        per = store.stats()["per_driver"]
        assert per["table1"]["misses"] > 0
        assert per["table1"]["hits"] == 0
        assert per["ablations"]["misses"] == 0
        assert per["ablations"]["hits"] > 0

    def test_refresh_invalidates_exactly_named_driver(self):
        store = default_store()
        runner.regenerate(["table1", "ablations"], num_requests=N,
                          processes=1, use_cache=True)
        store.reset_stats()
        runner.regenerate(["table1", "ablations"], num_requests=N,
                          processes=1, use_cache=True,
                          refresh=["table1"])
        per = store.stats()["per_driver"]
        assert per["table1"]["misses"] > 0 and per["table1"]["hits"] == 0
        assert per["ablations"]["misses"] == 0

    def test_no_cache_regenerate_writes_nothing(self):
        runner.regenerate(["table1"], num_requests=N, processes=1,
                          use_cache=False)
        assert default_store().cached_cells() == 0


class TestCacheCLI:
    def test_cli_cold_then_warm_counters(self, capsys):
        assert runner.main(["table1", "-n", str(N)]) == 0
        out = capsys.readouterr().out
        assert "0 hits, 5 misses" in out
        assert runner.main(["table1", "-n", str(N)]) == 0
        out = capsys.readouterr().out
        assert "5 hits, 0 misses" in out

    def test_cli_no_cache_writes_nothing(self, capsys):
        assert runner.main(["table1", "-n", str(N), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "artifact-cache" not in out
        assert default_store().cached_cells() == 0

    def test_cli_refresh_only_named_driver(self, capsys):
        runner.main(["table1", "ablations", "-n", str(N)])
        capsys.readouterr()
        assert runner.main(["table1", "ablations", "-n", str(N),
                            "--refresh", "table1"]) == 0
        out = capsys.readouterr().out
        # table1's 5 cells recompute; ablations' 9 replay as hits.
        assert "9 hits, 5 misses" in out

    def test_cli_refresh_unknown_name_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["table1", "--refresh", "fig99"])
        assert excinfo.value.code == 2
        assert "fig99" in capsys.readouterr().err

    def test_cli_list_shows_cached_counts(self, capsys):
        runner.main(["table1", "-n", str(N)])
        capsys.readouterr()
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith("table1"):
                assert "[  5 cached]" in line
                break
        else:  # pragma: no cover
            pytest.fail("table1 missing from --list output")

"""Smoke/shape tests for the ablation experiment."""

import pytest

from repro.experiments import ablations


@pytest.fixture(scope="module")
def result():
    return ablations.run_ablations(num_requests=2500, seed=3)


class TestAblations:
    def test_all_variants_present(self, result):
        expected = {
            "Rubik (paper config)", "no feedback", "quartile rows",
            "single row (no conditioning)", "CLT after 4 columns",
            "1 s table refresh", "Pegasus (feedback only)",
            "StaticOracle (reference)",
        }
        assert set(result.rows) == expected

    def test_rubik_variants_hold_bound(self, result):
        for name, vals in result.rows.items():
            if "Pegasus" in name:
                continue
            assert vals["violations"] <= 0.08, name

    def test_feedback_adds_savings(self, result):
        assert result.rows["Rubik (paper config)"]["savings"] >= \
            result.rows["no feedback"]["savings"] - 0.02

    def test_no_feedback_conservative_tail(self, result):
        assert result.rows["no feedback"]["tail_ratio"] <= \
            result.rows["Rubik (paper config)"]["tail_ratio"] + 0.02

    def test_table_renders(self, result):
        assert "ablations" in result.table().lower()

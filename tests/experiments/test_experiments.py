"""Smoke + shape tests for every experiment module (small configs).

Each test runs the experiment at reduced scale and checks structural
invariants and the paper's qualitative claims, not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig01_intro,
    fig02_variability,
    fig06_power_savings,
    fig07_fig08_cdfs,
    fig09_load_sweep,
    fig10_load_steps,
    fig11_real_system,
    fig12_system_power,
    fig15_coloc_tails,
    fig16_datacenter,
    table1_correlations,
)
from repro.experiments.common import (
    compare_schemes,
    latency_bound,
    make_context,
    training_traces,
)
from repro.workloads.apps import MASSTREE

N = 1500  # small but queueing-meaningful


class TestCommon:
    def test_bound_positive_and_seed_dependent(self):
        b1 = latency_bound(MASSTREE, 1, N)
        b2 = latency_bound(MASSTREE, 2, N)
        assert b1 > 0 and b2 > 0
        assert b1 != b2

    def test_make_context(self):
        ctx = make_context(MASSTREE, 1, N)
        assert ctx.app is MASSTREE
        assert ctx.latency_bound_s == latency_bound(MASSTREE, 1, N)

    def test_training_traces_disjoint_seeds(self):
        traces, bounds = training_traces(MASSTREE, 0.3, 1, N, count=2)
        assert len(traces) == 2 and len(bounds) == 2
        assert not np.array_equal(traces[0].arrivals, traces[1].arrivals)

    def test_compare_schemes_keys(self):
        pts = compare_schemes(MASSTREE, 0.3, seeds=(1,), num_requests=N)
        assert set(pts) == {"StaticOracle", "AdrenalineOracle", "Rubik"}
        for p in pts.values():
            assert -1.0 < p.power_savings < 1.0


class TestFig1:
    def test_fig1a_rubik_beats_static(self):
        res = fig01_intro.run_fig1a(num_requests=N, seed=3)
        assert all(r < s for r, s in
                   zip(res.rubik_mj, res.static_oracle_mj))
        assert "Fig. 1a" in res.table()

    def test_fig1b_series_produced(self):
        res = fig01_intro.run_fig1b(num_requests=2500, seed=3)
        assert len(res.rubik_window_times) > 3
        assert len(res.freq_times) > 2
        assert res.bound_ms > 0


class TestFig2:
    def test_fig2a_variability_range(self):
        res = fig02_variability.run_fig2a(num_requests=3000)
        for vals in res.per_app.values():
            assert vals[0] < 1.0 < vals[-1]  # p10 < mean < p99

    def test_fig2b_panels(self):
        res = fig02_variability.run_fig2b(num_requests=3000)
        assert len(res.times) > 2
        assert np.all(res.queue_len >= 0)

    def test_fig2c_monotone_in_load(self):
        res = fig02_variability.run_fig2c(num_requests=3000,
                                          loads=(0.2, 0.5))
        for vals in res.per_app.values():
            assert vals[1] > vals[0]

    def test_queue_length_helper(self):
        arr = np.array([0.0, 0.1, 0.2])
        resp = np.array([0.25, 0.3, 0.3])
        q = fig02_variability.queue_length_at_arrivals(arr, resp)
        assert q[0] == 0 and q[1] == 1


class TestTable1:
    def test_queue_correlation_dominates(self):
        res = table1_correlations.run_table1(num_requests=3000)
        for name, (svc, qps, queue) in res.per_app.items():
            assert queue > 0.5, name
            assert queue > qps, name

    def test_masstree_service_uninformative(self):
        res = table1_correlations.run_table1(num_requests=3000)
        svc, _, queue = res.per_app["masstree"]
        assert svc < 0.3 and queue > 0.8


class TestFig6:
    def test_matrix_shape_and_claims(self):
        res = fig06_power_savings.run_fig6(
            num_requests=N, seeds=(3,), loads=(0.3, 0.5),
            apps=("masstree",))
        cell50 = res.savings["masstree"][0.5]
        assert cell50["StaticOracle"] == pytest.approx(0.0, abs=0.02)
        assert cell50["Rubik"] > 0.05
        assert "Fig. 6" in res.table()


class TestFig7Fig8:
    def test_rubik_shifts_low_end_right(self):
        res = fig07_fig08_cdfs.run_fig7(num_requests=2500, seed=3)
        rubik = res.cdf_quantiles_ms["Rubik"]
        static = res.cdf_quantiles_ms["StaticOracle"]
        assert rubik[0] > static[0]  # p5 moved right (slower short reqs)

    def test_rubik_low_frequency_residency(self):
        res = fig07_fig08_cdfs.run_fig7(num_requests=2500, seed=3)
        low = sum(frac for f, frac in res.rubik_freq_hist.items()
                  if f <= 1.4e9)
        assert low > 0.3


class TestFig9:
    def test_sweep_shapes(self):
        res = fig09_load_sweep.run_load_sweep(
            "masstree", loads=(0.3, 0.5), num_requests=N, seed=3)
        # Fixed tail grows with load; adaptive schemes stay near bound.
        assert res.tail_ms["Fixed"][1] > res.tail_ms["Fixed"][0]
        assert res.energy_mj["DynamicOracle"][0] <= \
            res.energy_mj["StaticOracle"][0] + 1e-9
        assert "Fig. 9a" in res.table()


class TestFig10:
    def test_rubik_adapts_to_step(self):
        res = fig10_load_steps.run_step_response(
            "masstree", seed=3, total_time_s=3.0)
        # After the 75% step, Rubik's worst window beats StaticOracle's.
        rubik_worst = res.max_tail_after_step("Rubik")
        static_worst = res.max_tail_after_step("StaticOracle")
        assert rubik_worst < static_worst


class TestFig11:
    def test_real_system_savings(self):
        res = fig11_real_system.run_fig11(num_requests=N)
        assert res.rubik_meets_bound
        # moses (long requests) keeps a clear Rubik edge at 30% load.
        m = res.savings["moses"][0.3]
        assert m["Rubik"] > m["StaticOracle"]

    def test_variant_profile(self):
        from repro.workloads.apps import MASSTREE as M
        v = fig11_real_system.real_system_variant(M)
        assert v.mem_fraction < M.mem_fraction
        assert v.service_cv > M.service_cv


class TestFig12:
    def test_system_savings_modest(self):
        res = fig12_system_power.run_fig12(num_requests=N)
        for name in res.per_app:
            assert res.per_app[name] < res.core_savings[name]
            assert 0.0 < res.per_app[name] < 0.3


class TestFig15:
    def test_coloc_distribution(self):
        res = fig15_coloc_tails.run_fig15(
            num_mixes=1, apps=("masstree",), requests_per_core=600)
        assert res.worst("HW-TPW") > res.worst("RubikColoc")
        assert res.violation_fraction("RubikColoc") <= 0.34
        assert "Fig. 15" in res.table()


class TestFig16:
    def test_datacenter_curves(self):
        res = fig16_datacenter.run_fig16(
            loads=(0.1, 0.5), num_mixes=1, requests_per_core=400)
        # Colocation reduces both power and servers, more at low load.
        assert res.comparisons[0].server_reduction > \
            res.comparisons[1].server_reduction
        assert res.comparisons[0].power_reduction > 0.1
        assert "Fig. 16" in res.table()

    @staticmethod
    def _comparison(load, power):
        from repro.coloc.datacenter import (
            DatacenterComparison,
            DatacenterPoint,
        )

        def point(scale):
            return DatacenterPoint(
                lc_load=load, lc_server_power_w=power * scale,
                batch_server_power_w=60.0, num_lc_servers=1000,
                num_batch_servers=1000)

        return DatacenterComparison(segregated=point(1.0),
                                    colocated=point(0.8))

    def test_norm_uses_max_load_not_last_position(self):
        # Regression (same bug class as the PR 3 Fig6Result fix): with
        # unsorted loads the normalization reference used to be
        # whatever comparison sat last, silently rescaling every
        # column. It must be the highest-load segregated point.
        high = self._comparison(0.6, 90.0)
        low = self._comparison(0.1, 40.0)
        unsorted = fig16_datacenter.Fig16Result(
            loads=(0.6, 0.1), comparisons=[high, low])
        assert unsorted._norm() == (high.segregated.total_power_w,
                                    high.segregated.total_servers)
        # Sorted subset: same reference, independent of position.
        subset = fig16_datacenter.Fig16Result(
            loads=(0.1, 0.6), comparisons=[low, high])
        assert subset._norm() == unsorted._norm()

    def test_run_fig16_defaults_match_driver_config(self, monkeypatch):
        # run_fig16's cells and direct compare_datacenters calls must
        # both resolve (num_mixes, requests_per_core) from
        # CONFIGS["fig16"] (they used to disagree: 3/800 vs 4/1200).
        from repro.experiments.configs import CONFIGS

        captured = {}

        def fake_run_cells(driver, fn, items, processes=None):
            captured["items"] = items
            return [self._comparison(load, 50.0)
                    for load, *_ in items]

        monkeypatch.setattr(fig16_datacenter, "run_cells",
                            fake_run_cells)
        fig16_datacenter.run_fig16(loads=(0.1, 0.2))
        config = CONFIGS["fig16"]
        for load, seed, num_mixes, rpc in captured["items"]:
            assert num_mixes == config.extra("num_mixes")
            assert rpc == config.extra("default_requests_per_core")

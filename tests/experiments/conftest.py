"""Experiment-test fixtures: isolate the artifact store per test.

The regenerate CLI activates the env-resolved artifact store by
default, so any test driving ``runner.main``/``regenerate`` from the
repo root would otherwise write into a shared ``.repro-artifacts/``
and leak state between tests (and onto the developer's disk). Every
test in this package gets a fresh per-test store root and a clean
cache-mode env instead.
"""

import pytest

from repro.experiments import artifacts


@pytest.fixture(autouse=True)
def isolated_artifact_store(tmp_path, monkeypatch):
    """Point REPRO_ARTIFACT_DIR at a per-test temp root and reset the
    module's warn-once / memoization state."""
    root = tmp_path / "artifacts"
    monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, str(root))
    monkeypatch.delenv(artifacts.ARTIFACT_CACHE_ENV, raising=False)
    monkeypatch.setattr(artifacts, "_warned_env_values", set())
    monkeypatch.setattr(artifacts, "_warned_corrupt_paths", set())
    monkeypatch.setattr(artifacts, "_default_stores", {})
    monkeypatch.setattr(artifacts, "_active_store", None)
    yield root

"""Unified-runner tests: serial-vs-parallel bitwise equivalence for the
ported drivers (fig06, ablations, table1 since PR 3; fig01, fig02,
fig10, fig11, fig12 since PR 5), the experiment registry/CLI, and the
memoized latency bound.

Mirrors the contract of ``tests/core/test_fastpath_equivalence.py``:
fanning points out over worker processes (forced ``processes=2`` — the
CI container has one CPU) must reproduce the serial outputs exactly,
not approximately.
"""

import numpy as np
import pytest

from repro.core.table_cache import TABLE_CACHE
from repro.experiments import runner
from repro.experiments.ablations import run_ablations
from repro.experiments.common import latency_bound
from repro.experiments.fig01_intro import run_fig1a
from repro.experiments.fig02_variability import run_fig2a, run_fig2c
from repro.experiments.fig06_power_savings import run_fig6
from repro.experiments.fig10_load_steps import run_fig10
from repro.experiments.fig11_real_system import run_fig11
from repro.experiments.fig12_system_power import run_fig12
from repro.experiments.table1_correlations import run_table1
from repro.perf import WorkerPool, pools_created
from repro.perf.parallel import MAX_WORKERS_ENV
from repro.workloads.apps import MASSTREE

N = 400  # tiny but queueing-meaningful


class TestBitwiseEquivalence:
    def test_fig6_pool_equals_serial(self):
        kwargs = dict(num_requests=N, seeds=(3, 4), loads=(0.3,),
                      apps=("masstree",))
        serial = run_fig6(processes=1, **kwargs)
        pooled = run_fig6(processes=2, **kwargs)
        assert pooled.savings == serial.savings  # dict ==: bitwise floats
        assert pooled.loads == serial.loads
        assert pooled.schemes == serial.schemes

    def test_fig6_serial_forced_by_env(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        before = pools_created()
        res = run_fig6(num_requests=N, seeds=(3,), loads=(0.3,),
                       apps=("masstree",), processes=2)
        assert pools_created() == before  # env cap wins over explicit
        assert "masstree" in res.savings

    def test_ablations_pool_equals_serial(self):
        serial = run_ablations(num_requests=N, seed=3, processes=1)
        pooled = run_ablations(num_requests=N, seed=3, processes=2)
        assert pooled.rows == serial.rows
        assert pooled.bound_ms == serial.bound_ms

    def test_table1_pool_equals_serial(self):
        serial = run_table1(num_requests=N, seed=7, processes=1)
        pooled = run_table1(num_requests=N, seed=7, processes=2)
        assert pooled.per_app == serial.per_app

    def test_fig1a_pool_equals_serial(self):
        serial = run_fig1a(num_requests=N, processes=1)
        pooled = run_fig1a(num_requests=N, processes=2)
        assert pooled.static_oracle_mj == serial.static_oracle_mj
        assert pooled.rubik_mj == serial.rubik_mj
        assert pooled.loads == serial.loads

    def test_fig2a_fig2c_pool_equals_serial(self):
        serial_a = run_fig2a(num_requests=N, processes=1)
        pooled_a = run_fig2a(num_requests=N, processes=2)
        assert pooled_a.per_app == serial_a.per_app
        assert list(pooled_a.per_app) == list(serial_a.per_app)
        kwargs = dict(num_requests=N, loads=(0.3, 0.6))
        serial_c = run_fig2c(processes=1, **kwargs)
        pooled_c = run_fig2c(processes=2, **kwargs)
        assert pooled_c.per_app == serial_c.per_app
        assert pooled_c.loads == serial_c.loads

    def test_fig10_pool_equals_serial(self):
        kwargs = dict(apps=("masstree", "xapian"), num_requests=250)
        serial = run_fig10(processes=1, **kwargs)
        pooled = run_fig10(processes=2, **kwargs)
        assert list(pooled) == list(serial)
        for name in serial:
            s, p = serial[name], pooled[name]
            assert p.bound_ms == s.bound_ms
            assert list(p.tail_series_ms) == list(s.tail_series_ms)
            for scheme in s.tail_series_ms:
                for ps, ss in ((p.tail_series_ms[scheme],
                                s.tail_series_ms[scheme]),
                               (p.power_series_w[scheme],
                                s.power_series_w[scheme])):
                    np.testing.assert_array_equal(ps[0], ss[0])
                    np.testing.assert_array_equal(ps[1], ss[1])
            np.testing.assert_array_equal(p.rubik_freq[0], s.rubik_freq[0])
            np.testing.assert_array_equal(p.rubik_freq[1], s.rubik_freq[1])

    def test_fig11_pool_equals_serial(self):
        serial = run_fig11(num_requests=N, processes=1)
        pooled = run_fig11(num_requests=N, processes=2)
        assert pooled.savings == serial.savings
        assert pooled.rubik_meets_bound == serial.rubik_meets_bound

    def test_fig12_pool_equals_serial(self):
        serial = run_fig12(num_requests=N, processes=1)
        pooled = run_fig12(num_requests=N, processes=2)
        assert pooled.per_app == serial.per_app
        assert pooled.core_savings == serial.core_savings

    def test_drivers_under_one_shared_pool_equal_serial(self):
        """The regenerate-all shape: several drivers inside one
        WorkerPool share a single pool and still match serial runs."""
        serial = (run_table1(num_requests=N, seed=7, processes=1).per_app,
                  run_ablations(num_requests=N, seed=3, processes=1).rows)
        before = pools_created()
        with WorkerPool(processes=2):
            t = run_table1(num_requests=N, seed=7)
            a = run_ablations(num_requests=N, seed=3)
        assert pools_created() - before == 1
        assert t.per_app == serial[0]
        assert a.rows == serial[1]


class TestSharedTableCache:
    """The process-wide TailTableCache must be bitwise-invisible to the
    runner: a serial flow shares one cache across every point, a pooled
    flow gives each worker its own, and a fully warm cache replays the
    exact same decisions a cold one made."""

    def test_fig6_cold_warm_and_pool_all_equal(self):
        kwargs = dict(num_requests=N, seeds=(3, 4), loads=(0.3,),
                      apps=("masstree",))
        TABLE_CACHE.clear()
        cold = run_fig6(processes=1, **kwargs)
        warm = run_fig6(processes=1, **kwargs)   # all-hit serial rerun
        pooled = run_fig6(processes=2, **kwargs)  # per-worker caches
        assert warm.savings == cold.savings
        assert pooled.savings == cold.savings

    def test_ablations_warm_cache_equals_cold(self):
        TABLE_CACHE.clear()
        cold = run_ablations(num_requests=N, seed=3, processes=1)
        assert TABLE_CACHE.stats()["entries"] > 0
        warm = run_ablations(num_requests=N, seed=3, processes=1)
        pooled = run_ablations(num_requests=N, seed=3, processes=2)
        assert warm.rows == cold.rows
        assert pooled.rows == cold.rows


class TestFig6SubsetResult:
    def test_subset_schemes_do_not_keyerror(self):
        """Satellite fix: the result used to hardcode module-level
        SCHEMES in table()/mean_savings(), so subset runs blew up."""
        res = run_fig6(num_requests=N, seeds=(3,), loads=(0.3,),
                       apps=("masstree",), include=("Rubik",))
        assert res.schemes == ("Rubik",)
        assert res.loads == (0.3,)
        report = res.table()  # KeyError before the fix
        assert "Rubik" in report
        assert "StaticOracle" not in report
        assert res.mean_savings(0.3, "Rubik") == \
            res.savings["masstree"][0.3]["Rubik"]

    def test_one_app_one_load_run(self):
        res = run_fig6(num_requests=N, seeds=(3,), loads=(0.4,),
                       apps=("masstree",),
                       include=("StaticOracle", "Rubik"))
        assert set(res.savings) == {"masstree"}
        assert set(res.savings["masstree"]) == {0.4}
        assert "Fig. 6" in res.table()


class TestLatencyBoundMemo:
    def test_computed_once_per_key(self):
        latency_bound.cache_clear()
        b1 = latency_bound(MASSTREE, 3, 300)
        b2 = latency_bound(MASSTREE, 3, 300)
        assert b1 == b2
        info = latency_bound.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_distinct_keys_recompute(self):
        latency_bound.cache_clear()
        latency_bound(MASSTREE, 3, 300)
        latency_bound(MASSTREE, 4, 300)  # seed differs
        latency_bound(MASSTREE, 3, 301)  # num_requests differs
        assert latency_bound.cache_info().misses == 3


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        assert runner.experiment_names() == [
            "fig01", "fig02", "fig06", "fig07_08", "fig09", "fig10",
            "fig11", "fig12", "fig15", "fig16", "table1", "ablations",
            "fleet",
        ]

    def test_aliases_resolve_to_same_spec(self):
        assert runner.EXPERIMENTS["fig07"] is runner.EXPERIMENTS["fig07_08"]
        assert runner.EXPERIMENTS["fig08"] is runner.EXPERIMENTS["fig07_08"]

    def test_resolve_dedupes_and_orders(self):
        specs = runner.resolve(["table1", "fig06", "fig07", "fig08"])
        assert [s.name for s in specs] == ["fig06", "fig07_08", "table1"]

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            runner.resolve(["fig99"])

    def test_resolve_none_is_everything(self):
        assert [s.name for s in runner.resolve(None)] == \
            runner.experiment_names()


class TestRegenerateFlow:
    def test_regenerate_subset_through_one_pool(self, capsys):
        before = pools_created()
        reports = runner.regenerate(["table1", "ablations"],
                                    num_requests=N, processes=2)
        assert pools_created() - before <= 1
        assert list(reports) == ["table1", "ablations"]
        assert "Table 1" in reports["table1"]
        assert "ablations" in reports["ablations"].lower()
        # Reports were also printed, as the module main()s do.
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_regenerate_matches_standalone_runs(self):
        standalone = run_table1(num_requests=N, processes=1).table()
        reports = runner.regenerate(["table1"], num_requests=N,
                                    processes=2)
        assert reports["table1"] == standalone

    def test_cli_list(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in runner.experiment_names():
            assert name in out

    def test_cli_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["fig99"])
        assert excinfo.value.code == 2
        assert "fig99" in capsys.readouterr().err

    def test_cli_runs_named_experiment(self, capsys):
        assert runner.main(["table1", "-n", str(N)]) == 0
        out = capsys.readouterr().out
        assert "Regenerating: table1" in out
        assert "Table 1" in out

"""Tests for app profiles and demand sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.workloads.base import AppProfile, lognormal_params


def make_app(**kw):
    defaults = dict(name="t", mean_service_s=1e-3, service_cv=0.3,
                    mem_fraction=0.2, num_requests=100)
    defaults.update(kw)
    return AppProfile(**defaults)


class TestLognormalParams:
    def test_mean_recovered(self):
        mu, sigma = lognormal_params(5.0, 0.5)
        samples = np.random.default_rng(0).lognormal(mu, sigma, 100000)
        assert samples.mean() == pytest.approx(5.0, rel=0.02)

    def test_cv_recovered(self):
        mu, sigma = lognormal_params(5.0, 0.8)
        samples = np.random.default_rng(1).lognormal(mu, sigma, 200000)
        assert samples.std() / samples.mean() == pytest.approx(0.8, rel=0.05)

    def test_zero_cv(self):
        mu, sigma = lognormal_params(2.0, 0.0)
        assert sigma == 0.0
        assert np.exp(mu) == pytest.approx(2.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lognormal_params(0.0, 0.5)
        with pytest.raises(ValueError):
            lognormal_params(1.0, -0.1)


class TestSampling:
    def test_mean_service_time(self):
        app = make_app()
        rng = np.random.default_rng(2)
        cycles, mem = app.sample_demands(50000, rng)
        svc = cycles / NOMINAL_FREQUENCY_HZ + mem
        assert svc.mean() == pytest.approx(1e-3, rel=0.03)

    def test_service_cv(self):
        app = make_app(service_cv=0.5)
        rng = np.random.default_rng(3)
        cycles, mem = app.sample_demands(100000, rng)
        svc = cycles / NOMINAL_FREQUENCY_HZ + mem
        assert svc.std() / svc.mean() == pytest.approx(0.5, rel=0.1)

    def test_memory_fraction(self):
        app = make_app(mem_fraction=0.3)
        rng = np.random.default_rng(4)
        cycles, mem = app.sample_demands(50000, rng)
        svc = cycles / NOMINAL_FREQUENCY_HZ + mem
        assert mem.mean() / svc.mean() == pytest.approx(0.3, rel=0.05)

    def test_zero_memory_fraction(self):
        app = make_app(mem_fraction=0.0)
        rng = np.random.default_rng(5)
        _, mem = app.sample_demands(100, rng)
        assert np.all(mem == 0.0)

    def test_mixture_preserves_mean(self):
        app = make_app(long_fraction=0.05, long_scale=10.0)
        rng = np.random.default_rng(6)
        cycles, mem = app.sample_demands(200000, rng)
        svc = cycles / NOMINAL_FREQUENCY_HZ + mem
        assert svc.mean() == pytest.approx(1e-3, rel=0.05)

    def test_mixture_creates_heavy_tail(self):
        plain = make_app(service_cv=0.3)
        mixed = make_app(service_cv=0.3, long_fraction=0.05, long_scale=10.0)
        rng1, rng2 = np.random.default_rng(7), np.random.default_rng(7)
        c1, m1 = plain.sample_demands(50000, rng1)
        c2, m2 = mixed.sample_demands(50000, rng2)
        s1 = c1 / NOMINAL_FREQUENCY_HZ + m1
        s2 = c2 / NOMINAL_FREQUENCY_HZ + m2
        assert np.percentile(s2, 99.5) > 2 * np.percentile(s1, 99.5)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            make_app().sample_demands(0, np.random.default_rng(0))


class TestHints:
    def test_perfect_hints(self):
        app = make_app(hint_quality=1.0)
        rng = np.random.default_rng(8)
        cycles, _ = app.sample_demands(100, rng)
        predicted = app.predict_demands(cycles, rng)
        np.testing.assert_array_equal(predicted, cycles)

    def test_zero_quality_uncorrelated(self):
        app = make_app(hint_quality=0.0, service_cv=0.8)
        rng = np.random.default_rng(9)
        cycles, _ = app.sample_demands(20000, rng)
        predicted = app.predict_demands(cycles, rng)
        corr = np.corrcoef(np.log(cycles), np.log(predicted))[0, 1]
        assert abs(corr) < 0.05

    def test_partial_quality_partial_correlation(self):
        app = make_app(hint_quality=0.5, service_cv=0.8)
        rng = np.random.default_rng(10)
        cycles, _ = app.sample_demands(20000, rng)
        predicted = app.predict_demands(cycles, rng)
        corr = np.corrcoef(np.log(cycles), np.log(predicted))[0, 1]
        assert 0.2 < corr < 0.9


class TestRates:
    def test_saturation_qps(self):
        assert make_app().saturation_qps == pytest.approx(1000.0)

    def test_rate_for_load(self):
        assert make_app().rate_for_load(0.5) == pytest.approx(500.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            make_app().rate_for_load(-0.1)

    def test_mean_service_at_lower_freq(self):
        app = make_app(mem_fraction=0.25)
        # at half frequency compute doubles, memory unchanged:
        # 0.75*2 + 0.25 = 1.75x
        assert app.mean_service_at(NOMINAL_FREQUENCY_HZ / 2) == \
            pytest.approx(1.75e-3)


class TestValidation:
    @pytest.mark.parametrize("kw", [
        dict(mean_service_s=0.0),
        dict(service_cv=-1.0),
        dict(mem_fraction=1.0),
        dict(num_requests=0),
        dict(long_fraction=1.0),
        dict(long_scale=0.5),
        dict(hint_quality=1.5),
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            make_app(**kw)


class TestPaperApps:
    def test_table3_request_counts(self):
        from repro.workloads.apps import APPS
        expected = {"xapian": 6000, "masstree": 9000, "moses": 900,
                    "shore": 7500, "specjbb": 37500}
        for name, count in expected.items():
            assert APPS[name].num_requests == count

    def test_app_names_order(self):
        from repro.workloads.apps import app_names
        assert app_names() == ["masstree", "moses", "shore", "specjbb",
                               "xapian"]

    def test_get_app(self):
        from repro.workloads.apps import get_app
        assert get_app("moses").name == "moses"
        with pytest.raises(KeyError):
            get_app("nope")

    def test_variability_spectrum(self):
        """masstree/moses tight; shore/xapian/specjbb variable (Sec. 3)."""
        from repro.workloads.apps import APPS
        assert APPS["masstree"].service_cv < 0.3
        assert APPS["moses"].service_cv < 0.3
        assert APPS["specjbb"].service_cv > 1.0

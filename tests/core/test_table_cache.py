"""Tests for the refresh cache: snapshot fingerprints, LRU bounds, and
bitwise-invisible reuse through the Rubik controller."""

import math

import numpy as np
import pytest

from repro.core.controller import Rubik
from repro.core.histogram import Histogram
from repro.core.table_cache import (
    TABLE_CACHE,
    TailTableCache,
    snapshot_fingerprint,
)
from repro.core.tail_tables import TargetTailTables
from repro.experiments.common import make_context
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE


def lognormal_hist(seed=0, mean=1e6, cv=0.3, n=4000):
    sigma2 = math.log(1 + cv * cv)
    mu = math.log(mean) - sigma2 / 2
    samples = np.random.default_rng(seed).lognormal(mu, math.sqrt(sigma2), n)
    return Histogram.from_samples(samples)


class TestFingerprint:
    def test_equal_for_equal_snapshots(self):
        """Distinct objects, same (width, pmf): identical fingerprint."""
        c1, c2 = lognormal_hist(0), lognormal_hist(0)
        m1, m2 = lognormal_hist(1, mean=1e-4), lognormal_hist(1, mean=1e-4)
        assert c1 is not c2
        assert snapshot_fingerprint(c1, m1, 0.95, 8, 16) == \
            snapshot_fingerprint(c2, m2, 0.95, 8, 16)

    def test_miss_on_pmf_change(self):
        c1, c2 = lognormal_hist(0), lognormal_hist(2)
        m = lognormal_hist(1, mean=1e-4)
        assert snapshot_fingerprint(c1, m, 0.95, 8, 16) != \
            snapshot_fingerprint(c2, m, 0.95, 8, 16)

    def test_miss_on_width_change(self):
        """Same pmf shape, different bucket width (point masses)."""
        c = lognormal_hist(0)
        m1 = Histogram.point_mass(0.0, bucket_width=1e-9)
        m2 = Histogram.point_mass(0.0, bucket_width=1.0)
        np.testing.assert_array_equal(m1.pmf, m2.pmf)
        assert snapshot_fingerprint(c, m1, 0.95, 8, 16) != \
            snapshot_fingerprint(c, m2, 0.95, 8, 16)

    @pytest.mark.parametrize("kwargs", [
        dict(quantile=0.99), dict(num_rows=4), dict(max_explicit=4),
    ])
    def test_miss_on_parameter_change(self, kwargs):
        c, m = lognormal_hist(0), lognormal_hist(1, mean=1e-4)
        base = dict(quantile=0.95, num_rows=8, max_explicit=16)
        assert snapshot_fingerprint(c, m, **base) != \
            snapshot_fingerprint(c, m, **{**base, **kwargs})


class TestLRUBound:
    def _key(self, i):
        return ("k", i)

    def test_eviction_bound_and_order(self):
        cache = TailTableCache(maxsize=2)
        cache.put(self._key(0), "a")
        cache.put(self._key(1), "b")
        cache.put(self._key(2), "c")  # evicts key 0 (least recent)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(self._key(0)) is None
        assert cache.get(self._key(2)) == "c"

    def test_get_refreshes_recency(self):
        cache = TailTableCache(maxsize=2)
        cache.put(self._key(0), "a")
        cache.put(self._key(1), "b")
        assert cache.get(self._key(0)) == "a"  # 0 becomes most recent
        cache.put(self._key(2), "c")           # evicts 1, not 0
        assert cache.get(self._key(0)) == "a"
        assert cache.get(self._key(1)) is None

    def test_stats_and_clear(self):
        cache = TailTableCache(maxsize=4)
        cache.put(self._key(0), "a")
        cache.get(self._key(0))
        cache.get(self._key(7))
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1  # counters survive clear
        cache.reset_stats()
        assert cache.stats()["hits"] == 0

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            TailTableCache(maxsize=0)


class TestControllerReuse:
    def _run(self, rubik, n=1500, seed=3, load=0.5):
        ctx = make_context(MASSTREE, seed, n)
        trace = Trace.generate_at_load(MASSTREE, load, n, seed)
        return run_trace(trace, rubik, ctx, record_freq_history=True)

    def test_warm_run_hits_and_matches_cold_bitwise(self):
        """Reuse is the whole point — and must be bitwise-invisible."""
        TABLE_CACHE.clear()
        cold_rubik = Rubik()
        cold = self._run(cold_rubik)
        assert cold_rubik.refresh_stats.snapshots > 0
        assert cold_rubik.refresh_stats.cache_misses == \
            cold_rubik.refresh_stats.snapshots

        warm_rubik = Rubik()
        warm = self._run(warm_rubik)
        stats = warm_rubik.refresh_stats
        assert stats.cache_misses == 0
        assert stats.cache_hits == stats.snapshots == \
            cold_rubik.refresh_stats.snapshots
        # Columns built during the cold run ride along on every hit.
        assert stats.columns_carried > 0

        assert warm.freq_history == cold.freq_history
        assert warm.energy_j == cold.energy_j
        np.testing.assert_array_equal(warm.response_times(),
                                      cold.response_times())

    def test_table_updates_counts_refreshes_not_rebuilds(self):
        TABLE_CACHE.clear()
        a, b = Rubik(), Rubik()
        self._run(a)
        self._run(b)
        assert b.table_updates == b.refresh_stats.snapshots
        assert b.table_updates == a.table_updates

    def test_distinct_parameters_do_not_collide(self):
        """Ablation variants (different rows/depth) over the same trace
        must build their own tables, not reuse the paper config's."""
        TABLE_CACHE.clear()
        self._run(Rubik(), n=800)
        variant = Rubik(num_rows=4)
        self._run(variant, n=800)
        assert variant.refresh_stats.cache_misses == \
            variant.refresh_stats.snapshots
        assert all(t.num_rows == 4 for t in
                   (variant.tables.cycles, variant.tables.memory))

    def test_shared_across_instances_is_the_process_cache(self):
        TABLE_CACHE.clear()
        a, b = Rubik(), Rubik()
        self._run(a, n=800)
        self._run(b, n=800)
        assert b.tables is a.tables  # the very same cached pair

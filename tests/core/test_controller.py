"""Tests for the Rubik controller: frequency selection and end-to-end
behaviour (the paper's core claims at unit scale)."""

import numpy as np
import pytest

from repro.config import DvfsConfig
from repro.core.controller import Rubik
from repro.experiments.common import make_context
from repro.schemes.base import SchemeContext
from repro.schemes.fixed import FixedFrequency
from repro.schemes.replay import replay
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE, SPECJBB


def small_trace(app=MASSTREE, load=0.4, n=2500, seed=3):
    return Trace.generate_at_load(app, load, n, seed)


class TestFrequencyPolicy:
    def test_starts_at_max(self):
        """Safe before the demand model has data."""
        ctx = make_context(MASSTREE, 3, 2000)
        rubik = Rubik()
        trace = small_trace(n=2000)
        run = run_trace(trace, rubik, ctx, record_freq_history=True)
        # The controller's first request (right after the domain's
        # nominal start entry) is the grid max.
        assert run.freq_history[1][1] == ctx.dvfs.max_hz
        assert run.freq_history[1][0] <= ctx.dvfs.transition_latency_s

    def test_parks_at_min_when_idle(self):
        ctx = make_context(MASSTREE, 3, 2000)
        rubik = Rubik()
        run = run_trace(small_trace(load=0.05, n=500), rubik, ctx,
                        record_freq_history=True)
        # At 5% load, the controller should spend most wall time parked.
        hist = {f: v for f, v in run.freq_history}
        assert ctx.dvfs.min_hz in [f for _, f in run.freq_history]

    def test_update_period_respected(self):
        rubik = Rubik(update_period_s=0.05)
        ctx = make_context(MASSTREE, 3, 2000)
        run = run_trace(small_trace(n=2000), rubik, ctx)
        duration = run.duration_s
        assert rubik.table_updates <= duration / 0.05 + 2

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Rubik(update_period_s=0.0)

    def test_name_reflects_feedback(self):
        assert Rubik().name == "Rubik"
        assert "No Feedback" in Rubik(feedback=False).name


class TestTailGuarantee:
    @pytest.mark.parametrize("load", [0.3, 0.5])
    def test_meets_bound_masstree(self, load):
        """Rubik's central claim: tail within the bound (<=5% violations,
        plus slack for finite-sample noise)."""
        ctx = make_context(MASSTREE, 7, 4000)
        trace = Trace.generate_at_load(MASSTREE, load, 4000, 7)
        run = run_trace(trace, Rubik(), ctx)
        assert run.violation_rate(ctx.latency_bound_s) <= 0.07

    def test_meets_bound_high_variability(self):
        """specjbb's heavy-tailed demands are the hard case."""
        ctx = make_context(SPECJBB, 7, 6000)
        trace = Trace.generate_at_load(SPECJBB, 0.4, 6000, 7)
        run = run_trace(trace, Rubik(), ctx)
        assert run.violation_rate(ctx.latency_bound_s) <= 0.07

    def test_saves_power_vs_fixed(self):
        ctx = make_context(MASSTREE, 7, 4000)
        trace = Trace.generate_at_load(MASSTREE, 0.3, 4000, 7)
        rubik = run_trace(trace, Rubik(), ctx)
        fixed = run_trace(trace, FixedFrequency(), ctx)
        assert rubik.mean_core_power_w < fixed.mean_core_power_w * 0.8

    def test_no_feedback_is_conservative(self):
        """Without the PI trimmer, Rubik's tail sits below the bound
        (paper Fig. 9: conservative approximations)."""
        ctx = make_context(MASSTREE, 7, 4000)
        trace = Trace.generate_at_load(MASSTREE, 0.4, 4000, 7)
        no_fb = run_trace(trace, Rubik(feedback=False), ctx)
        assert no_fb.tail_latency() <= ctx.latency_bound_s * 1.02

    def test_feedback_saves_more_than_no_feedback(self):
        ctx = make_context(MASSTREE, 7, 4000)
        trace = Trace.generate_at_load(MASSTREE, 0.4, 4000, 7)
        with_fb = run_trace(trace, Rubik(), ctx)
        no_fb = run_trace(trace, Rubik(feedback=False), ctx)
        assert with_fb.energy_j <= no_fb.energy_j * 1.02


class TestAdaptation:
    def test_reacts_to_load_step(self):
        """Frequencies after a 30->60% step are higher than before
        (Fig. 1b behaviour) within a short window."""
        from repro.sim.arrivals import LoadSchedule

        app = MASSTREE
        ctx = make_context(app, 5, 4000)
        schedule = LoadSchedule.from_loads(
            [(0.0, 0.3), (0.5, 0.6)], app.saturation_qps)
        trace = Trace.generate(app, schedule, 4000, 5)
        run = run_trace(trace, Rubik(), ctx, record_freq_history=True)
        hist = np.array(run.freq_history)
        before = hist[(hist[:, 0] > 0.2) & (hist[:, 0] < 0.5)][:, 1]
        after = hist[(hist[:, 0] > 0.6) & (hist[:, 0] < 0.9)][:, 1]
        assert after.mean() > before.mean()

    def test_application_agnostic(self):
        """Rubik never reads the app profile or request hints."""
        ctx = SchemeContext(latency_bound_s=1e-3, app=None)
        trace = small_trace(n=1500)
        run = run_trace(trace, Rubik(), ctx)  # app=None works fine
        assert len(run.requests) == 1500

    def test_model_tracks_demand_drift(self):
        """If demands double mid-run, the profiler window adapts and the
        tail is still respected afterwards."""
        app = MASSTREE
        ctx = make_context(app, 9, 3000)
        t1 = Trace.generate_at_load(app, 0.35, 1500, 9)
        t2 = Trace.generate_at_load(app, 0.35, 1500, 10)
        shift = t1.arrivals[-1] + 1e-3
        merged = Trace(
            np.concatenate([t1.arrivals, t2.arrivals + shift]),
            np.concatenate([t1.compute_cycles, t2.compute_cycles * 1.5]),
            np.concatenate([t1.memory_time_s, t2.memory_time_s]),
        )
        run = run_trace(merged, Rubik(), ctx)
        late = [r for r in run.requests[-700:]]
        lats = np.array([r.response_time for r in late])
        # Inflated demands make the original bound harder; Rubik should
        # keep the overwhelming majority under 1.5x bound.
        assert np.mean(lats > ctx.latency_bound_s * 1.5) < 0.05

"""Tests for the target tail tables (paper Fig. 4/5 math)."""

import numpy as np
import pytest

from repro.core.histogram import Histogram
from repro.core.tail_tables import TailTable, TargetTailTables


def lognormal_hist(seed=0, mean=1e6, cv=0.3, n=20000):
    import math
    sigma2 = math.log(1 + cv * cv)
    mu = math.log(mean) - sigma2 / 2
    samples = np.random.default_rng(seed).lognormal(mu, math.sqrt(sigma2), n)
    return Histogram.from_samples(samples)


class TestConstruction:
    def test_paper_shape(self):
        t = TailTable(lognormal_hist())
        assert t.table.shape == (8, 16)  # octile rows, 16 columns

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            TailTable(lognormal_hist(), quantile=1.5)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            TailTable(lognormal_hist(), num_rows=0)


class TestTailValues:
    def test_column_zero_is_request_tail(self):
        h = lognormal_hist()
        t = TailTable(h, quantile=0.95)
        assert t.tail(0) == pytest.approx(h.quantile(0.95))

    def test_monotone_in_queue_position(self):
        """Deeper queue positions always need more total work."""
        t = TailTable(lognormal_hist())
        tails = [t.tail(i) for i in range(30)]
        assert all(b > a for a, b in zip(tails, tails[1:]))

    def test_relative_tail_tightens_with_depth(self):
        """CLT effect the paper leverages: the tail of S_i relative to its
        mean shrinks as i grows, so the last queued request rarely sets
        the frequency (Sec. 4.1)."""
        h = lognormal_hist(cv=0.5)
        t = TailTable(h)
        mean = h.mean()
        rel_1 = t.tail(1) / (2 * mean)
        rel_10 = t.tail(10) / (11 * mean)
        assert rel_10 < rel_1

    def test_tail_approximates_true_convolution_quantile(self):
        """Column i's tail matches the Monte-Carlo quantile of a sum of
        i+1 iid draws (within bucketing error)."""
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.5e6, 1.5e6, 20000)
        h = Histogram.from_samples(samples)
        t = TailTable(h, quantile=0.95)
        sums = rng.choice(samples, size=(50000, 4)).sum(axis=1)
        truth = np.percentile(sums, 95)
        assert t.tail(3) == pytest.approx(truth, rel=0.05)

    def test_elapsed_reduces_tail(self):
        """Conditioning on elapsed work shrinks the remaining tail for a
        light-tailed distribution."""
        h = lognormal_hist(cv=0.2)
        t = TailTable(h)
        assert t.tail(0, elapsed=h.quantile(0.5)) < t.tail(0, elapsed=0.0)

    def test_rejects_negative_position(self):
        with pytest.raises(ValueError):
            TailTable(lognormal_hist()).tail(-1)

    def test_rejects_negative_elapsed(self):
        with pytest.raises(ValueError):
            TailTable(lognormal_hist()).row_for_elapsed(-1.0)


class TestRowSelection:
    def test_row_zero_for_fresh_request(self):
        t = TailTable(lognormal_hist())
        assert t.row_for_elapsed(0.0) == 0

    def test_row_advances_with_elapsed(self):
        h = lognormal_hist()
        t = TailTable(h)
        rows = [t.row_for_elapsed(e) for e in
                [0.0, h.quantile(0.2), h.quantile(0.6), h.quantile(0.99)]]
        assert rows == sorted(rows)
        assert rows[-1] == t.num_rows - 1

    def test_rows_conditioned_conservatively(self):
        """A row's tail is computed at its band's lower edge, so it never
        under-estimates within-band remaining work."""
        h = lognormal_hist(cv=0.2)
        t = TailTable(h)
        for r in range(1, t.num_rows):
            lower = t.row_bounds[r]
            direct = h.condition_on_elapsed(lower).quantile(0.95)
            assert t.table[r, 0] == pytest.approx(direct, rel=1e-9)


class TestGaussianExtension:
    def test_deep_positions_use_clt(self):
        """Beyond max_explicit, tails follow mean + z*sigma growth and
        stay continuous-ish with the explicit region."""
        h = lognormal_hist(cv=0.3)
        t = TailTable(h, max_explicit=16)
        explicit_15 = t.tail(15)
        clt_16 = t.tail(16)
        clt_17 = t.tail(17)
        assert clt_16 > explicit_15
        # Per-position growth near the boundary is about one mean.
        assert clt_17 - clt_16 == pytest.approx(h.mean(), rel=0.2)

    def test_clt_matches_convolution_at_depth(self):
        h = lognormal_hist(cv=0.3)
        explicit = TailTable(h, max_explicit=24)
        clt = TailTable(h, max_explicit=16)
        assert clt.tail(20) == pytest.approx(explicit.tail(20), rel=0.05)


class TestTargetTailTables:
    def test_constraint_returns_both_tails(self):
        cycles = lognormal_hist(0, mean=1e6)
        memory = lognormal_hist(1, mean=1e-4)
        tables = TargetTailTables(cycles, memory)
        c, m = tables.constraint(0, 0.0, 0.0)
        assert c == pytest.approx(cycles.quantile(0.95))
        assert m == pytest.approx(memory.quantile(0.95))

    def test_zero_memory_point_mass(self):
        cycles = lognormal_hist()
        memory = Histogram.point_mass(0.0, bucket_width=1e-9)
        tables = TargetTailTables(cycles, memory)
        _, m = tables.constraint(3, 0.0, 0.0)
        assert m <= 1e-8

    def test_paper_fig4_scenario(self):
        """Fig. 4: three requests; the frequency constraint of Eq. 1 is
        satisfiable and the implied frequency is positive and finite."""
        cycles = lognormal_hist(mean=0.5e6, cv=0.2)
        memory = Histogram.point_mass(0.0, bucket_width=1e-9)
        tables = TargetTailTables(cycles, memory)
        bound = 2e-3
        times_in_system = [1.5e-3, 0.8e-3, 0.1e-3]
        freqs = []
        for i, t_i in enumerate(times_in_system):
            c_i, m_i = tables.constraint(i, 0.3e6, 0.0)
            slack = bound - t_i - m_i
            assert slack > 0
            freqs.append(c_i / slack)
        # R1 (middle) has the most stringent constraint in this setup?
        # At minimum, all constraints are finite and the max is what the
        # controller would pick.
        assert max(freqs) < 10e9

"""Tests for the online demand profiler."""

import pytest

from repro.core.profiler import DemandProfiler


class TestReadiness:
    def test_not_ready_before_min_samples(self):
        p = DemandProfiler(min_samples=5)
        for _ in range(4):
            p.observe(1e6, 1e-4)
        assert not p.ready
        assert p.snapshot() is None

    def test_ready_at_min_samples(self):
        p = DemandProfiler(min_samples=5)
        for _ in range(5):
            p.observe(1e6, 1e-4)
        assert p.ready
        assert p.snapshot() is not None

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            DemandProfiler(window=0)
        with pytest.raises(ValueError):
            DemandProfiler(window=10, min_samples=20)

    def test_rejects_negative_observation(self):
        p = DemandProfiler()
        with pytest.raises(ValueError):
            p.observe(-1.0, 0.0)


class TestWindowing:
    def test_window_evicts_old_samples(self):
        p = DemandProfiler(window=10, min_samples=2)
        for _ in range(10):
            p.observe(1e6, 0.0)
        for _ in range(10):
            p.observe(5e6, 0.0)  # drift: demands grow 5x
        cycles, _ = p.snapshot()
        # Only new-regime samples remain.
        assert cycles.mean() == pytest.approx(5e6, rel=0.1)

    def test_sample_count_capped(self):
        p = DemandProfiler(window=10, min_samples=2)
        for _ in range(100):
            p.observe(1e6, 0.0)
        assert p.sample_count == 10
        assert p.total_observed == 100


class TestSnapshot:
    def test_snapshot_moments(self):
        p = DemandProfiler(min_samples=2)
        for c in (1e6, 2e6, 3e6):
            p.observe(c, 1e-4)
        cycles, memory = p.snapshot()
        assert cycles.mean() == pytest.approx(2e6, rel=0.05)
        assert memory.mean() == pytest.approx(1e-4, rel=0.05)

    def test_zero_memory_degenerates(self):
        p = DemandProfiler(min_samples=2)
        p.observe(1e6, 0.0)
        p.observe(2e6, 0.0)
        _, memory = p.snapshot()
        assert memory.quantile(0.95) <= 1e-8

    def test_128_buckets_default(self):
        p = DemandProfiler(min_samples=2)
        for c in range(1, 1000):
            p.observe(float(c), 0.0)
        cycles, _ = p.snapshot()
        assert cycles.num_buckets == 128

"""Tests for the online demand profiler.

The incremental implementation (per-bucket counts + running window max
under ring-buffer append/evict) must be **bitwise**-equal to
``Histogram.from_samples`` on the window contents — the randomized
oracle below drives eviction of the maximum, exact ties, zero runs, and
width changes across regime shifts, and compares raw pmf arrays with
``assert_array_equal`` (not allclose).
"""

from collections import deque

import numpy as np
import pytest

from repro.core.histogram import Histogram
from repro.core.profiler import ZERO_MEMORY_WIDTH, DemandProfiler


class TestReadiness:
    def test_not_ready_before_min_samples(self):
        p = DemandProfiler(min_samples=5)
        for _ in range(4):
            p.observe(1e6, 1e-4)
        assert not p.ready
        assert p.snapshot() is None

    def test_ready_at_min_samples(self):
        p = DemandProfiler(min_samples=5)
        for _ in range(5):
            p.observe(1e6, 1e-4)
        assert p.ready
        assert p.snapshot() is not None

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            DemandProfiler(window=0)
        with pytest.raises(ValueError):
            DemandProfiler(window=10, min_samples=20)

    def test_rejects_negative_observation(self):
        p = DemandProfiler()
        with pytest.raises(ValueError):
            p.observe(-1.0, 0.0)


class TestWindowing:
    def test_window_evicts_old_samples(self):
        p = DemandProfiler(window=10, min_samples=2)
        for _ in range(10):
            p.observe(1e6, 0.0)
        for _ in range(10):
            p.observe(5e6, 0.0)  # drift: demands grow 5x
        cycles, _ = p.snapshot()
        # Only new-regime samples remain.
        assert cycles.mean() == pytest.approx(5e6, rel=0.1)

    def test_sample_count_capped(self):
        p = DemandProfiler(window=10, min_samples=2)
        for _ in range(100):
            p.observe(1e6, 0.0)
        assert p.sample_count == 10
        assert p.total_observed == 100


class TestSnapshot:
    def test_snapshot_moments(self):
        p = DemandProfiler(min_samples=2)
        for c in (1e6, 2e6, 3e6):
            p.observe(c, 1e-4)
        cycles, memory = p.snapshot()
        assert cycles.mean() == pytest.approx(2e6, rel=0.05)
        assert memory.mean() == pytest.approx(1e-4, rel=0.05)

    def test_zero_memory_degenerates(self):
        p = DemandProfiler(min_samples=2)
        p.observe(1e6, 0.0)
        p.observe(2e6, 0.0)
        _, memory = p.snapshot()
        assert memory.quantile(0.95) <= 1e-8

    def test_128_buckets_default(self):
        p = DemandProfiler(min_samples=2)
        for c in range(1, 1000):
            p.observe(float(c), 0.0)
        cycles, _ = p.snapshot()
        assert cycles.num_buckets == 128


class TestIncrementalOracle:
    """Randomized add/evict oracle: incremental state vs from-scratch."""

    @staticmethod
    def _check(p, ref_c, ref_m):
        cycles, memory = p.snapshot()
        exp_c = Histogram.from_samples(list(ref_c), p.num_buckets)
        assert cycles.bucket_width == exp_c.bucket_width
        np.testing.assert_array_equal(cycles.pmf, exp_c.pmf)
        if max(ref_m) <= 0:
            assert memory.bucket_width == ZERO_MEMORY_WIDTH
            np.testing.assert_array_equal(memory.pmf, [1.0])
        else:
            exp_m = Histogram.from_samples(list(ref_m), p.num_buckets)
            assert memory.bucket_width == exp_m.bucket_width
            np.testing.assert_array_equal(memory.pmf, exp_m.pmf)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_from_samples_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        window = int(rng.integers(5, 90))
        p = DemandProfiler(window=window, min_samples=2)
        ref_c = deque(maxlen=window)
        ref_m = deque(maxlen=window)
        # Regime means rise *and fall* so the window maximum both grows
        # (new record) and leaves the window (max eviction + rescan).
        means = [13.0, 15.0, 11.0, 14.0]
        for step in range(700):
            c = float(rng.lognormal(means[(step // 175) % 4], 0.5))
            r = rng.random()
            if r < 0.25:
                m = 0.0  # zero runs: the memory point-mass path
            elif r < 0.35 and ref_m:
                m = ref_m[-1]  # exact repeats: max-count ties
            else:
                m = float(rng.lognormal(-9.0 + (step // 150) % 3, 0.7))
            p.observe(c, m)
            ref_c.append(c)
            ref_m.append(m)
            if p.ready and (step % 5 == 0 or rng.random() < 0.2):
                self._check(p, ref_c, ref_m)

    def test_snapshot_between_and_after_bursts(self):
        """Bursts larger than the window (the pending-queue overflow
        path) still snapshot bitwise-correct."""
        window = 16
        p = DemandProfiler(window=window, min_samples=2)
        ref = deque(maxlen=window)
        rng = np.random.default_rng(99)
        for burst in (3, 40, 5, 64):
            for v in rng.lognormal(10, 0.8, burst):
                p.observe(float(v), float(v) * 1e-10)
                ref.append(float(v))
            self._check(p, ref, deque(v * 1e-10 for v in ref))

    def test_zero_memory_point_mass_after_evictions(self):
        """Satellite regression: the all-zero memory path must be hit
        from the *incremental* max, after the positive sample evicts."""
        p = DemandProfiler(window=4, min_samples=2)
        p.observe(1e6, 5e-4)
        for _ in range(4):
            p.observe(1e6, 0.0)  # positive memory sample slides out
        _, memory = p.snapshot()
        assert memory.bucket_width == ZERO_MEMORY_WIDTH
        np.testing.assert_array_equal(memory.pmf, [1.0])
        assert memory.quantile(0.95) <= 1e-8
        # A positive sample re-enters: back to the bucketed form.
        p.observe(1e6, 2e-4)
        _, memory = p.snapshot()
        expected = Histogram.from_samples([0.0, 0.0, 0.0, 2e-4],
                                          p.num_buckets)
        assert memory.bucket_width == expected.bucket_width
        np.testing.assert_array_equal(memory.pmf, expected.pmf)

    def test_all_zero_cycles_degenerate(self):
        """from_samples' top<=0 path (cycles) keeps its 1.0-wide bucket."""
        p = DemandProfiler(window=8, min_samples=2)
        for _ in range(3):
            p.observe(0.0, 0.0)
        cycles, memory = p.snapshot()
        assert cycles.bucket_width == 1.0
        np.testing.assert_array_equal(cycles.pmf, [1.0])
        assert memory.bucket_width == ZERO_MEMORY_WIDTH

    def test_snapshot_is_independent_of_live_state(self):
        """Returned histograms must not alias the live counts."""
        p = DemandProfiler(window=8, min_samples=2)
        for v in (1.0, 2.0, 3.0):
            p.observe(v, v * 1e-4)
        cycles, _ = p.snapshot()
        before = cycles.pmf.copy()
        for v in (7.0, 8.0, 9.0, 10.0, 11.0):
            p.observe(v, v * 1e-4)
        p.snapshot()
        np.testing.assert_array_equal(cycles.pmf, before)

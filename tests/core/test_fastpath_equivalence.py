"""Equivalence guards for the PR 1 fast paths.

The perf overhaul (cached histogram CDFs/FFTs, shared-convolution lazy
tail-table builds, the vectorized/fast-path Rubik controller, the tuple
event heap) must be *behaviorally invisible*: every scheme decision and
figure output must match what the original scalar implementations
produce. These tests pin that:

* a reference (seed-algorithm) tail-table build, kept here in test code,
  must match the shared-convolution build cell-for-cell;
* seeded traces through the scalar ``_update_frequency`` loop and the
  vectorized path must produce identical frequency-request sequences,
  p95/p99 latencies, and energy (rel tol 1e-9 — observed: bitwise).
"""

import math

import numpy as np
import pytest

from repro.core.controller import Rubik
from repro.core.histogram import Histogram
from repro.core.tail_tables import TailTable
from repro.experiments.common import make_context
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE, SPECJBB


def lognormal_hist(seed=0, mean=1e6, cv=0.3, n=20000):
    sigma2 = math.log(1 + cv * cv)
    mu = math.log(mean) - sigma2 / 2
    samples = np.random.default_rng(seed).lognormal(mu, math.sqrt(sigma2), n)
    return Histogram.from_samples(samples)


def reference_table(base, quantile=0.95, num_rows=8, max_explicit=16):
    """The seed's row-by-row iterated-convolution build (pre-PR 1)."""
    qs = [k / num_rows for k in range(1, num_rows)]
    row_bounds = [0.0] + [base.quantile(q) for q in qs]
    table = np.empty((num_rows, max_explicit))
    for r, elapsed in enumerate(row_bounds):
        conditioned = base.condition_on_elapsed(elapsed)
        acc = conditioned
        for i in range(max_explicit):
            table[r, i] = acc.quantile(quantile)
            if i + 1 < max_explicit:
                acc = acc.convolve(base)
    return np.asarray(row_bounds), table


class TestSharedConvolutionTables:
    @pytest.mark.parametrize("seed,mean,cv", [
        (0, 1e6, 0.3), (1, 1e6, 0.05), (2, 5e5, 1.2), (3, 1e-4, 0.4),
        (4, 2e6, 0.8),
    ])
    def test_matches_reference_build(self, seed, mean, cv):
        h = lognormal_hist(seed, mean, cv)
        table = TailTable(h)
        ref_bounds, ref = reference_table(h)
        np.testing.assert_allclose(table.row_bounds, ref_bounds, rtol=1e-9)
        np.testing.assert_allclose(table.materialize(), ref, rtol=1e-9)

    @pytest.mark.parametrize("num_rows,max_explicit", [
        (4, 16), (8, 24), (3, 1), (8, 2),
    ])
    def test_matches_reference_other_shapes(self, num_rows, max_explicit):
        h = lognormal_hist(7, 1e6, 0.5)
        table = TailTable(h, num_rows=num_rows, max_explicit=max_explicit)
        _, ref = reference_table(h, num_rows=num_rows,
                                 max_explicit=max_explicit)
        np.testing.assert_allclose(table.materialize(), ref, rtol=1e-9)

    def test_matches_reference_degenerate_bases(self):
        for h in [Histogram.point_mass(0.0, 1e-9),
                  Histogram.point_mass(5.0, 1.0),
                  Histogram(1.0, [0.5, 0.5])]:
            table = TailTable(h)
            _, ref = reference_table(h)
            np.testing.assert_allclose(table.materialize(), ref, rtol=1e-9)

    def test_lazy_columns_match_eager(self):
        """Column-at-a-time demand builds equal a full materialization."""
        h = lognormal_hist(5)
        lazy = TailTable(h)
        eager = TailTable(h)
        eager.materialize()
        # Drive the lazy table through the public accessors out of order.
        for pos in (0, 3, 1, 9, 15):
            assert lazy.tail(pos) == eager.tail(pos)
        np.testing.assert_array_equal(lazy.materialize(), eager.table)

    def test_tails_for_queue_is_row_slice(self):
        h = lognormal_hist(6)
        t = TailTable(h)
        elapsed = h.quantile(0.4)
        tails = t.tails_for_queue(10, elapsed)
        assert isinstance(tails, np.ndarray)
        expected = [t.tail(i, elapsed) for i in range(10)]
        np.testing.assert_array_equal(tails, expected)

    def test_tails_for_queue_clt_extension(self):
        h = lognormal_hist(6)
        t = TailTable(h, max_explicit=8)
        tails = t.tails_for_queue(12)
        expected = [t.tail(i) for i in range(12)]
        np.testing.assert_allclose(tails, expected, rtol=1e-12)

    def test_row_index_fast_path_matches_public(self):
        h = lognormal_hist(8)
        t = TailTable(h)
        for e in [0.0, h.quantile(0.1), h.quantile(0.5), h.quantile(0.99),
                  float(t.row_bounds[3])]:
            assert t._row_index(e) == t.row_for_elapsed(e)

    def test_row_bounds_is_ndarray(self):
        """Satellite fix: row_bounds used to be a Python list."""
        t = TailTable(lognormal_hist())
        assert isinstance(t.row_bounds, np.ndarray)

    def test_clt_branch_math_sqrt_bitwise(self):
        """Satellite fix: tail()'s CLT branch uses math.sqrt (no ndarray
        boxing on the per-event path) — bit-for-bit what np.sqrt gave."""
        h = lognormal_hist(9, 1e6, 0.6)
        t = TailTable(h, max_explicit=4)
        for position in (4, 7, 16, 40):
            for elapsed in (0.0, h.quantile(0.3), h.quantile(0.9)):
                row = t.row_for_elapsed(elapsed)
                mean = t.row_means[row] + position * t.base_mean
                var = t.row_vars[row] + position * t.base_var
                expected = max(0.0, float(
                    mean + t._z * np.sqrt(max(var, 0.0))))
                got = t.tail(position, elapsed)
                assert got == expected  # bitwise, not approx
                assert isinstance(got, float)

    def test_row_list_caches_survive_column_growth(self):
        """Satellite fix: growing columns used to clear every row's
        cached float list; now lists extend in place."""
        t = TailTable(lognormal_hist(4))
        row0 = t.row_tails_list(0, 3)
        row5 = t.row_tails_list(5, 3)
        grown = t.row_tails_list(0, 12)  # forces columns 3..11
        assert grown is row0  # extended in place, not rebuilt
        assert t._row_lists[5] is row5  # other row's cache survived
        # Growth through a different accessor extends lazily on re-read.
        t.tails_for_queue(16)
        full5 = t.row_tails_list(5, 16)
        assert full5 is row5
        np.testing.assert_array_equal(full5, t.table[5, :16])
        assert t.row_tails_list(0, 16) is row0
        np.testing.assert_array_equal(row0, t.table[0, :16])


class TestControllerEquivalence:
    @pytest.mark.parametrize("app,seed,n,load", [
        (MASSTREE, 3, 2500, 0.5),
        (MASSTREE, 11, 2500, 0.8),
        (SPECJBB, 7, 2500, 0.4),
    ])
    def test_vectorized_matches_scalar(self, app, seed, n, load):
        ctx = make_context(app, seed, n)
        trace = Trace.generate_at_load(app, load, n, seed)
        runs = {}
        for vectorized in (False, True):
            # kernel=False: this test pins the *vectorized* NumPy path
            # specifically (the kernel has its own oracle suite in
            # tests/core/test_decision_kernel.py).
            runs[vectorized] = run_trace(
                trace, Rubik(vectorized=vectorized, kernel=False), ctx,
                record_freq_history=True)
        scalar, vector = runs[False], runs[True]
        assert scalar.freq_history  # opt-in must actually record

        # Identical frequency *request* outcomes: the applied-transition
        # history must match event for event.
        assert vector.freq_history == scalar.freq_history
        assert vector.dvfs_transitions == scalar.dvfs_transitions

        s_lat = scalar.response_times()
        v_lat = vector.response_times()
        for pct in (95, 99):
            assert float(np.percentile(v_lat, pct)) == pytest.approx(
                float(np.percentile(s_lat, pct)), rel=1e-9)
        assert vector.energy_j == pytest.approx(scalar.energy_j, rel=1e-9)

    def test_deep_queue_path_matches_scalar(self):
        """Force queue depths past max_explicit so the ndarray expression
        (not just the shallow fast path) is exercised."""
        ctx = make_context(MASSTREE, 13, 2000)
        trace = Trace.generate_at_load(MASSTREE, 1.4, 2000, 13)
        runs = [run_trace(trace,
                          Rubik(vectorized=v, kernel=False, max_explicit=4),
                          ctx, record_freq_history=True)
                for v in (False, True)]
        assert runs[0].freq_history  # opt-in must actually record
        assert runs[0].freq_history == runs[1].freq_history
        assert runs[0].energy_j == pytest.approx(runs[1].energy_j, rel=1e-9)

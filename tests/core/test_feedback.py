"""Tests for the PI latency-target trimmer."""

import pytest

from repro.core.feedback import LatencyTargetTrimmer


def feed(trimmer, latency, n=200, start=0.0, rate=1000.0):
    """Feed n completions with constant latency at the given rate."""
    t = start
    for _ in range(n):
        trimmer.observe(t, latency)
        t += 1.0 / rate
    return t


class TestTrimming:
    def test_relaxes_when_tail_below_bound(self):
        tr = LatencyTargetTrimmer(bound_s=1e-3)
        feed(tr, 0.5e-3)
        assert tr.internal_target_s > 1e-3

    def test_tightens_when_tail_above_bound(self):
        tr = LatencyTargetTrimmer(bound_s=1e-3)
        feed(tr, 1.5e-3)
        assert tr.internal_target_s < 1e-3

    def test_clamped_above(self):
        tr = LatencyTargetTrimmer(bound_s=1e-3, max_scale=1.5)
        feed(tr, 0.01e-3, n=5000)
        assert tr.internal_target_s <= 1.5e-3 + 1e-12

    def test_clamped_below(self):
        tr = LatencyTargetTrimmer(bound_s=1e-3, min_scale=0.8)
        feed(tr, 10e-3, n=5000)
        assert tr.internal_target_s >= 0.8e-3 - 1e-12

    def test_antiwindup_recovers_quickly(self):
        """After a long period pinned at the clamp, a reversal pulls the
        target back within a handful of adjustment periods."""
        tr = LatencyTargetTrimmer(bound_s=1e-3, max_scale=1.5)
        t = feed(tr, 0.01e-3, n=5000)  # pinned at max
        feed(tr, 3e-3, n=2000, start=t)  # now violating hard
        assert tr.internal_target_s < 1.2e-3

    def test_no_adjustment_below_min_samples(self):
        tr = LatencyTargetTrimmer(bound_s=1e-3, min_window_samples=50)
        feed(tr, 0.1e-3, n=20)
        assert tr.internal_target_s == pytest.approx(1e-3)

    def test_stable_at_bound(self):
        """Measured tail == bound -> target stays ~unchanged."""
        tr = LatencyTargetTrimmer(bound_s=1e-3)
        feed(tr, 1e-3, n=2000)
        assert tr.internal_target_s == pytest.approx(1e-3, rel=0.05)


class TestValidation:
    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            LatencyTargetTrimmer(bound_s=0.0)

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            LatencyTargetTrimmer(bound_s=1.0, min_scale=2.0, max_scale=1.0)

"""Decision-oracle suite for the incremental Eq. 2 kernel (PR 5 + PR 6).

Every decision path must be *decision-equivalent* to the scalar oracle:
each ``Core.request_frequency`` call — including redundant ones — must
carry the identical float, event by event, and end-of-run meter totals
must match bitwise. The randomized sweep below drives the scalar,
vectorized, kernel, and (when the library builds) native C paths through
seeded random event sequences covering bursts, profiler-window
evictions, overload, empty-queue churn, ``n == 1``, and queues past
``max_explicit``; dedicated regressions pin the hopeless/overload
nominal floor, mid-run trimmer-target shrink, and mid-run path toggles.

The native path (``repro/core/_native``) joins the sweep automatically
when its shared library is available; on boxes without a C compiler the
sweep degrades to the three Python paths and the ``native``-marked
canaries report the gap as skips.
"""

import math

import pytest

from repro.core._native import available as native_available
from repro.core.controller import Rubik
from repro.core.decision_kernel import (
    CERT_MIN_QUEUE,
    DecisionKernel,
    KernelStats,
)
from repro.core.histogram import Histogram
from repro.core.tail_tables import TargetTailTables
from repro.experiments.common import make_context
from repro.power.model import DEFAULT_CORE_POWER
from repro.schemes.base import SchemeContext
from repro.sim.arrivals import LoadSchedule
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request
from repro.sim.trace import Trace
from repro.workloads.apps import APPS, MASSTREE, MOSES, SPECJBB

_NATIVE = native_available()
skip_without_native = pytest.mark.skipif(
    not _NATIVE, reason="native Rubik kernel library unavailable")

#: (vectorized, kernel) flags of the decision paths. The native C path
#: is appended only when its library loads, so the sweep keeps pinning
#: the three Python paths on compiler-less boxes.
PATHS = {
    "scalar": dict(vectorized=False, kernel=False),
    "vectorized": dict(vectorized=True, kernel=False),
    "kernel": dict(vectorized=True, kernel=True),
}
if _NATIVE:
    PATHS["native"] = dict(vectorized=True, kernel="native")

#: Parametrize list covering all four paths, with the native entry
#: visibly skipped (not silently dropped) when the library is missing.
PATH_PARAMS = [
    "scalar", "vectorized", "kernel",
    pytest.param("native",
                 marks=[pytest.mark.native, skip_without_native]),
]


@pytest.mark.native
@skip_without_native
def test_native_path_joins_the_sweep():
    """Canary: with the library available, every sweep below is 4-path.

    Without it this skips — making the 3-path degradation visible in
    the test report instead of silently shrinking coverage.
    """
    assert "native" in PATHS
    assert Rubik().decision_path == "native"


def run_decisions(trace, rubik, context, at=None):
    """Drive ``rubik`` over ``trace`` recording every frequency request.

    Returns (calls, core, rubik): ``calls`` is the exact sequence of
    floats passed to ``Core.request_frequency`` (the controller's
    decisions, redundant requests included).
    """
    sim = Simulator()
    core = Core(sim, context.dvfs, DEFAULT_CORE_POWER)
    calls = []
    orig = core.request_frequency

    def recorder(f_hz):
        calls.append(f_hz)
        orig(f_hz)

    core.request_frequency = recorder
    rubik.setup(sim, core, context)
    if at is not None:
        t, fn = at
        sim.schedule_entry(t, (lambda: fn(rubik)), priority=0)
    for req in trace.to_requests():
        sim.schedule_entry(req.arrival_time,
                           (lambda r=req: core.enqueue(r)), priority=1)
    sim.run()
    core.finalize(settle_dvfs=True)
    return calls, core, rubik


def meter_totals(core):
    meter = core.meter
    return (meter.energy_j, meter.active_energy_j, meter.idle_energy_j,
            meter.busy_time_s, meter.busy_frequency_histogram())


def assert_paths_equivalent(trace, context, **rubik_kwargs):
    """Every path in PATHS: identical request sequences + meter totals."""
    results = {}
    for name, flags in PATHS.items():
        calls, core, rubik = run_decisions(
            trace, Rubik(**flags, **rubik_kwargs), context)
        results[name] = (calls, meter_totals(core), rubik)
    scalar_calls, scalar_meter, _ = results["scalar"]
    assert scalar_calls, "no decisions recorded"
    for name in results:
        if name == "scalar":
            continue
        calls, meter, _ = results[name]
        assert calls == scalar_calls, \
            f"{name} diverged from the scalar oracle"
        assert meter == scalar_meter  # bitwise: exact float tuple/dict
    if "native" in results:
        # The native kernel mirrors the Python kernel's branch counters
        # exactly — same decisions, same fast/fold/invalidation split.
        k_stats = results["kernel"][2].kernel_stats
        n_stats = results["native"][2].kernel_stats
        assert n_stats is not None and k_stats is not None
        assert n_stats.as_dict() == k_stats.as_dict()
    return results


class TestRandomizedDecisionOracle:
    """Seeded random event sequences through every decision path."""

    @pytest.mark.parametrize("seed", range(6))
    def test_moderate_load(self, seed):
        ctx = make_context(MASSTREE, seed, 700)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 700, seed)
        res = assert_paths_equivalent(trace, ctx)
        stats = res["kernel"][2].kernel_stats
        assert stats.decisions == 1400  # one per arrival + completion

    @pytest.mark.parametrize("seed", range(5))
    def test_low_load_empty_queue_churn(self, seed):
        """n == 1 / empty-queue alternation (the min-frequency path)."""
        ctx = make_context(MASSTREE, seed, 400)
        trace = Trace.generate_at_load(MASSTREE, 0.12, 400, seed)
        res = assert_paths_equivalent(trace, ctx)
        calls = res["kernel"][0]
        assert ctx.dvfs.min_hz in calls  # empty-queue decisions occurred

    @pytest.mark.parametrize("seed", range(5))
    def test_overload_deep_queues(self, seed):
        """Sustained overload: deep queues, hopeless floor, max pinning."""
        ctx = make_context(MASSTREE, seed, 500)
        trace = Trace.generate_at_load(MASSTREE, 1.5, 500, seed)
        res = assert_paths_equivalent(trace, ctx)
        stats = res["kernel"][2].kernel_stats
        assert stats.cert_folds > 0  # deep queues exercised the cert path

    @pytest.mark.parametrize("seed", range(5))
    def test_burst_schedule(self, seed):
        """Load steps 0.2 -> 1.6 -> 0.3: queue build-up and drain."""
        app = MASSTREE
        n = 600
        schedule = LoadSchedule.from_loads(
            [(0.0, 0.2), (0.05, 1.6), (0.15, 0.3)], app.saturation_qps)
        trace = Trace.generate(app, schedule, n, seed)
        ctx = make_context(app, seed, n)
        res = assert_paths_equivalent(trace, ctx)
        stats = res["kernel"][2].kernel_stats
        assert stats.fast_arrivals + stats.fast_completions > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_deep_queue_past_max_explicit(self, seed):
        """Queues past the explicit columns exercise the CLT extension."""
        ctx = make_context(MASSTREE, seed, 400)
        trace = Trace.generate_at_load(MASSTREE, 1.3, 400, seed)
        assert_paths_equivalent(trace, ctx, max_explicit=4)

    @pytest.mark.parametrize("seed", range(5))
    def test_profiler_evictions_and_frequent_refresh(self, seed):
        """A tiny profiler window forces constant evictions and table
        fingerprint churn; a short update period forces refreshes."""
        ctx = make_context(SPECJBB, seed, 500)
        trace = Trace.generate_at_load(SPECJBB, 0.6, 500, seed)
        res = assert_paths_equivalent(
            trace, ctx, profiler_window=48, min_samples=16,
            update_period_s=0.01)
        stats = res["kernel"][2].kernel_stats
        assert stats.invalidations_tables > 0  # refreshes swapped tables

    @pytest.mark.parametrize("app,load,seed", [
        (MOSES, 0.3, 9),      # long requests, mixed rows (PR 5 regression)
        (MOSES, 1.1, 2),
        (SPECJBB, 0.9, 4),    # high-variability service times
    ])
    def test_app_coverage(self, app, load, seed):
        ctx = make_context(app, seed, 500)
        trace = Trace.generate_at_load(app, load, 500, seed)
        assert_paths_equivalent(trace, ctx)

    def test_no_feedback_variant(self):
        ctx = make_context(MASSTREE, 3, 500)
        trace = Trace.generate_at_load(MASSTREE, 0.7, 500, 3)
        assert_paths_equivalent(trace, ctx, feedback=False)


class TestHopelessOverloadFloor:
    """The any_hopeless -> nominal-Hz stability floor, every path."""

    def _hopeless_tables(self):
        # Memory tail far above any achievable bound: every request is
        # hopeless the moment it arrives.
        return TargetTailTables(
            Histogram.point_mass(1e6, bucket_width=1e4),
            Histogram.point_mass(5e-3, bucket_width=1e-4))

    @pytest.mark.parametrize("path", PATH_PARAMS)
    def test_fully_hopeless_queue_floors_at_nominal(self, path):
        ctx = SchemeContext(latency_bound_s=1e-4)
        sim = Simulator()
        core = Core(sim, ctx.dvfs, DEFAULT_CORE_POWER)
        calls = []
        orig = core.request_frequency
        core.request_frequency = lambda f: (calls.append(f), orig(f))[1]
        rubik = Rubik(**PATHS[path], feedback=False)
        rubik.setup(sim, core, ctx)
        rubik.tables = self._hopeless_tables()  # profiler stays not-ready
        for k in range(5):
            sim.schedule_entry(
                1e-5 * (k + 1),
                (lambda i=k: core.enqueue(Request(
                    rid=i, arrival_time=sim.now,
                    compute_cycles=1e6, memory_time_s=5e-3))),
                priority=1)
        sim.run(until=2e-5 * 5)
        # No request completes within the horizon, so every decision saw
        # a fully-hopeless queue: required_hz is unconstrained and must
        # floor at nominal, not park at min (the overload death spiral).
        assert len(calls) == 5
        assert all(f == ctx.dvfs.nominal_hz for f in calls)

    def test_fully_hopeless_equivalence_all_paths(self):
        per_path = {}
        for path in PATHS:
            ctx = SchemeContext(latency_bound_s=1e-4)
            sim = Simulator()
            core = Core(sim, ctx.dvfs, DEFAULT_CORE_POWER)
            calls = []
            orig = core.request_frequency
            core.request_frequency = lambda f, _c=calls, _o=orig: (
                _c.append(f), _o(f))[1]
            rubik = Rubik(**PATHS[path], feedback=False)
            rubik.setup(sim, core, ctx)
            rubik.tables = self._hopeless_tables()
            for k in range(8):
                sim.schedule_entry(
                    2e-5 * (k + 1),
                    (lambda i=k: core.enqueue(Request(
                        rid=i, arrival_time=sim.now,
                        compute_cycles=1e6, memory_time_s=5e-3))),
                    priority=1)
            sim.run()
            core.finalize(settle_dvfs=True)
            per_path[path] = calls
        for path in per_path:
            assert per_path[path] == per_path["scalar"], path
        assert SchemeContext(latency_bound_s=1e-4).dvfs.nominal_hz in \
            per_path["scalar"]

    @pytest.mark.parametrize("seed", range(3))
    def test_overload_floor_engages_in_traced_runs(self, seed):
        """Overload traces must hit the nominal floor identically."""
        ctx = make_context(MASSTREE, seed, 400)
        trace = Trace.generate_at_load(MASSTREE, 2.0, 400, seed)
        res = assert_paths_equivalent(trace, ctx)
        assert ctx.dvfs.nominal_hz in res["scalar"][0]

    @pytest.mark.parametrize("seed", (0, 1))
    def test_midrun_trimmer_target_shrink(self, seed):
        """Feedback trims the internal target mid-run (including after a
        load step into overload); every path must track it identically,
        and the kernel must see target invalidations."""
        app = MASSTREE
        n = 1200
        schedule = LoadSchedule.from_loads(
            [(0.0, 0.4), (0.4, 1.8)], app.saturation_qps)
        trace = Trace.generate(app, schedule, n, seed)
        ctx = make_context(app, seed, n)
        res = assert_paths_equivalent(trace, ctx, feedback=True)
        rubik = res["kernel"][2]
        assert rubik.trimmer is not None
        # The trimmer actually moved the internal target at least once...
        assert rubik.trimmer.internal_target_s != ctx.latency_bound_s
        # ...and the kernel noticed (certificate state invalidated).
        assert rubik.kernel_stats.invalidations_target > 0


class TestMidRunToggles:
    """Toggling Rubik.vectorized / Rubik.kernel re-binds ``_decide`` and
    stays decision-equivalent from the toggle point on."""

    def test_property_rebinding(self):
        r = Rubik()
        assert r.kernel == "auto"
        auto_path = "native" if _NATIVE else "kernel"
        assert r.decision_path == auto_path
        if _NATIVE:
            assert r._decide.__func__ is Rubik._update_frequency_native
        else:
            assert r._decide.__func__ is Rubik._update_frequency_kernel
        r.vectorized = False
        assert r.decision_path == "scalar"
        assert r._decide.__func__ is Rubik._update_frequency_scalar
        r.vectorized = True
        assert r.decision_path == auto_path  # kernel mode still "auto"
        r.kernel = True
        assert r.decision_path == "kernel"
        assert r._decide.__func__ is Rubik._update_frequency_kernel
        r.kernel = False
        assert r.decision_path == "vectorized"
        assert r._decide.__func__ is Rubik._update_frequency_vectorized
        # "native" falls back to the Python kernel when unavailable —
        # decision_path reports the path actually taken, never the wish.
        r.kernel = "native"
        assert r.decision_path == auto_path
        r.kernel = True
        assert r.decision_path == "kernel"

    def test_kernel_mode_validation(self):
        with pytest.raises(ValueError):
            Rubik(kernel="sometimes")
        r = Rubik()
        with pytest.raises(ValueError):
            r.kernel = 1  # only the bools themselves, not truthy ints
        assert r.kernel == "auto"  # rejected assignment left mode alone

    def test_first_kernel_decide_rebinds_to_kernel(self):
        """The lazy wrapper must replace itself after building the
        kernel (no per-event dispatch hop)."""
        ctx = make_context(MASSTREE, 3, 300)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 300, 3)
        _, _, rubik = run_decisions(trace, Rubik(kernel=True), ctx)
        assert type(rubik._kernel) is DecisionKernel
        assert rubik._decide == rubik._kernel.decide

    @pytest.mark.native
    @skip_without_native
    def test_first_native_decide_rebinds_to_native(self):
        """Same rebinding contract for the native wrapper."""
        from repro.core._native.kernel import NativeDecisionKernel

        ctx = make_context(MASSTREE, 3, 300)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 300, 3)
        _, _, rubik = run_decisions(trace, Rubik(), ctx)
        assert isinstance(rubik._kernel, NativeDecisionKernel)
        assert rubik._decide == rubik._kernel.decide

    @pytest.mark.parametrize("flips", [
        [("vectorized", False)],                      # kernel -> scalar
        [("kernel", False)],                          # kernel -> vectorized
        [("vectorized", True), ("kernel", True)],     # scalar -> kernel
    ])
    def test_midrun_toggle_equivalent(self, flips):
        app = MASSTREE
        n = 800
        seed = 5
        ctx = make_context(app, seed, n)
        trace = Trace.generate_at_load(app, 0.6, n, seed)
        ref_calls, ref_core, _ = run_decisions(
            trace, Rubik(vectorized=False, kernel=False), ctx)
        start_scalar = flips[0] == ("vectorized", True)
        t_mid = float(trace.arrivals[n // 2])

        def flip(rubik):
            for attr, value in flips:
                setattr(rubik, attr, value)

        toggled = Rubik(vectorized=not start_scalar,
                        kernel=not start_scalar)
        calls, core, rubik = run_decisions(trace, toggled, ctx,
                                           at=(t_mid, flip))
        # Decision-equivalence makes the toggle invisible end to end —
        # which in particular pins equivalence from the toggle point on.
        assert calls == ref_calls
        assert meter_totals(core) == meter_totals(ref_core)
        if flips[-1] == ("kernel", True):
            stats = rubik.kernel_stats
            assert stats is not None and stats.decisions > 0

    @pytest.mark.native
    @skip_without_native
    @pytest.mark.parametrize("start,flip_to", [
        (True, "native"),      # Python kernel -> native mid-run
        ("native", True),      # native -> Python kernel mid-run
        ("native", False),     # native -> plain vectorized
        (False, "native"),     # vectorized -> native
    ])
    def test_midrun_native_toggle_equivalent(self, start, flip_to):
        """Toggling to/from the native kernel mid-run is invisible: the
        replacement kernel rebuilds its incremental state from the live
        queue and stays pinned to the scalar oracle."""
        app = MASSTREE
        n = 800
        seed = 5
        ctx = make_context(app, seed, n)
        trace = Trace.generate_at_load(app, 0.6, n, seed)
        ref_calls, ref_core, _ = run_decisions(
            trace, Rubik(vectorized=False, kernel=False), ctx)
        t_mid = float(trace.arrivals[n // 2])
        calls, core, rubik = run_decisions(
            trace, Rubik(kernel=start), ctx,
            at=(t_mid, lambda r: setattr(r, "kernel", flip_to)))
        assert calls == ref_calls
        assert meter_totals(core) == meter_totals(ref_core)
        assert rubik.decision_path == (
            {True: "kernel", False: "vectorized"}.get(flip_to, "native"))

    def test_toggle_back_and_forth_same_run(self):
        app = MASSTREE
        n = 900
        seed = 11
        ctx = make_context(app, seed, n)
        trace = Trace.generate_at_load(app, 0.8, n, seed)
        ref_calls, _, _ = run_decisions(
            trace, Rubik(vectorized=False, kernel=False), ctx)
        t1 = float(trace.arrivals[n // 3])
        t2 = float(trace.arrivals[2 * n // 3])
        rubik = Rubik()
        sim_flip_done = []

        def flip1(r):
            r.kernel = False
            r.vectorized = False

        calls = []
        sim = Simulator()
        core = Core(sim, ctx.dvfs, DEFAULT_CORE_POWER)
        orig = core.request_frequency
        core.request_frequency = lambda f: (calls.append(f), orig(f))[1]
        rubik.setup(sim, core, ctx)
        sim.schedule_entry(t1, (lambda: flip1(rubik)), priority=0)
        sim.schedule_entry(
            t2, (lambda: (setattr(rubik, "vectorized", True),
                          setattr(rubik, "kernel", True),
                          sim_flip_done.append(True))), priority=0)
        for req in trace.to_requests():
            sim.schedule_entry(req.arrival_time,
                               (lambda r=req: core.enqueue(r)), priority=1)
        sim.run()
        core.finalize(settle_dvfs=True)
        assert sim_flip_done
        assert calls == ref_calls


class TestKernelInternals:
    def test_kernel_stats_exposed_like_refresh_stats(self):
        ctx = make_context(MASSTREE, 3, 400)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 400, 3)
        _, _, rubik = run_decisions(trace, Rubik(), ctx)
        stats = rubik.kernel_stats
        assert isinstance(stats, KernelStats)
        d = stats.as_dict()
        # decisions is defined as the branch-counter sum; the
        # independent check is against the event count (one decision per
        # arrival + one per completion — a branch that forgot its
        # counter would make the total come up short).
        assert d["decisions"] == stats.decisions == 800

    def test_kernel_stats_none_when_kernel_off(self):
        ctx = make_context(MASSTREE, 3, 200)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 200, 3)
        _, _, rubik = run_decisions(trace, Rubik(kernel=False), ctx)
        assert rubik.kernel_stats is None

    def test_steady_state_refresh_carries_kernel_state(self):
        """Constant demand: every post-warmup refresh re-resolves to the
        same table pair, so the kernel is never invalidated by one."""
        import dataclasses as dc
        app = dc.replace(MASSTREE, service_cv=0.0, long_fraction=0.0)
        ctx = make_context(app, 21, 800)
        trace = Trace.generate_at_load(app, 0.5, 800, 21)
        _, _, rubik = run_decisions(trace, Rubik(), ctx)
        stats = rubik.kernel_stats
        assert rubik.refresh_stats.object_carries > 0
        assert stats.refresh_carries == rubik.refresh_stats.object_carries
        assert stats.invalidations_tables <= 1

    def test_cert_threshold_boundary(self):
        """Depths straddling CERT_MIN_QUEUE stay decision-equivalent."""
        assert CERT_MIN_QUEUE >= 2
        ctx = make_context(MASSTREE, 17, 500)
        # A load that hovers around the threshold depth.
        trace = Trace.generate_at_load(MASSTREE, 0.95, 500, 17)
        assert_paths_equivalent(trace, ctx)

    def test_kernel_rebuilt_per_setup(self):
        """setup() must drop the previous run's kernel (stale DVFS grid
        and stale epochs would otherwise leak across runs). A reused
        controller keeps its demand model, so the oracle is a *reused
        scalar* controller, not a fresh one."""
        ctx = make_context(MASSTREE, 3, 300)
        trace = Trace.generate_at_load(MASSTREE, 0.5, 300, 3)
        kern = Rubik()
        scal = Rubik(vectorized=False)
        run_decisions(trace, kern, ctx)
        run_decisions(trace, scal, ctx)
        first = kern._kernel
        assert first is not None
        calls_k, _, _ = run_decisions(trace, kern, ctx)
        calls_s, _, _ = run_decisions(trace, scal, ctx)
        assert kern._kernel is not first  # rebuilt by setup()
        assert calls_k == calls_s

    def test_quantized_nominal_floor_on_offgrid_nominal(self):
        """A nominal frequency off the grid floors at quantize_up of it,
        identically across paths."""
        from repro.config import DvfsConfig
        grid = (8e8, 1.2e9, 1.6e9, 2.0e9, 2.6e9, 3.4e9)
        dvfs = DvfsConfig(frequencies=grid, nominal_hz=2.4e9)
        ctx = SchemeContext(latency_bound_s=1e-4, dvfs=dvfs)
        per_path = {}
        for path in PATHS:
            sim = Simulator()
            core = Core(sim, dvfs, DEFAULT_CORE_POWER, initial_hz=3.4e9)
            calls = []
            orig = core.request_frequency
            core.request_frequency = lambda f, _c=calls, _o=orig: (
                _c.append(f), _o(f))[1]
            rubik = Rubik(**PATHS[path], feedback=False)
            rubik.setup(sim, core, ctx)
            rubik.tables = TargetTailTables(
                Histogram.point_mass(1e6, bucket_width=1e4),
                Histogram.point_mass(5e-3, bucket_width=1e-4))
            for k in range(6):
                sim.schedule_entry(
                    2e-5 * (k + 1),
                    (lambda i=k: core.enqueue(Request(
                        rid=i, arrival_time=sim.now,
                        compute_cycles=1e6, memory_time_s=5e-3))),
                    priority=1)
            sim.run()
            core.finalize(settle_dvfs=True)
            per_path[path] = calls
        for path in per_path:
            assert per_path[path] == per_path["scalar"], path
        assert 2.6e9 in per_path["scalar"]  # quantized-up nominal floor

"""Tests for the Histogram distribution engine (Rubik's statistical core)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import Histogram, _normal_quantile

positive_samples = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=2,
    max_size=200)


class TestConstruction:
    def test_from_samples_normalized(self):
        h = Histogram.from_samples([1, 2, 3, 4])
        assert h.pmf.sum() == pytest.approx(1.0)

    def test_default_bucket_count(self):
        h = Histogram.from_samples(list(range(1, 1000)))
        assert h.num_buckets == 128  # paper Sec. 4.2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([])

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([-1.0, 2.0])

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Histogram(0.0, [1.0])

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            Histogram(1.0, [0.5, -0.5])

    def test_all_zero_samples(self):
        h = Histogram.from_samples([0.0, 0.0])
        assert h.mean() <= 1.0

    def test_point_mass(self):
        h = Histogram.point_mass(5.0, bucket_width=1.0)
        assert h.quantile(0.99) == pytest.approx(6.0)  # upper bucket edge
        assert h.variance() == pytest.approx(0.0)

    def test_clamps_above_upper(self):
        h = Histogram.from_samples([1, 2, 100], num_buckets=10, upper=10)
        assert h.quantile(1.0) == pytest.approx(10.0, rel=0.01)


class TestMoments:
    def test_mean_close_to_sample_mean(self):
        samples = np.random.default_rng(0).lognormal(0, 0.5, 5000)
        h = Histogram.from_samples(samples)
        assert h.mean() == pytest.approx(samples.mean(), rel=0.02)

    def test_variance_close_to_sample_variance(self):
        samples = np.random.default_rng(1).lognormal(0, 0.5, 5000)
        h = Histogram.from_samples(samples)
        assert h.variance() == pytest.approx(samples.var(), rel=0.1)

    @given(positive_samples)
    @settings(max_examples=50, deadline=None)
    def test_variance_nonnegative(self, samples):
        h = Histogram.from_samples(samples)
        assert h.variance() >= 0


class TestQuantiles:
    def test_quantile_conservative(self):
        """Bucket-edge quantiles never under-estimate the true quantile."""
        samples = np.random.default_rng(2).lognormal(0, 1.0, 2000)
        h = Histogram.from_samples(samples)
        true_q = np.percentile(samples, 95)
        assert h.quantile(0.95) >= true_q - 1e-9

    def test_quantile_within_one_bucket(self):
        samples = np.random.default_rng(3).uniform(0, 10, 5000)
        h = Histogram.from_samples(samples)
        true_q = np.percentile(samples, 95)
        assert h.quantile(0.95) <= true_q + 2 * h.bucket_width

    @given(positive_samples, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone_in_q(self, samples, q):
        h = Histogram.from_samples(samples)
        assert h.quantile(q) <= h.quantile(min(1.0, q + 0.1)) + 1e-12

    def test_quantile_rejects_bad_q(self):
        h = Histogram.from_samples([1, 2])
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_cdf_at(self):
        h = Histogram(1.0, [0.25, 0.25, 0.5])
        assert h.cdf_at(-1) == 0.0
        assert h.cdf_at(0.5) == pytest.approx(0.25)
        assert h.cdf_at(100) == pytest.approx(1.0)


class TestConditioning:
    def test_zero_elapsed_is_identity(self):
        h = Histogram.from_samples([1, 2, 3, 4, 5])
        assert h.condition_on_elapsed(0.0) is h

    def test_conditioning_shifts_support(self):
        """P[S0 = c] = P[S = c + w | S > w]: mass moves toward zero."""
        h = Histogram(1.0, [0.0, 0.0, 0.5, 0.5])
        c = h.condition_on_elapsed(2.0)
        # remaining work is 0..2 buckets
        assert c.num_buckets == 2
        assert c.pmf[0] == pytest.approx(0.5)

    def test_conditioning_renormalizes(self):
        h = Histogram(1.0, [0.9, 0.05, 0.05])
        c = h.condition_on_elapsed(1.0)
        assert c.pmf.sum() == pytest.approx(1.0)

    def test_exhausted_returns_point_mass(self):
        h = Histogram(1.0, [1.0])
        c = h.condition_on_elapsed(100.0)
        assert c.num_buckets == 1

    def test_heavy_tail_conditioning_increases_mean_hazard(self):
        """For a heavy-tailed (lognormal) dist, conditioning on large
        elapsed work leaves substantial remaining work."""
        samples = np.random.default_rng(4).lognormal(0, 1.5, 20000)
        h = Histogram.from_samples(samples)
        c = h.condition_on_elapsed(float(np.percentile(samples, 90)))
        assert c.mean() > 0

    def test_rejects_negative_elapsed(self):
        h = Histogram.from_samples([1, 2])
        with pytest.raises(ValueError):
            h.condition_on_elapsed(-1.0)


class TestConvolution:
    def test_mean_additivity(self):
        """Mean of a convolution is the sum of means, up to the inherent
        half-bucket discretization bias per convolution."""
        a = Histogram.from_samples(np.random.default_rng(5).uniform(1, 5, 1000))
        b = Histogram(a.bucket_width, a.pmf.copy())
        c = a.convolve(b)
        assert c.mean() == pytest.approx(a.mean() + b.mean(),
                                         abs=a.bucket_width)

    def test_variance_additivity(self):
        a = Histogram.from_samples(np.random.default_rng(6).uniform(1, 5, 1000))
        c = a.convolve(a)
        assert c.variance() == pytest.approx(2 * a.variance(), rel=1e-6)

    def test_point_masses_add(self):
        a = Histogram.point_mass(2.0, 1.0)
        b = Histogram.point_mass(3.0, 1.0)
        c = a.convolve(b)
        # 2+3=5 at bucket indices (2+3=5), upper edge 6
        assert c.quantile(1.0) == pytest.approx(6.0)

    def test_fft_matches_direct(self):
        """FFT path (large supports) equals direct convolution."""
        rng = np.random.default_rng(7)
        pmf = rng.random(300)
        a = Histogram(1.0, pmf)
        direct = np.convolve(a.pmf, a.pmf)
        fft_result = a.convolve(a)
        np.testing.assert_allclose(fft_result.pmf, direct / direct.sum(),
                                   atol=1e-10)

    def test_mismatched_widths_rejected(self):
        a = Histogram(1.0, [1.0])
        b = Histogram(2.0, [1.0])
        with pytest.raises(ValueError):
            a.convolve(b)

    @given(positive_samples)
    @settings(max_examples=30, deadline=None)
    def test_convolution_preserves_mass(self, samples):
        h = Histogram.from_samples(samples, num_buckets=32)
        c = h.convolve(h)
        assert c.pmf.sum() == pytest.approx(1.0)


class TestRebucket:
    def test_noop_when_small(self):
        h = Histogram(1.0, [0.5, 0.5])
        assert h.rebucket(10) is h

    def test_coarsens_and_preserves_mass(self):
        h = Histogram(1.0, np.ones(100))
        r = h.rebucket(10)
        assert r.num_buckets == 10
        assert r.pmf.sum() == pytest.approx(1.0)

    def test_mean_approximately_preserved(self):
        samples = np.random.default_rng(8).uniform(0, 100, 5000)
        h = Histogram.from_samples(samples, num_buckets=128)
        r = h.rebucket(16)
        assert r.mean() == pytest.approx(h.mean(), rel=0.1)


class TestGaussianTail:
    def test_matches_moments(self):
        h = Histogram.from_samples(
            np.random.default_rng(9).normal(50, 5, 20000).clip(0))
        # 95th percentile of N(50, 5) = 50 + 1.645*5 = 58.2
        assert h.gaussian_tail(0.95) == pytest.approx(58.2, rel=0.05)

    def test_extra_moments(self):
        h = Histogram.point_mass(10.0, 1.0)
        t = h.gaussian_tail(0.95, extra_mean=100.0, extra_var=0.0)
        assert t == pytest.approx(110.5, abs=1.0)

    def test_never_negative(self):
        h = Histogram.point_mass(0.0, 1.0)
        assert h.gaussian_tail(0.05) >= 0.0


class TestFastConstructorAndCaches:
    """PR 1 fast paths: hot operators skip validation, public entry
    points must keep it; derived caches must stay consistent."""

    def test_public_constructor_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            Histogram(1.0, [0.5, -0.5])

    def test_public_constructor_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            Histogram(1.0, [0.0, 0.0])

    def test_public_constructor_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(0.0, [1.0])
        with pytest.raises(ValueError):
            Histogram(-1.0, [1.0])

    def test_public_constructor_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Histogram(1.0, [])
        with pytest.raises(ValueError):
            Histogram(1.0, [[0.5], [0.5]])

    def test_from_samples_still_validates(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([])
        with pytest.raises(ValueError):
            Histogram.from_samples([-1.0])
        with pytest.raises(ValueError):
            Histogram.from_samples([1.0], num_buckets=0)

    def test_internal_operators_produce_normalized_pmfs(self):
        h = Histogram.from_samples(
            np.random.default_rng(10).lognormal(0, 0.8, 4000))
        for derived in [h.condition_on_elapsed(h.quantile(0.5)),
                        h.convolve(h),
                        h.convolve(h).rebucket(16)]:
            assert derived.pmf.sum() == pytest.approx(1.0, abs=1e-12)
            assert np.all(derived.pmf >= 0)

    def test_cached_cdf_matches_fresh_cumsum(self):
        h = Histogram.from_samples(
            np.random.default_rng(11).uniform(0, 10, 3000))
        first = h.cumulative()
        np.testing.assert_array_equal(first, np.cumsum(h.pmf))
        # Second call returns the same (cached) array.
        assert h.cumulative() is first

    def test_quantile_consistent_after_cache(self):
        h = Histogram.from_samples(
            np.random.default_rng(12).uniform(0, 10, 3000))
        before = [h.quantile(q) for q in (0.1, 0.5, 0.95, 1.0)]
        h.cumulative()
        after = [h.quantile(q) for q in (0.1, 0.5, 0.95, 1.0)]
        assert before == after

    def test_fft_cache_reuse_matches_uncached(self):
        """Convolving repeatedly against the same base (the tail-table
        pattern) must give the same result as fresh operands."""
        rng = np.random.default_rng(13)
        base = Histogram(1.0, rng.random(200))
        acc_cached = base
        for _ in range(4):
            acc_cached = acc_cached.convolve(base)
        acc_fresh = Histogram(1.0, base.pmf.copy())
        for _ in range(4):
            acc_fresh = acc_fresh.convolve(Histogram(1.0, base.pmf.copy()))
        np.testing.assert_allclose(acc_cached.pmf, acc_fresh.pmf,
                                   rtol=0, atol=1e-15)

    def test_rfft_cache_keyed_by_size(self):
        h = Histogram(1.0, np.random.default_rng(14).random(100))
        f256 = h.rfft(256)
        f512 = h.rfft(512)
        assert f256.size == 129 and f512.size == 257
        assert h.rfft(256) is f256  # cached per size


class TestNormalQuantile:
    @pytest.mark.parametrize("q,z", [
        (0.5, 0.0), (0.95, 1.6449), (0.99, 2.3263), (0.05, -1.6449),
        (0.975, 1.9600), (0.001, -3.0902),
    ])
    def test_known_values(self, q, z):
        assert _normal_quantile(q) == pytest.approx(z, abs=1e-3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)
        with pytest.raises(ValueError):
            _normal_quantile(1.0)

    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, q):
        assert _normal_quantile(q) == pytest.approx(
            -_normal_quantile(1 - q), abs=1e-6)

"""Native-kernel build gate, fallback, and whole-run span tests (PR 6).

Three contracts beyond the 4-path decision-oracle sweep in
``test_decision_kernel.py``:

* the ``REPRO_NATIVE`` environment gate validates like
  ``REPRO_MAX_WORKERS`` (warn once per distinct invalid value, read as
  ``auto``) and ``0`` disables the native path even with a loaded
  library;
* a box where the library cannot load (simulated by a broken
  ``ctypes.CDLL``) warns once, then silently dispatches the Python
  kernel — and ``decision_path`` / ``kernel_stats`` report the path
  actually taken, never the wish;
* the whole-run C span loop (``run_trace`` handing the event loop to
  ``NativeRunSession``) is bitwise-identical to the Python event loop,
  and a pure-Python run under ``REPRO_NATIVE=0`` reproduces experiment
  outputs exactly (Fig. 6 spot-check).
"""

import warnings

import pytest

from repro.core._native import build
from repro.core.controller import Rubik
from repro.core.decision_kernel import DecisionKernel
from repro.experiments.common import make_context
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE

skip_without_native = pytest.mark.skipif(
    not build.available(),
    reason="native Rubik kernel library unavailable")


@pytest.fixture
def fresh_build_state():
    """Clear the build/load memo (and warn-once sets) around a test so
    it can exercise the failure and env-gate paths, then clear again so
    later tests re-probe the real library."""
    build._reset_for_tests()
    yield
    build._reset_for_tests()


def _small_run(rubik, seed=3, n=200, load=0.5):
    ctx = make_context(MASSTREE, seed, n)
    trace = Trace.generate_at_load(MASSTREE, load, n, seed)
    return run_trace(trace, rubik, ctx)


def _fingerprint(res):
    """Every externally visible field of a RunResult, for bitwise
    comparison (floats compared exactly, never approximately)."""
    return (
        [(r.rid, r.arrival_time, r.compute_cycles, r.memory_time_s,
          r.start_time, r.finish_time, r.progress, r.predicted_cycles)
         for r in res.requests],
        res.warmup, res.duration_s, res.energy_j, res.active_energy_j,
        res.idle_energy_j, res.busy_time_s, res.utilization,
        res.busy_freq_hist, res.dvfs_transitions, res.freq_history,
        res.segment_log, res.events_processed,
    )


class TestEnvGate:
    @pytest.mark.parametrize("raw", ["", "maybe", "-1"])
    def test_invalid_values_warn_once_and_read_auto(
            self, monkeypatch, fresh_build_state, raw):
        monkeypatch.setenv(build.NATIVE_ENV, raw)
        with pytest.warns(RuntimeWarning,
                          match="ignoring invalid REPRO_NATIVE"):
            assert build.env_mode() == "auto"
        # Warn-once per distinct value: the second read is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert build.env_mode() == "auto"

    def test_valid_values_parse(self, monkeypatch, fresh_build_state):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            monkeypatch.setenv(build.NATIVE_ENV, "0")
            assert build.env_mode() == "0"
            monkeypatch.setenv(build.NATIVE_ENV, "1")
            assert build.env_mode() == "1"
            monkeypatch.setenv(build.NATIVE_ENV, " AUTO ")
            assert build.env_mode() == "auto"
            monkeypatch.delenv(build.NATIVE_ENV)
            assert build.env_mode() == "auto"

    def test_zero_disables_dispatch(self, monkeypatch):
        """``REPRO_NATIVE=0`` wins even when the library is already
        loaded: the gate is re-read on every resolution."""
        monkeypatch.setenv(build.NATIVE_ENV, "0")
        assert build.load_library() is None
        assert not build.available()
        r = Rubik()
        assert r.decision_path == "kernel"
        res = _small_run(r)
        assert len(res.requests) == 200
        assert type(r._kernel) is DecisionKernel
        assert r.kernel_stats is not None
        assert r.kernel_stats.decisions == 400

    @pytest.mark.native
    @skip_without_native
    def test_zero_flips_a_live_controller(self, monkeypatch):
        monkeypatch.delenv(build.NATIVE_ENV, raising=False)
        r = Rubik()
        assert r.decision_path == "native"
        monkeypatch.setenv(build.NATIVE_ENV, "0")
        assert r.decision_path == "kernel"  # resolved per read


class TestFallback:
    def test_broken_cdll_warns_once_then_python_kernel(
            self, monkeypatch, fresh_build_state):
        """No loadable library: one RuntimeWarning, then every probe and
        every run silently uses the Python kernel."""
        monkeypatch.delenv(build.NATIVE_ENV, raising=False)

        def broken_cdll(path):
            raise OSError("simulated dlopen failure")

        monkeypatch.setattr(build.ctypes, "CDLL", broken_cdll)
        with pytest.warns(RuntimeWarning,
                          match="falling back to the Python kernel"):
            assert not build.available()
        # Warn-once: repeated probes stay silent (memoized failure).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not build.available()
            assert build.load_library() is None

        info = build.build_info()
        assert info["attempted"] and not info["loaded"]
        assert "dlopen failure" in info["error"]

        # decision_path / kernel_stats report the path actually taken.
        r = Rubik(kernel="native")
        assert r.kernel == "native"  # the configured wish...
        assert r.decision_path == "kernel"  # ...vs the actual path
        res = _small_run(r)
        assert len(res.requests) == 200
        assert type(r._kernel) is DecisionKernel
        assert r.kernel_stats is not None
        assert r.kernel_stats.decisions == 400

    def test_build_info_reports_success(self):
        if not build.available():
            pytest.skip("native Rubik kernel library unavailable")
        info = build.build_info()
        assert info["loaded"] and info["attempted"]
        assert info["path"] and info["error"] is None
        assert info["build_seconds"] is not None


@pytest.mark.native
@skip_without_native
class TestNativeSpan:
    """run_trace hands the whole event loop to the C span kernel."""

    def test_span_session_engages(self, monkeypatch):
        from repro.core._native import session as session_mod

        engaged = []
        orig_run = session_mod.NativeRunSession.run

        def spy(self):
            engaged.append(True)
            return orig_run(self)

        monkeypatch.setattr(session_mod.NativeRunSession, "run", spy)
        r = Rubik()
        res = _small_run(r)
        assert engaged, "native span session did not engage"
        assert len(res.requests) == 200
        assert r.kernel_stats is not None
        assert r.kernel_stats.decisions == 400

    @pytest.mark.parametrize("seed,load", [(7, 0.5), (21, 1.5), (42, 0.9)])
    def test_span_bitwise_identical_to_python_loop(self, seed, load):
        n = 500
        ctx = make_context(MASSTREE, seed, n)
        trace = Trace.generate_at_load(MASSTREE, load, n, seed)
        res_py = run_trace(trace, Rubik(kernel=True), ctx)
        res_nat = run_trace(trace, Rubik(kernel="native"), ctx)
        assert _fingerprint(res_nat) == _fingerprint(res_py)

    def test_span_with_instrumented_core(self):
        """Segment logging + frequency history export identically."""
        n = 400
        ctx = make_context(MASSTREE, 11, n)
        trace = Trace.generate_at_load(MASSTREE, 0.8, n, 11)
        kwargs = dict(log_segments=True, record_freq_history=True)
        res_py = run_trace(trace, Rubik(kernel=True), ctx, **kwargs)
        res_nat = run_trace(trace, Rubik(kernel="native"), ctx, **kwargs)
        assert res_nat.segment_log  # instrumentation actually ran
        assert res_nat.freq_history
        assert _fingerprint(res_nat) == _fingerprint(res_py)

    def test_span_kernel_stats_match_python_kernel(self):
        n = 500
        ctx = make_context(MASSTREE, 5, n)
        trace = Trace.generate_at_load(MASSTREE, 0.7, n, 5)
        r_py = Rubik(kernel=True)
        r_nat = Rubik(kernel="native")
        run_trace(trace, r_py, ctx)
        run_trace(trace, r_nat, ctx)
        assert r_nat.kernel_stats.as_dict() == r_py.kernel_stats.as_dict()


class TestFig6SpotCheck:
    def test_fig06_identical_with_and_without_native(self, monkeypatch):
        """The acceptance spot-check: a Fig. 6 cell computed under
        ``REPRO_NATIVE=0`` (pure Python) equals the default-path run
        exactly."""
        from repro.experiments.fig06_power_savings import run_fig6

        kwargs = dict(num_requests=400, seeds=(3,), loads=(0.3,),
                      apps=("masstree",), include=("Rubik",), processes=1)
        monkeypatch.delenv(build.NATIVE_ENV, raising=False)
        res_default = run_fig6(**kwargs)
        monkeypatch.setenv(build.NATIVE_ENV, "0")
        res_python = run_fig6(**kwargs)
        assert res_default.savings == res_python.savings

"""Resilient-executor tests: retry/timeout/lost-worker semantics, the
fault-free bitwise pin, and the SIGKILL recovery acceptance case.

Worker helpers are module-level (picklable). The crash helpers use
``os.kill`` directly — test code is outside the lint scope, and a real
SIGKILL (not a cooperative exit) is exactly what the executor must
survive.
"""

import os
import signal
import time

import pytest

from repro.perf import parallel_map, pools_created
from repro.perf.parallel import MAX_WORKERS_ENV
from repro.resilience import (
    CellFailure,
    FaultPlan,
    RetryPolicy,
    SweepStats,
    active_policy,
    faults,
    resilient_map,
    use_policy,
)


def _square(x):
    return x * x


def _fail_below(args):
    """Raise until ``attempt_file`` records enough attempts."""
    x, path, fail_attempts = args
    with open(path, "a") as fh:
        fh.write("x")
    attempts = os.path.getsize(path)
    if attempts <= fail_attempts:
        raise ValueError(f"transient #{attempts}")
    return x * x


def _always_fail(x):
    raise ValueError(f"permanent {x}")


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x * x


def _kill_once(args):
    """SIGKILL our own worker the first time the marked cell runs."""
    x, marker = args
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.01)
    return x * x


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 1 and policy.timeout_s is None

    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=-1),
        dict(timeout_s=0),
        dict(backoff_s=-1),
        dict(max_pool_losses=-1),
        dict(poll_interval_s=0),
        dict(grace_s=-0.1),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_deterministic_exponential_jittered(self):
        policy = RetryPolicy(backoff_s=0.1, seed=3)
        first = policy.backoff_for(2, 1)
        assert first == policy.backoff_for(2, 1)
        # Jitter keeps each step within [0.5, 1.5) of the base scale.
        assert 0.05 <= first < 0.15
        assert 0.1 <= policy.backoff_for(2, 2) < 0.3
        assert policy.backoff_for(2, 0) == 0.0
        assert RetryPolicy().backoff_for(2, 1) == 0.0

    def test_use_policy_scopes_activation(self):
        assert active_policy() is None
        policy = RetryPolicy(max_retries=3)
        with use_policy(policy):
            assert active_policy() is policy
        assert active_policy() is None


class TestSerialExecution:
    def test_matches_comprehension(self):
        stats = SweepStats()
        items = list(range(12))
        assert resilient_map(_square, items, processes=1,
                             stats=stats) == [x * x for x in items]
        assert stats.cells == 12 and stats.failures == 0
        assert stats.retries == 0 and not stats.degraded_serial

    def test_empty_items(self):
        assert resilient_map(_square, [], processes=1) == []

    def test_transient_failure_retried_then_recovers(self, tmp_path):
        counter = tmp_path / "attempts"
        stats = SweepStats()
        out = resilient_map(
            _fail_below, [(7, str(counter), 1)], processes=1,
            policy=RetryPolicy(max_retries=2), stats=stats)
        assert out == [49]
        assert stats.retries == 1 and stats.failures == 0

    def test_terminal_failure_is_cell_failure_with_traceback(self):
        stats = SweepStats()
        out = resilient_map(_fail_on_three, [3, 4], processes=1,
                            policy=RetryPolicy(max_retries=1),
                            stats=stats)
        assert out[1] == 16
        failure = out[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "exception" and failure.attempts == 2
        assert "ValueError: boom" in failure.error
        assert "_fail_on_three" in failure.traceback
        assert "after 2 attempt(s)" in str(failure)
        assert stats.failures == 1 and stats.retries == 1

    def test_injected_cell_raise_recovers_after_budget(self):
        plan = FaultPlan.parse("cell.raise@2")
        with faults.activate(plan):
            stats = SweepStats()
            out = resilient_map(_square, [1, 2, 3], processes=1,
                                policy=RetryPolicy(max_retries=1),
                                stats=stats)
        assert out == [1, 4, 9]
        assert stats.retries == 1 and stats.failures == 0

    def test_serial_never_fires_process_hooks(self):
        """worker.crash / worker.hang are worker-gated: a serial run must
        never kill or hang the driver process itself."""
        plan = FaultPlan.parse("worker.crash@0;worker.hang@1:times=9")
        with faults.activate(plan):
            assert resilient_map(_square, [1, 2], processes=1) == [1, 4]

    def test_env_cap_forces_serial_path(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        before = pools_created()
        assert resilient_map(_square, list(range(8)),
                             processes=4) == [x * x for x in range(8)]
        assert pools_created() == before


class TestPooledExecution:
    def test_fault_free_identical_to_parallel_map(self):
        items = list(range(10))
        stats = SweepStats()
        got = resilient_map(_square, items, processes=2, stats=stats)
        assert got == parallel_map(_square, items, processes=2)
        assert got == [x * x for x in items]
        assert (stats.retries, stats.failures, stats.timeouts,
                stats.worker_losses, stats.pool_rebuilds) == (0,) * 5
        assert not stats.degraded_serial

    def test_pooled_terminal_failure_keeps_sweep_alive(self):
        stats = SweepStats()
        out = resilient_map(_always_fail, [1, 2, 3], processes=2,
                            policy=RetryPolicy(max_retries=0),
                            stats=stats)
        assert all(isinstance(f, CellFailure) for f in out)
        assert [f.index for f in out] == [0, 1, 2]
        assert all("_always_fail" in f.traceback for f in out)
        assert stats.failures == 3 and stats.retries == 0

    def test_pooled_injected_raise_retries_and_recovers(self):
        plan = FaultPlan.parse("cell.raise@1")
        with faults.activate(plan):
            stats = SweepStats()
            out = resilient_map(_square, [5, 6, 7], processes=2,
                                policy=RetryPolicy(max_retries=1),
                                stats=stats)
        assert out == [25, 36, 49]
        assert stats.retries == 1 and stats.failures == 0

    def test_sigkilled_worker_recovered_with_one_rebuild(self, tmp_path):
        """Acceptance (satellite): SIGKILL a pool child mid-sweep. The
        sweep completes, the lost cell is retried exactly once, the
        surviving cells are bitwise-identical to a serial run, and
        ``pools_created`` reflects exactly one rebuild (initial pool +
        one replacement)."""
        marker = tmp_path / "killed"
        items = [(x, str(marker) if x == 0 else None)
                 for x in range(6)]
        serial = [x * x for x in range(6)]
        stats = SweepStats()
        before = pools_created()
        out = resilient_map(
            _kill_once, items, processes=2,
            policy=RetryPolicy(max_retries=2), stats=stats)
        assert out == serial
        assert marker.exists()
        assert stats.worker_losses == 1
        assert stats.pool_rebuilds == 1
        assert pools_created() - before == 2  # initial + one rebuild
        assert stats.retries == 1  # the lost cell, exactly once
        assert stats.failures == 0 and not stats.degraded_serial

    def test_crash_budget_exhaustion_degrades_to_serial(self):
        """A plan that kills every worker attempt forces rebuilds past
        max_pool_losses; the executor then degrades to in-process
        execution — where the worker-gated hook is inert — and still
        finishes every cell."""
        plan = FaultPlan.parse("worker.crash:p=1.0,times=99")
        with faults.activate(plan):
            stats = SweepStats()
            out = resilient_map(
                _square, list(range(6)), processes=2,
                policy=RetryPolicy(max_retries=8, max_pool_losses=1),
                stats=stats)
        assert out == [x * x for x in range(6)]
        assert stats.degraded_serial
        assert stats.pool_rebuilds == 2  # max_pool_losses + 1
        assert stats.worker_losses >= 2

    def test_hung_cell_soft_timeout_charged_and_pool_rebuilt(self):
        plan = FaultPlan.parse("worker.hang@1:times=9")
        with faults.activate(plan):
            stats = SweepStats()
            out = resilient_map(
                _square, [1, 2, 3], processes=2,
                policy=RetryPolicy(max_retries=1, timeout_s=0.5,
                                   grace_s=0.1),
                stats=stats)
        assert out[0] == 1 and out[2] == 9
        failure = out[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "timeout" and failure.attempts == 2
        assert stats.timeouts == 2
        assert stats.pool_rebuilds == 2  # one per timed-out attempt
        assert stats.failures == 1


class TestRunnerPolicyFlags:
    """The regenerate CLI's resilience flags construct the policy and
    route it into ``regenerate`` (driver execution is covered by the
    chaos test; here the wiring is checked without running drivers)."""

    @pytest.fixture()
    def captured(self, monkeypatch):
        from repro.experiments import runner

        calls = {}

        def fake_regenerate(names, **kwargs):
            calls.update(kwargs, names=names)
            return {}

        monkeypatch.setattr(runner, "regenerate", fake_regenerate)
        return calls

    def test_no_flags_means_no_policy(self, captured):
        from repro.experiments import runner

        assert runner.main(["fig06", "-n", "50"]) == 0
        assert captured["policy"] is None
        assert captured["keep_going"] is False

    def test_flags_build_policy(self, captured):
        from repro.experiments import runner

        assert runner.main(["fig06", "--keep-going", "--max-retries",
                            "3", "--cell-timeout", "2.5"]) == 0
        policy = captured["policy"]
        assert policy.max_retries == 3 and policy.timeout_s == 2.5
        assert captured["keep_going"] is True

    def test_keep_going_alone_activates_executor(self, captured):
        from repro.experiments import runner

        assert runner.main(["fig06", "--keep-going"]) == 0
        assert captured["policy"] is not None
        assert captured["policy"].max_retries == 1

"""Fault-plane unit tests: spec validation, plan grammar, trigger
determinism, and the never-ambient activation contract."""

import warnings

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
)


class TestFaultSpecValidation:
    def test_minimal_index_spec(self):
        spec = FaultSpec("cell.raise", index=3)
        assert spec.times == 1 and spec.delay_s == 0.0

    def test_unknown_hook_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault hook"):
            FaultSpec("worker.explode", index=0)

    def test_no_trigger_rejected(self):
        with pytest.raises(FaultPlanError, match="exactly one trigger"):
            FaultSpec("cell.raise")

    def test_two_triggers_rejected(self):
        with pytest.raises(FaultPlanError, match="exactly one trigger"):
            FaultSpec("cell.raise", index=1, nth=2)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(index=-1), "index"),
        (dict(nth=0), "nth"),
        (dict(p=1.5), "p trigger"),
        (dict(index=0, times=0), "times"),
        (dict(index=0, delay_s=-0.1), "delay_s"),
    ])
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(FaultPlanError, match=match):
            FaultSpec("cell.raise", **kwargs)


class TestPlanGrammar:
    def test_docstring_example(self):
        plan = FaultPlan.parse(
            "seed=7;worker.crash@0:delay=0.3;cell.raise@3:times=9;"
            "worker.hang@5:times=9")
        assert plan.seed == 7
        assert [f.hook for f in plan.faults] == [
            "worker.crash", "cell.raise", "worker.hang"]
        assert plan.faults[0].delay_s == 0.3
        assert plan.faults[1].index == 3 and plan.faults[1].times == 9

    def test_nth_and_p_options(self):
        plan = FaultPlan.parse("artifact.corrupt_read:nth=2;"
                               "native.load_fail:p=0.25,times=3")
        assert plan.faults[0].nth == 2
        assert plan.faults[1].p == 0.25 and plan.faults[1].times == 3

    def test_empty_clauses_and_whitespace_ignored(self):
        plan = FaultPlan.parse(" ; cell.raise@1 ;; seed=2 ")
        assert plan.seed == 2 and len(plan.faults) == 1

    @pytest.mark.parametrize("spec", [
        "seed=x",
        "cell.raise@x",
        "cell.raise@1:bogus=3",
        "cell.raise@1:times=x",
        "cell.raise@1:p",
        "worker.explode@1",
        "cell.raise",  # no trigger
    ])
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_for_hook_filters(self):
        plan = FaultPlan.parse("cell.raise@1;worker.hang@2;cell.raise@3")
        assert [f.index for f in plan.for_hook("cell.raise")] == [1, 3]


class TestUnitInterval:
    def test_deterministic_and_bounded(self):
        a = faults.unit_interval(7, "cell.raise", 3, 0)
        assert a == faults.unit_interval(7, "cell.raise", 3, 0)
        assert 0.0 <= a < 1.0

    def test_key_sensitivity(self):
        assert faults.unit_interval(7, "x") != faults.unit_interval(8, "x")


class TestEnvGate:
    def test_unset_means_no_plan(self):
        assert faults.env_plan() is None
        assert faults.active_plan() is None

    def test_valid_env_plan_parses(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=3;cell.raise@0")
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 3

    def test_blank_value_warns_once_and_reads_unset(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "   ")
        with pytest.warns(RuntimeWarning, match=FAULT_PLAN_ENV):
            assert faults.env_plan() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert faults.env_plan() is None

    def test_unparsable_value_warns_once_and_reads_unset(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "worker.explode@1")
        with pytest.warns(RuntimeWarning,
                          match=r"ignoring invalid REPRO_FAULT_PLAN"):
            assert faults.env_plan() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert faults.env_plan() is None

    def test_explicit_activation_beats_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=1;cell.raise@0")
        override = FaultPlan.parse("seed=99")
        with faults.activate(override):
            assert faults.active_plan() is override
        assert faults.active_plan().seed == 1


class TestTriggers:
    def test_no_plan_every_consult_is_noop(self):
        for hook in faults.HOOKS:
            assert faults.should_fire(hook, index=0) is None
            faults.maybe_inject(hook, index=0)  # must not raise

    def test_unknown_hook_consult_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault hook"):
            faults.should_fire("cell.explode")

    def test_index_trigger_sabotages_first_times_attempts(self):
        plan = FaultPlan.parse("cell.raise@2:times=2")
        with faults.activate(plan):
            assert faults.should_fire("cell.raise", index=1) is None
            assert faults.should_fire("cell.raise", index=2, attempt=0)
            assert faults.should_fire("cell.raise", index=2, attempt=1)
            # Budget spent: the retried cell recovers deterministically.
            assert faults.should_fire(
                "cell.raise", index=2, attempt=2) is None

    def test_nth_trigger_window(self):
        plan = FaultPlan.parse("native.load_fail:nth=2,times=2")
        with faults.activate(plan):
            fired = [faults.should_fire("native.load_fail") is not None
                     for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_activation_resets_consult_counters(self):
        plan = FaultPlan.parse("native.load_fail:nth=1")
        with faults.activate(plan):
            assert faults.should_fire("native.load_fail")
        with faults.activate(plan):
            assert faults.should_fire("native.load_fail")

    def test_p_trigger_deterministic_and_bounded_by_times(self):
        plan = FaultPlan.parse("seed=5;cell.raise:p=1.0,times=2")
        with faults.activate(plan):
            first = [faults.should_fire("cell.raise", index=i) is not None
                     for i in range(4)]
        with faults.activate(plan):
            second = [faults.should_fire("cell.raise", index=i) is not None
                      for i in range(4)]
        assert first == second == [True, True, False, False]

    def test_p_zero_never_fires(self):
        plan = FaultPlan.parse("cell.raise:p=0.0")
        with faults.activate(plan):
            assert all(faults.should_fire("cell.raise", index=i) is None
                       for i in range(20))

    def test_maybe_inject_raises_injected_fault(self):
        plan = FaultPlan.parse("cell.raise@4")
        with faults.activate(plan):
            with pytest.raises(InjectedFault, match="cell index 4"):
                faults.maybe_inject("cell.raise", index=4)


class TestLibraryHooks:
    def test_native_loader_falls_back_to_python(self):
        """An injected loader failure rides the existing warn-once
        Python-kernel fallback instead of breaking the simulator."""
        from repro.core._native import build

        build._reset_for_tests()
        try:
            plan = FaultPlan.parse("native.load_fail:nth=1")
            with faults.activate(plan):
                with pytest.warns(RuntimeWarning, match="falling back"):
                    assert build.load_library() is None
        finally:
            build._reset_for_tests()

    def test_corrupt_read_warns_deletes_and_recomputes(self, tmp_path):
        from repro.experiments.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        store.put("fig06", "f" * 16, {"v": 1})
        plan = FaultPlan.parse("artifact.corrupt_read:nth=1")
        with faults.activate(plan):
            with pytest.warns(RuntimeWarning, match="corrupt"):
                found, _ = store.get("fig06", "f" * 16)
        assert not found  # entry deleted: next run recomputes
        found, value = store.get("fig06", "f" * 16)
        assert not found and store.stats()["misses"] >= 2

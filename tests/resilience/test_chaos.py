"""Chaos acceptance test (ISSUE 9): the fig06 subset under a FaultPlan
mixing one worker crash, one hanging cell, and one injected cell
exception — the sweep completes, reports exactly the injected failures,
and a fault-free resume pass recomputes only the failed cells, yielding
bitwise-identical results to a run that never saw a fault.
"""

import dataclasses

import pytest

from repro.experiments import artifacts, runner
from repro.experiments.fig06_power_savings import run_fig6
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    SweepFailure,
    faults,
    use_policy,
)

APPS = ("masstree", "xapian")
LOADS = (0.3, 0.4, 0.5)
NUM_REQUESTS = 80
SCHEMES = ("Rubik",)

# Cells flatten app-major, load-minor (one seed): index 0 is
# masstree@30%, index 3 is xapian@30%, index 5 is xapian@50%.
#   cell 0: its worker crashes mid-cell (recovers on retry);
#   cell 3: raises on every attempt (terminal exception);
#   cell 5: hangs on every attempt (terminal soft timeout).
PLAN = FaultPlan.parse(
    "seed=7;worker.crash@0:delay=0.15;cell.raise@3:times=9;"
    "worker.hang@5:times=9")

POLICY = RetryPolicy(max_retries=1, timeout_s=2.0)


def _run_subset(processes=2):
    return run_fig6(num_requests=NUM_REQUESTS, seeds=(1,), loads=LOADS,
                    apps=APPS, include=SCHEMES, processes=processes)


class TestChaosSweep:
    def test_chaos_run_then_resume_matches_fault_free(self):
        # Fault-free baseline, no store: the ground truth.
        baseline = _run_subset()

        store = artifacts.default_store()
        with artifacts.activate(), use_policy(POLICY):
            with faults.activate(PLAN):
                with pytest.raises(SweepFailure) as excinfo:
                    _run_subset()

            # Exactly the injected failures, nothing else.
            failure = excinfo.value
            assert failure.driver == "fig06" and failure.total == 6
            by_index = {f.index: f for f in failure.failures}
            assert sorted(by_index) == [3, 5]
            assert by_index[3].kind == "exception"
            assert "InjectedFault" in by_index[3].error
            assert by_index[5].kind == "timeout"
            assert "fig06" in failure.summary()

            # The crashed/clean cells were persisted before the raise.
            assert store.cached_cells("fig06") == 4
            mid = store.stats()

            # Resume, fault-free: only the two failed cells recompute.
            resumed = _run_subset()
            after = store.stats()
            assert after["hits"] - mid["hits"] == 4
            assert after["misses"] - mid["misses"] == 2
            assert store.cached_cells("fig06") == 6

        assert resumed.savings == baseline.savings
        assert resumed.loads == baseline.loads
        assert resumed.schemes == baseline.schemes


@dataclasses.dataclass(frozen=True)
class _FakeSpec:
    name: str
    fail: bool
    aliases: tuple = ()

    def run(self, num_requests=None):
        if self.fail:
            raise SweepFailure(self.name, [], 4)
        return f"{self.name}: ok"


class TestRegenerateKeepGoing:
    @pytest.fixture()
    def fake_registry(self, monkeypatch):
        specs = {"alpha": _FakeSpec("alpha", fail=True),
                 "beta": _FakeSpec("beta", fail=False)}
        monkeypatch.setattr(runner, "EXPERIMENTS", specs)
        return specs

    def test_keep_going_runs_remaining_drivers(self, fake_registry):
        with pytest.raises(runner.RegenerationFailed) as excinfo:
            runner.regenerate(["alpha", "beta"], keep_going=True)
        failed = excinfo.value
        assert set(failed.failures) == {"alpha"}
        assert failed.reports == {"beta": "beta: ok"}
        assert "alpha" in failed.summary()

    def test_default_aborts_after_first_failure(self, fake_registry):
        with pytest.raises(runner.RegenerationFailed) as excinfo:
            runner.regenerate(["alpha", "beta"], keep_going=False)
        assert excinfo.value.reports == {}  # beta never ran

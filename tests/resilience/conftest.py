"""Resilience-test fixtures: fresh fault-plane/policy state per test.

The fault plane keeps module-level activation and trigger state
(deliberately — consult counters must span a whole activation), and the
chaos tests drive the artifact store; both would leak between tests
without isolation. Every test here gets a clean plane, no ambient
policy, no ``REPRO_FAULT_PLAN``, and a per-test store root.
"""

import pytest

from repro.experiments import artifacts
from repro.resilience import execution, faults


@pytest.fixture(autouse=True)
def fresh_fault_plane(monkeypatch):
    """No active plan/policy, empty trigger counters, forgotten env
    memos — the state a fault-free process starts with."""
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    monkeypatch.setattr(faults, "_active_plan", None)
    monkeypatch.setattr(faults, "_counts", {})
    monkeypatch.setattr(faults, "_fires", {})
    monkeypatch.setattr(faults, "_env_cache", {})
    monkeypatch.setattr(faults, "_warned_env_values", set())
    monkeypatch.setattr(execution, "_active_policy", None)
    yield


@pytest.fixture(autouse=True)
def isolated_artifact_store(tmp_path, monkeypatch):
    """Per-test store root (same contract as tests/experiments)."""
    root = tmp_path / "artifacts"
    monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, str(root))
    monkeypatch.delenv(artifacts.ARTIFACT_CACHE_ENV, raising=False)
    monkeypatch.setattr(artifacts, "_warned_env_values", set())
    monkeypatch.setattr(artifacts, "_warned_corrupt_paths", set())
    monkeypatch.setattr(artifacts, "_default_stores", {})
    monkeypatch.setattr(artifacts, "_active_store", None)
    yield root

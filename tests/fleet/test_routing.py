"""Power-aware router: conservation, caps, determinism, NaN overloads."""

import math

import numpy as np
import pytest

from repro.fleet.routing import (
    ANCHOR_LOADS,
    CAPACITY_CAP,
    PowerCurve,
    build_power_curves,
    route_epoch,
    run_routed_fleet,
)
from repro.workloads.apps import app_names

CURVE = PowerCurve(
    app="toy",
    loads=(0.05, 0.2, 0.4, 0.6, 0.9),
    powers_w=(40.0, 50.0, 65.0, 85.0, 130.0),
    tails_s=(0.001, 0.002, 0.004, 0.008, 0.020),
    freqs_hz=(1.2e9, 1.6e9, 2.0e9, 2.4e9, 3.0e9),
)


class TestPowerCurve:
    def test_interpolation_hits_anchors(self):
        assert CURVE.power_at(np.array(0.4)) == 65.0
        assert CURVE.tail_at(np.array(0.9)) == 0.020
        assert CURVE.freq_at(np.array(0.05)) == 1.2e9

    def test_segments_span_zero_to_last_anchor(self):
        segs = CURVE.segments()
        assert segs[0] == (0.0, 0.05, 0.0)  # flat below first anchor
        assert segs[-1][1] == 0.9
        for (_, hi, _), (lo, _, _) in zip(segs, segs[1:]):
            assert hi == lo

    def test_last_anchor_is_the_capacity_cap(self):
        # The router must never extrapolate: a flat segment past the
        # last anchor would read as free capacity.
        assert ANCHOR_LOADS[-1] == CAPACITY_CAP


class TestRouteEpoch:
    def _route(self, demands, eff=None, cap=CAPACITY_CAP):
        demands = np.asarray(demands, dtype=float)
        n = demands.shape[0]
        app_idx = np.zeros(n, dtype=np.int32)
        eff = np.ones(n) if eff is None else np.asarray(eff, dtype=float)
        return route_epoch(demands, app_idx, eff, (CURVE,), cap=cap)

    def test_demand_conserved_when_fleet_has_capacity(self):
        routed, shed = self._route([0.5, 0.1, 0.3])
        assert shed == 0.0
        assert math.isclose(routed.sum(), 0.9, rel_tol=0, abs_tol=1e-9)

    def test_cap_respected_and_excess_shed(self):
        routed, shed = self._route([1.2, 1.2], cap=0.9)
        assert np.all(routed <= 0.9 + 1e-12)
        assert math.isclose(shed, 0.6, rel_tol=0, abs_tol=1e-9)

    def test_prefers_efficient_servers(self):
        # Same curve, server 1 burns 20% more per unit load: beyond the
        # shared flat segment, load concentrates on server 0.
        routed, _ = self._route([0.4, 0.4], eff=[1.0, 1.2])
        assert routed[0] > routed[1]

    def test_deterministic_ties_break_by_server_index(self):
        a, _ = self._route([0.3, 0.3, 0.3])
        b, _ = self._route([0.3, 0.3, 0.3])
        assert np.array_equal(a, b)
        # Identical servers: the flat first segment fills in index
        # order, so the allocation is monotone non-increasing.
        assert all(a[i] >= a[i + 1] - 1e-12 for i in range(len(a) - 1))

    def test_demand_never_crosses_app_groups(self):
        demands = np.array([1.0, 0.0])
        app_idx = np.array([0, 1], dtype=np.int32)
        routed, shed = route_epoch(demands, app_idx, np.ones(2),
                                   (CURVE, CURVE), cap=0.9)
        assert routed[1] == 0.0  # app 1's idle server absorbs nothing
        assert math.isclose(shed, 0.1, rel_tol=0, abs_tol=1e-9)


class TestBuildPowerCurves:
    def test_curves_cover_every_app_and_anchor(self):
        curves = build_power_curves(seed=21, requests_per_core=100)
        assert sorted(curves) == sorted(app_names())
        for curve in curves.values():
            assert curve.loads == ANCHOR_LOADS
            assert len(curve.powers_w) == len(ANCHOR_LOADS)
            # Server power grows with load.
            assert curve.powers_w[-1] > curve.powers_w[0] > 0


class TestRoutedScenario:
    def test_routing_saves_energy_and_absorbs_overload(self):
        result = run_routed_fleet(num_servers=40, seed=21, num_epochs=3,
                                  num_shards=2, requests_per_core=150)
        assert result.energy_savings_frac > 0
        assert result.routed_energy_j < result.baseline_energy_j
        # The heavy-tailed demand overloads some affinity servers; the
        # router redistributes, so it sheds no more than the baseline.
        assert result.baseline_shed_load > 0
        assert result.routed_shed_load <= result.baseline_shed_load
        assert result.overloaded_servers > 0
        assert result.overloaded_servers == result.state.overloaded_count()
        # NaN tails are counted, never averaged.
        assert math.isfinite(result.baseline_tail_s)
        assert math.isfinite(result.routed_tail_s)

    def test_final_epoch_state_is_consistent(self):
        result = run_routed_fleet(num_servers=30, seed=21, num_epochs=2,
                                  num_shards=3, requests_per_core=150)
        state = result.state
        assert state.num_servers == 30
        n_apps = len(app_names())
        assert np.array_equal(state.app_idx,
                              np.arange(30) % n_apps)
        assert np.all(state.load <= CAPACITY_CAP + 1e-12)
        assert np.all(state.seg_power_w > 0)

"""Seed-derivation contract: logical coordinates, independent
namespaces, process-stable values."""

import numpy as np
import pytest

from repro.fleet import seeding


class TestSeedDerivation:
    def test_deterministic_across_calls(self):
        assert seeding.shard_seed(21, 3) == seeding.shard_seed(21, 3)
        assert seeding.server_seed(21, 3) == seeding.server_seed(21, 3)

    def test_pinned_values(self):
        # SHA-256 derivations are interpreter/process independent;
        # pin one value per namespace so an accidental scheme change
        # (which would silently invalidate every fleet artifact) trips.
        assert seeding.shard_seed(21, 0) == 491088045088343317
        assert seeding.server_seed(21, 0) == 2792034451871622507

    def test_namespaces_are_independent(self):
        # seed+index arithmetic would alias shard (7, 1) with server
        # (6, 2); the tagged digests must not.
        assert seeding.shard_seed(7, 1) != seeding.server_seed(7, 1)
        assert seeding.shard_seed(7, 1) != seeding.shard_seed(6, 2)

    def test_distinct_indices_distinct_seeds(self):
        seeds = {seeding.server_seed(21, i) for i in range(256)}
        assert len(seeds) == 256

    def test_seeds_fit_numpy_range(self):
        for i in (0, 1, 999_999):
            s = seeding.server_seed(21, i)
            assert 0 <= s < 2 ** 63
            np.random.default_rng(s)  # accepts without overflow

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            seeding.shard_seed(21, -1)

    def test_rng_constructors_reproduce_streams(self):
        a = seeding.server_rng(21, 5).random(4)
        b = seeding.server_rng(21, 5).random(4)
        c = seeding.server_rng(21, 6).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.array_equal(seeding.shard_rng(21, 2).random(4),
                              seeding.shard_rng(21, 2).random(4))

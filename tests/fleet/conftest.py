"""Fleet-test fixtures: clean fault plane + per-test artifact store.

The fleet chaos tests drive the artifact store and the fault plane the
same way tests/resilience does; the invariance tests must never see an
ambient store/policy/plan, or a cached cell could mask a divergence.
Same contract as tests/resilience/conftest.py.
"""

import pytest

from repro.experiments import artifacts
from repro.resilience import execution, faults


@pytest.fixture(autouse=True)
def fresh_fault_plane(monkeypatch):
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    monkeypatch.setattr(faults, "_active_plan", None)
    monkeypatch.setattr(faults, "_counts", {})
    monkeypatch.setattr(faults, "_fires", {})
    monkeypatch.setattr(faults, "_env_cache", {})
    monkeypatch.setattr(faults, "_warned_env_values", set())
    monkeypatch.setattr(execution, "_active_policy", None)
    yield


@pytest.fixture(autouse=True)
def isolated_artifact_store(tmp_path, monkeypatch):
    root = tmp_path / "artifacts"
    monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, str(root))
    monkeypatch.delenv(artifacts.ARTIFACT_CACHE_ENV, raising=False)
    monkeypatch.setattr(artifacts, "_warned_env_values", set())
    monkeypatch.setattr(artifacts, "_warned_corrupt_paths", set())
    monkeypatch.setattr(artifacts, "_default_stores", {})
    monkeypatch.setattr(artifacts, "_active_store", None)
    yield root

"""Shard-count invariance suite (docs/performance.md invariants 21/22).

The fleet contract: an N-shard run is bitwise-identical to the 1-shard
reference, for any N, serial or pooled — the same way serial-vs-pool is
pinned for every driver. Small sweep sizes keep this tier-1."""

import pytest

from repro.coloc.datacenter import (
    compare_datacenters,
    datacenter_defaults,
    reference_comparison,
)
from repro.experiments.configs import CONFIGS
from repro.fleet import run_datacenter_fleet, run_routed_fleet

MIXES = 1
RPC = 300
LOAD = 0.3

ROUTED = dict(num_servers=30, seed=21, num_epochs=3,
              requests_per_core=150)


class TestDatacenterFleetInvariance:
    def test_fleet_matches_small_fleet_oracle_bitwise(self):
        # The refactor's pin: the sharded path reproduces the original
        # inline loop exactly — equality, not tolerance.
        oracle = reference_comparison(LOAD, num_mixes=MIXES,
                                      requests_per_core=RPC)
        fleet = compare_datacenters(LOAD, num_mixes=MIXES,
                                    requests_per_core=RPC, num_shards=1)
        assert fleet == oracle

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_shard_count_invariant(self, num_shards):
        one = run_datacenter_fleet(LOAD, num_mixes=MIXES,
                                   requests_per_core=RPC, num_shards=1)
        many = run_datacenter_fleet(LOAD, num_mixes=MIXES,
                                    requests_per_core=RPC,
                                    num_shards=num_shards)
        assert many.equals(one)

    def test_serial_vs_pool_bitwise(self):
        serial = run_datacenter_fleet(LOAD, num_mixes=MIXES,
                                      requests_per_core=RPC,
                                      num_shards=4, processes=1)
        pooled = run_datacenter_fleet(LOAD, num_mixes=MIXES,
                                      requests_per_core=RPC,
                                      num_shards=4, processes=2)
        assert pooled.equals(serial)

    def test_state_layout_is_mix_major_app_minor(self):
        state = run_datacenter_fleet(LOAD, num_mixes=2,
                                     requests_per_core=150,
                                     num_shards=3)
        n_apps = int(state.app_idx.max()) + 1
        for i in range(state.num_servers):
            assert state.app_idx[i] == i % n_apps
            assert state.mix_idx[i] == i // n_apps


class TestRoutedFleetInvariance:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_shard_count_invariant(self, num_shards):
        one = run_routed_fleet(num_shards=1, **ROUTED)
        many = run_routed_fleet(num_shards=num_shards, **ROUTED)
        assert many.equals(one)

    def test_serial_vs_pool_bitwise(self):
        serial = run_routed_fleet(num_shards=2, processes=1, **ROUTED)
        pooled = run_routed_fleet(num_shards=2, processes=2, **ROUTED)
        assert pooled.equals(serial)

    def test_seed_changes_the_fleet(self):
        base = run_routed_fleet(num_shards=2, **ROUTED)
        other = run_routed_fleet(num_shards=2,
                                 **{**ROUTED, "seed": 22})
        assert not base.state.equals(other.state)


class TestDefaultsFromConfig:
    def test_defaults_source_from_fig16_config(self):
        config = CONFIGS["fig16"]
        assert datacenter_defaults() == (
            config.extra("num_mixes"),
            config.extra("default_requests_per_core"))

    def test_explicit_args_pass_through(self):
        assert datacenter_defaults(2, 500) == (2, 500)

    def test_compare_datacenters_defaults_are_config_sourced(self):
        # The old hard-coded defaults (4 mixes / 1200 requests)
        # disagreed with the fig16 driver's cells; both arguments now
        # default to None and resolve through datacenter_defaults.
        import inspect

        sig = inspect.signature(compare_datacenters)
        assert sig.parameters["num_mixes"].default is None
        assert sig.parameters["requests_per_core"].default is None

"""FleetState SoA layout and the shard partition helper."""

import numpy as np
import pytest

from repro.fleet.state import FIELDS, FleetState, shard_bounds


def _filled(n, offset=0):
    state = FleetState.empty(n)
    for k, (name, _) in enumerate(FIELDS):
        getattr(state, name)[:] = np.arange(n) + offset + k
    return state


class TestFleetState:
    def test_empty_is_visibly_unfilled(self):
        state = FleetState.empty(3)
        assert state.num_servers == 3
        assert np.all(state.app_idx == -1)
        assert np.all(state.mix_idx == -1)
        assert np.all(state.scheme_idx == -1)
        assert np.all(np.isnan(state.lc_tail_s))
        assert np.all(state.seg_power_w == 0.0)

    def test_mismatched_field_lengths_rejected(self):
        arrays = {name: np.zeros(3 if name != "load" else 4,
                                 dtype=dtype)
                  for name, dtype in FIELDS}
        with pytest.raises(ValueError, match="expected shape"):
            FleetState(**arrays)

    def test_slice_concat_roundtrip(self):
        fleet = _filled(10)
        parts = [fleet.slice(lo, hi)
                 for lo, hi in shard_bounds(10, 3)]
        assert [p.num_servers for p in parts] == [4, 3, 3]
        assert FleetState.concat(parts).equals(fleet)

    def test_concat_empty_is_empty_fleet(self):
        assert FleetState.concat([]).num_servers == 0

    def test_equals_is_nan_aware_and_strict(self):
        a, b = _filled(4), _filled(4)
        a.lc_tail_s[2] = np.nan
        b.lc_tail_s[2] = np.nan
        assert a.equals(b)
        b.seg_power_w[0] += 1e-12
        assert not a.equals(b)

    def test_nan_aggregation(self):
        state = FleetState.empty(4)
        state.lc_tail_s[:] = (1.0, np.nan, 3.0, np.nan)
        assert state.nanmean("lc_tail_s") == 2.0
        assert state.overloaded_count() == 2
        state.lc_tail_s[:] = np.nan
        assert np.isnan(state.nanmean("lc_tail_s"))
        assert state.overloaded_count() == 4


class TestShardBounds:
    def test_partition_covers_contiguously(self):
        for n, k in ((10, 3), (2000, 7), (5, 5), (1, 4)):
            bounds = shard_bounds(n, k)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, hi), (lo2, _) in zip(bounds, bounds[1:]):
                assert hi == lo2
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1  # balanced
            assert min(sizes) >= 1               # clamped, never empty

    def test_zero_servers(self):
        assert shard_bounds(0, 4) == []

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_bounds(10, 0)
        with pytest.raises(ValueError, match="num_servers"):
            shard_bounds(-1, 2)

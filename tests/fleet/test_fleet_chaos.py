"""Fleet chaos test (ISSUE 10): a worker crash mid-fleet-sweep kills
one shard terminally; the surviving shards are already persisted, and a
fault-free resume recomputes *only* the lost shard, bitwise-identical
to a run that never saw a fault."""

import pytest

from repro.experiments import artifacts
from repro.fleet import run_datacenter_fleet
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    SweepFailure,
    faults,
    use_policy,
)

MIXES = 2          # 10 representative servers over 4 shard cells
SHARDS = 4
RPC = 150
LOAD = 0.3

#: Shard cell 1 loses its worker on its only attempt (max_retries=0
#: makes the crash terminal, forcing the resume-from-store workflow).
PLAN = FaultPlan.parse("seed=7;worker.crash@1:delay=0.1")
POLICY = RetryPolicy(max_retries=0, timeout_s=5.0)


def _run_fleet(processes=2):
    return run_datacenter_fleet(LOAD, num_mixes=MIXES,
                                requests_per_core=RPC,
                                num_shards=SHARDS, processes=processes)


class TestFleetChaos:
    def test_crash_then_resume_recomputes_only_lost_shard(self):
        # Fault-free baseline, no store: the ground truth.
        baseline = _run_fleet()

        store = artifacts.default_store()
        with artifacts.activate(), use_policy(POLICY):
            with faults.activate(PLAN):
                with pytest.raises(SweepFailure) as excinfo:
                    _run_fleet()

            # Exactly the crashed shard failed, as a worker loss.
            failure = excinfo.value
            assert failure.driver == "fleet" and failure.total == SHARDS
            assert [f.index for f in failure.failures] == [1]
            assert failure.failures[0].kind == "worker-lost"

            # The surviving shards were persisted before the raise.
            assert store.cached_cells("fleet") == SHARDS - 1
            mid = store.stats()

            # Resume, fault-free: only the lost shard recomputes.
            resumed = _run_fleet()
            after = store.stats()
            assert after["hits"] - mid["hits"] == SHARDS - 1
            assert after["misses"] - mid["misses"] == 1
            assert store.cached_cells("fleet") == SHARDS

        assert resumed.equals(baseline)

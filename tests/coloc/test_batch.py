"""Tests for batch app models and mixes."""

import pytest

from repro.config import DEFAULT_DVFS
from repro.coloc.batch import (
    BatchAppProfile,
    BatchTask,
    SPEC_APPS,
    SPEC_BY_NAME,
    generate_mixes,
)
from repro.power.model import DEFAULT_CORE_POWER


class TestBatchAppProfile:
    def test_throughput_formula(self):
        app = BatchAppProfile("x", cpi_core=1.0, mem_ns_per_instr=0.0)
        assert app.throughput(2e9) == pytest.approx(2e9)

    def test_memory_bound_saturates(self):
        """Memory-heavy apps barely speed up with frequency."""
        mcf = SPEC_BY_NAME["mcf"]
        speedup = mcf.throughput(3.4e9) / mcf.throughput(0.8e9)
        assert speedup < 1.5

    def test_compute_bound_scales(self):
        namd = SPEC_BY_NAME["namd"]
        speedup = namd.throughput(3.4e9) / namd.throughput(0.8e9)
        assert speedup > 3.0

    def test_ipc_range_realistic(self):
        """Nominal IPCs span the SPEC range (~0.2 to ~2.4)."""
        ipcs = [a.ipc(2.4e9) for a in SPEC_APPS]
        assert min(ipcs) < 0.4
        assert max(ipcs) > 1.5

    def test_mem_stall_frac_bounds(self):
        for app in SPEC_APPS:
            frac = app.mem_stall_frac(2.4e9)
            assert 0.0 <= frac < 1.0

    def test_best_tpw_below_nominal(self):
        """Batch apps never run above nominal (TDP rule, Sec. 7)."""
        for app in SPEC_APPS:
            f = app.best_tpw_frequency(DEFAULT_DVFS, DEFAULT_CORE_POWER)
            assert f <= DEFAULT_DVFS.nominal_hz

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchAppProfile("x", cpi_core=0.0, mem_ns_per_instr=1.0)
        with pytest.raises(ValueError):
            BatchAppProfile("x", cpi_core=1.0, mem_ns_per_instr=-1.0)
        with pytest.raises(ValueError):
            SPEC_APPS[0].throughput(0.0)


class TestMixes:
    def test_paper_shape(self):
        mixes = generate_mixes(20, 6, seed=0)
        assert len(mixes) == 20
        assert all(len(m) == 6 for m in mixes)

    def test_no_duplicates_within_mix(self):
        for mix in generate_mixes(20, 6, seed=1):
            names = [a.name for a in mix]
            assert len(set(names)) == 6

    def test_deterministic(self):
        a = generate_mixes(5, 6, seed=2)
        b = generate_mixes(5, 6, seed=2)
        assert [[x.name for x in m] for m in a] == \
            [[x.name for x in m] for m in b]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_mixes(0)


class TestBatchTask:
    def test_accumulates_instructions(self):
        task = BatchTask(SPEC_BY_NAME["namd"], DEFAULT_DVFS,
                         DEFAULT_CORE_POWER)
        task.run(1.0, 2e9)
        assert task.instructions == pytest.approx(
            SPEC_BY_NAME["namd"].throughput(2e9))
        assert task.run_time_s == 1.0

    def test_mean_throughput(self):
        task = BatchTask(SPEC_BY_NAME["gcc"], DEFAULT_DVFS,
                         DEFAULT_CORE_POWER)
        assert task.mean_throughput == 0.0
        task.run(2.0, 1.6e9)
        assert task.mean_throughput == pytest.approx(
            SPEC_BY_NAME["gcc"].throughput(1.6e9))

    def test_preferred_frequency_cached(self):
        task = BatchTask(SPEC_BY_NAME["mcf"], DEFAULT_DVFS,
                         DEFAULT_CORE_POWER)
        assert task.preferred_frequency(DEFAULT_DVFS) == \
            SPEC_BY_NAME["mcf"].best_tpw_frequency(
                DEFAULT_DVFS, DEFAULT_CORE_POWER)

    def test_rejects_negative_duration(self):
        task = BatchTask(SPEC_APPS[0], DEFAULT_DVFS, DEFAULT_CORE_POWER)
        with pytest.raises(ValueError):
            task.run(-1.0, 2e9)

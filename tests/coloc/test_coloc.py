"""Tests for interference, colocation schemes, the colocated server, and
the datacenter aggregation."""

import math

import numpy as np
import pytest

from repro.coloc.batch import generate_mixes
from repro.coloc.datacenter import (
    batch_server_power,
    batch_server_throughput,
    compare_datacenters,
    segregated_lc_server_power,
)
from repro.coloc.interference import MicroarchInterference
from repro.coloc.server import (
    COLOC_SCHEME_NAMES,
    make_coloc_scheme,
    run_colocated_server,
)
from repro.experiments.common import make_context
from repro.sim.request import Request
from repro.workloads.apps import MASSTREE

MIX = generate_mixes(1, seed=0)[0]


def dummy_request():
    return Request(rid=0, arrival_time=0.0, compute_cycles=1e6,
                   memory_time_s=0.0)


class TestInterference:
    def test_zero_interval_no_penalty(self):
        model = MicroarchInterference()
        assert model(0.0, dummy_request()) == 0.0

    def test_saturating_curve(self):
        model = MicroarchInterference(max_penalty_cycles=1000, tau_s=1e-4)
        small = model(1e-5, dummy_request())
        large = model(1e-2, dummy_request())
        assert 0 < small < large
        assert large == pytest.approx(1000, rel=0.01)

    def test_accounting(self):
        model = MicroarchInterference(max_penalty_cycles=1000, tau_s=1e-4)
        model(1e-3, dummy_request())
        model(1e-3, dummy_request())
        assert model.penalized_requests == 2
        assert model.total_penalty_cycles > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroarchInterference(max_penalty_cycles=-1)
        with pytest.raises(ValueError):
            MicroarchInterference(tau_s=0)


class TestSchemeFactory:
    def test_all_names_constructible(self):
        for name in COLOC_SCHEME_NAMES:
            scheme = make_coloc_scheme(name, lc_static_hz=2.4e9)
            assert scheme.name == name

    def test_static_requires_frequency(self):
        with pytest.raises(ValueError):
            make_coloc_scheme("StaticColoc")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_coloc_scheme("nope")


@pytest.fixture(scope="module")
def coloc_runs():
    """One run per scheme on a small shared configuration."""
    context = make_context(MASSTREE, 21, 1600)
    runs = {}
    for scheme in COLOC_SCHEME_NAMES:
        runs[scheme] = run_colocated_server(
            MASSTREE, 0.6, MIX, scheme, context, seed=5,
            requests_per_core=800)
    return context, runs


class TestColocatedServer:
    def test_all_lc_requests_complete(self, coloc_runs):
        _, runs = coloc_runs
        for scheme, res in runs.items():
            assert res.lc_response_times.size > 0

    def test_full_core_utilization(self, coloc_runs):
        """Batch soaks all idle cycles: ~100% core utilization (the
        RubikColoc headline)."""
        _, runs = coloc_runs
        assert runs["RubikColoc"].core_utilization > 0.99

    def test_rubikcoloc_meets_bound(self, coloc_runs):
        context, runs = coloc_runs
        res = runs["RubikColoc"]
        assert res.tail_latency() <= context.latency_bound_s * 1.05

    def test_hw_tpw_violates(self, coloc_runs):
        """HW-TPW is oblivious to deadlines and grossly violates
        (paper Fig. 15)."""
        context, runs = coloc_runs
        assert runs["HW-TPW"].tail_latency() > context.latency_bound_s * 1.5

    def test_batch_makes_progress(self, coloc_runs):
        _, runs = coloc_runs
        res = runs["RubikColoc"]
        assert sum(res.batch_instructions.values()) > 0
        assert res.batch_time_s > 0

    def test_interference_charged(self, coloc_runs):
        _, runs = coloc_runs
        assert runs["RubikColoc"].interference_penalty_cycles > 0

    def test_hw_t_near_tdp(self, coloc_runs):
        """HW-T spends the package budget."""
        _, runs = coloc_runs
        assert runs["HW-T"].mean_core_power_w > 35.0

    def test_rejects_empty_mix(self):
        context = make_context(MASSTREE, 21, 500)
        with pytest.raises(ValueError):
            run_colocated_server(MASSTREE, 0.6, [], "RubikColoc", context)

    def test_tail_latency_nan_when_no_lc_completions(self, coloc_runs):
        # An overloaded server that completed zero LC requests flags
        # itself with a NaN tail (the fleet aggregation counts it); it
        # must not raise and abort a whole shard.
        import dataclasses

        _, runs = coloc_runs
        starved = dataclasses.replace(
            runs["RubikColoc"], lc_response_times=np.array([]))
        assert math.isnan(starved.tail_latency())


class TestDatacenterModel:
    def test_batch_server_power_positive(self):
        p = batch_server_power(MIX)
        assert 20 < p < 120

    def test_batch_throughput_per_app(self):
        t = batch_server_throughput(MIX)
        assert len(t) == len({a.name for a in MIX})
        assert all(v > 0 for v in t.values())

    def test_segregated_power_increases_with_load(self):
        lo = segregated_lc_server_power(MASSTREE, 0.1, num_requests=1500)
        hi = segregated_lc_server_power(MASSTREE, 0.5, num_requests=1500)
        assert hi > lo

    def test_comparison_shape(self):
        comp = compare_datacenters(0.2, num_mixes=1, requests_per_core=400)
        assert comp.colocated.total_servers < comp.segregated.total_servers
        assert comp.power_reduction > 0
        assert comp.server_reduction > 0

    def test_advantage_grows_at_low_load(self):
        low = compare_datacenters(0.1, num_mixes=1, requests_per_core=400)
        high = compare_datacenters(0.5, num_mixes=1, requests_per_core=400)
        assert low.server_reduction > high.server_reduction

"""Unit tests for the chip-level HW-T/HW-TPW frequency allocator."""

import pytest

from repro.coloc.batch import SPEC_BY_NAME, BatchTask
from repro.coloc.schemes import (
    ChipLevelAllocator,
    PACKAGE_FIXED_POWER_W,
)
from repro.config import DEFAULT_CMP, DEFAULT_DVFS
from repro.power.model import DEFAULT_CORE_POWER
from repro.sim.core import Core
from repro.sim.engine import Simulator


def make_cores(batch_names, sim=None):
    sim = sim or Simulator()
    cores = []
    for name in batch_names:
        task = BatchTask(SPEC_BY_NAME[name], DEFAULT_DVFS,
                         DEFAULT_CORE_POWER)
        cores.append(Core(sim, DEFAULT_DVFS, DEFAULT_CORE_POWER,
                          background=task))
    return sim, cores


class TestThroughputObjective:
    def test_budget_respected(self):
        sim, cores = make_cores(["namd", "povray", "hmmer",
                                 "mcf", "lbm", "milc"])
        alloc = ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                                   DEFAULT_CORE_POWER,
                                   objective="throughput")
        freqs = alloc._assign_throughput()
        spent = sum(
            alloc._occupant_power(c, f) for c, f in zip(cores, freqs))
        assert spent <= DEFAULT_CMP.tdp_watts - PACKAGE_FIXED_POWER_W + 1e-9

    def test_compute_bound_apps_win_watts(self):
        """Compute-bound batch apps get higher frequencies than
        memory-bound ones (the Fig. 15 starvation mechanism)."""
        sim, cores = make_cores(["namd", "mcf", "povray", "lbm",
                                 "hmmer", "libquantum"])
        alloc = ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                                   DEFAULT_CORE_POWER,
                                   objective="throughput")
        freqs = alloc._assign_throughput()
        by_name = {c.background.profile.name: f
                   for c, f in zip(cores, freqs)}
        assert by_name["namd"] > by_name["mcf"]
        assert by_name["povray"] > by_name["lbm"]


class TestTpwObjective:
    def test_not_parked_at_minimum(self):
        """The fixed package power keeps the TPW optimum off the grid
        floor (real governors amortize uncore power)."""
        sim, cores = make_cores(["namd", "povray", "hmmer",
                                 "gobmk", "sjeng", "calculix"])
        alloc = ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                                   DEFAULT_CORE_POWER, objective="tpw")
        freqs = alloc._assign_tpw()
        assert max(freqs) > DEFAULT_DVFS.min_hz

    def test_below_throughput_assignment(self):
        """TPW allocations never exceed throughput-max allocations in
        aggregate power."""
        sim, cores = make_cores(["namd", "mcf", "povray", "lbm",
                                 "hmmer", "libquantum"])
        alloc = ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                                   DEFAULT_CORE_POWER, objective="tpw")
        p_tpw = sum(alloc._occupant_power(c, f)
                    for c, f in zip(cores, alloc._assign_tpw()))
        p_thr = sum(alloc._occupant_power(c, f)
                    for c, f in zip(cores, alloc._assign_throughput()))
        assert p_tpw <= p_thr + 1e-9


class TestTicking:
    def test_periodic_reallocation(self):
        sim, cores = make_cores(["namd", "mcf"])
        ChipLevelAllocator(sim, cores, DEFAULT_CMP, DEFAULT_CORE_POWER,
                           objective="tpw", horizon_s=1e-3)
        sim.run(until=1.1e-3)
        # Ticks fired every 100 us up to the horizon.
        assert sim.events_processed >= 9

    def test_allocation_cached_by_occupant_key(self):
        sim, cores = make_cores(["namd", "mcf"])
        alloc = ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                                   DEFAULT_CORE_POWER, objective="tpw",
                                   horizon_s=1e-3)
        sim.run(until=1.1e-3)
        # Occupants never changed (no LC work), so one cache entry.
        assert len(alloc._cache) == 1

    def test_rejects_bad_objective(self):
        sim, cores = make_cores(["namd"])
        with pytest.raises(ValueError):
            ChipLevelAllocator(sim, cores, DEFAULT_CMP,
                               DEFAULT_CORE_POWER, objective="nope")

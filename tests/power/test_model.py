"""Tests for the power models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NOMINAL_FREQUENCY_HZ, frequency_grid
from repro.power.model import (
    CorePowerModel,
    CoreState,
    DEFAULT_CORE_POWER,
    PlatformPowerModel,
    SystemPowerModel,
    VoltageFrequencyCurve,
    nominal_busy_power_w,
)

freqs = st.floats(min_value=0.8e9, max_value=3.4e9)


class TestVoltageCurve:
    def test_endpoints(self):
        c = VoltageFrequencyCurve()
        assert c.voltage(c.f_min_hz) == pytest.approx(c.v_min)
        assert c.voltage(c.f_max_hz) == pytest.approx(c.v_max)

    def test_clamps_out_of_range(self):
        c = VoltageFrequencyCurve()
        assert c.voltage(0.1e9) == c.v_min
        assert c.voltage(10e9) == c.v_max

    @given(freqs, freqs)
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, f1, f2):
        c = VoltageFrequencyCurve()
        if f1 <= f2:
            assert c.voltage(f1) <= c.voltage(f2) + 1e-12

    def test_superlinear_shape(self):
        """shape>1: mid-frequency voltage sits below the linear chord."""
        c = VoltageFrequencyCurve()
        mid = (c.f_min_hz + c.f_max_hz) / 2
        linear = (c.v_min + c.v_max) / 2
        assert c.voltage(mid) < linear

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageFrequencyCurve(f_min_hz=0)
        with pytest.raises(ValueError):
            VoltageFrequencyCurve(v_min=0)
        with pytest.raises(ValueError):
            VoltageFrequencyCurve(shape=0)


class TestCorePower:
    def test_monotone_in_frequency(self):
        grid = frequency_grid()
        powers = [DEFAULT_CORE_POWER.busy_power(f) for f in grid]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_convexity(self):
        """P(f) superlinear: doubling frequency more than doubles power —
        the property all DVFS savings derive from."""
        pm = DEFAULT_CORE_POWER
        assert pm.busy_power(3.2e9) > 2 * pm.busy_power(1.6e9)

    def test_nominal_calibration(self):
        """~4-5 W active at nominal (gives ~1.1 mJ/request for masstree,
        matching paper Fig. 9b)."""
        assert 3.5 <= nominal_busy_power_w() <= 5.5

    def test_memory_stalls_reduce_power(self):
        pm = DEFAULT_CORE_POWER
        assert pm.busy_power(2.4e9, 0.5) < pm.busy_power(2.4e9, 0.0)

    def test_sleep_power_small(self):
        pm = DEFAULT_CORE_POWER
        assert pm.power(CoreState.IDLE, 2.4e9) < 0.2
        assert pm.power(CoreState.IDLE, 2.4e9) == pm.sleep_power_w

    def test_busy_states_equal_power(self):
        pm = DEFAULT_CORE_POWER
        assert pm.power(CoreState.BUSY, 2e9, 0.1) == pytest.approx(
            pm.power(CoreState.BATCH, 2e9, 0.1))

    def test_energy_per_cycle_decreases_at_low_freq(self):
        pm = DEFAULT_CORE_POWER
        assert pm.energy_per_cycle(0.8e9) < pm.energy_per_cycle(2.4e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorePowerModel(c_eff_farads=0)
        with pytest.raises(ValueError):
            CorePowerModel(stall_activity=2.0)
        with pytest.raises(ValueError):
            DEFAULT_CORE_POWER.busy_power(2e9, mem_stall_frac=1.5)
        with pytest.raises(ValueError):
            DEFAULT_CORE_POWER.dynamic_power(0.0)


class TestPlatformAndSystem:
    def test_platform_monotone_in_utilization(self):
        p = PlatformPowerModel()
        assert p.power(0.0) < p.power(0.5) < p.power(1.0)

    def test_platform_idle_floor_dominates(self):
        """The RubikColoc motivation: platform idle power is significant
        relative to per-core DVFS savings."""
        p = PlatformPowerModel()
        assert p.power(0.0) > 4 * nominal_busy_power_w()

    def test_platform_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            PlatformPowerModel().power(1.5)

    def test_server_power_composition(self):
        s = SystemPowerModel()
        total = s.server_power(per_core_power_w=2.0, utilization=0.5)
        assert total == pytest.approx(
            s.num_cores * 2.0 + s.platform.power(0.5))

"""Tests for energy metering."""

import pytest

from repro.power.energy import EnergyMeter
from repro.power.model import CorePowerModel, CoreState

PM = CorePowerModel()


class TestAccounting:
    def test_busy_energy(self):
        m = EnergyMeter(PM)
        e = m.record(1.0, CoreState.BUSY, 2.4e9)
        assert e == pytest.approx(PM.busy_power(2.4e9))
        assert m.active_energy_j == pytest.approx(e)
        assert m.busy_time_s == 1.0

    def test_idle_energy(self):
        m = EnergyMeter(PM)
        m.record(2.0, CoreState.IDLE, 0.8e9)
        assert m.idle_energy_j == pytest.approx(2 * PM.sleep_power_w)
        assert m.busy_time_s == 0.0

    def test_batch_energy_separate(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BATCH, 1.6e9, 0.3)
        assert m.batch_energy_j > 0
        assert m.active_energy_j == 0.0
        assert m.batch_time_s == 1.0

    def test_totals_sum(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.BATCH, 1.6e9)
        m.record(1.0, CoreState.IDLE, 0.8e9)
        assert m.energy_j == pytest.approx(
            m.active_energy_j + m.batch_energy_j + m.idle_energy_j)
        assert m.total_time_s == pytest.approx(3.0)

    def test_zero_duration_noop(self):
        m = EnergyMeter(PM)
        assert m.record(0.0, CoreState.BUSY, 2.4e9) == 0.0
        assert m.total_time_s == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            EnergyMeter(PM).record(-1.0, CoreState.BUSY, 2.4e9)

    def test_mean_power_and_utilization(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.IDLE, 2.4e9)
        assert m.utilization == pytest.approx(0.5)
        assert m.mean_power_w == pytest.approx(m.energy_j / 2.0)

    def test_empty_meter_defaults(self):
        m = EnergyMeter(PM)
        assert m.mean_power_w == 0.0
        assert m.utilization == 0.0
        assert m.frequency_histogram() == {}
        assert m.busy_frequency_histogram() == {}


class TestHistograms:
    def test_busy_histogram_normalized(self):
        m = EnergyMeter(PM)
        m.record(3.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.BUSY, 0.8e9)
        m.record(5.0, CoreState.IDLE, 0.8e9)  # excluded from busy hist
        hist = m.busy_frequency_histogram()
        assert hist[2.4e9] == pytest.approx(0.75)
        assert hist[0.8e9] == pytest.approx(0.25)

    def test_total_histogram_includes_idle(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.IDLE, 2.4e9)
        assert m.frequency_histogram()[2.4e9] == pytest.approx(1.0)


class TestBatchedSegments:
    """record_segments must be bitwise-equal to per-segment record()."""

    @staticmethod
    def _random_segments(seed, n=500):
        import numpy as np

        rng = np.random.default_rng(seed)
        durations = rng.exponential(1e-4, n)
        durations[rng.random(n) < 0.05] = 0.0  # zero-duration closes
        states = rng.integers(0, 3, n)
        grid = np.array([0.8e9, 1.6e9, 2.4e9, 3.4e9])
        freqs = grid[rng.integers(0, len(grid), n)]
        mems = rng.random(n) * 0.9
        mems[states == 2] = 0.0
        return durations, states, freqs, mems

    def test_matches_scalar_record_bitwise(self):
        import numpy as np

        from repro.power.energy import STATE_CODES

        durations, states, freqs, mems = self._random_segments(0)
        code_to_state = {v: k for k, v in STATE_CODES.items()}

        scalar = EnergyMeter(PM)
        scalar_energies = []
        for d, s, f, mf in zip(durations, states, freqs, mems):
            scalar_energies.append(
                scalar.record(float(d), code_to_state[int(s)], float(f),
                              float(mf)))
        batched = EnergyMeter(PM)
        energies = batched.record_segments(durations, states, freqs, mems)

        # Bitwise: == on floats, not approx.
        assert batched.energy_j == scalar.energy_j
        assert batched.active_energy_j == scalar.active_energy_j
        assert batched.batch_energy_j == scalar.batch_energy_j
        assert batched.idle_energy_j == scalar.idle_energy_j
        assert batched.total_time_s == scalar.total_time_s
        assert batched.busy_time_s == scalar.busy_time_s
        assert batched.batch_time_s == scalar.batch_time_s
        assert batched.busy_frequency_histogram() == \
            scalar.busy_frequency_histogram()
        assert batched.frequency_histogram() == scalar.frequency_histogram()
        np.testing.assert_array_equal(energies, np.array(scalar_energies))

    def test_flush_partitioning_is_bitwise_neutral(self):
        """Integrating in many small batches == one big batch: the
        accumulators are folded with a carry, so mid-run flushes (the
        flush-hook contract) never perturb totals."""
        durations, states, freqs, mems = self._random_segments(1)
        one = EnergyMeter(PM)
        one.record_segments(durations, states, freqs, mems)
        many = EnergyMeter(PM)
        for lo in range(0, len(durations), 37):
            hi = lo + 37
            many.record_segments(durations[lo:hi], states[lo:hi],
                                 freqs[lo:hi], mems[lo:hi])
        assert many.energy_j == one.energy_j
        assert many.active_energy_j == one.active_energy_j
        assert many.busy_time_s == one.busy_time_s
        assert many.busy_frequency_histogram() == one.busy_frequency_histogram()

    def test_rejects_negative_duration(self):
        import numpy as np

        with pytest.raises(ValueError):
            EnergyMeter(PM).record_segments(
                np.array([-1.0]), np.array([0]), np.array([2.4e9]),
                np.array([0.0]))

    def test_zero_duration_creates_no_residency_keys(self):
        import numpy as np

        m = EnergyMeter(PM)
        m.record_segments(np.array([0.0]), np.array([0]),
                          np.array([2.4e9]), np.array([0.0]))
        assert m.frequency_histogram() == {}
        assert m.total_time_s == 0.0

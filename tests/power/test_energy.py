"""Tests for energy metering."""

import pytest

from repro.power.energy import EnergyMeter
from repro.power.model import CorePowerModel, CoreState

PM = CorePowerModel()


class TestAccounting:
    def test_busy_energy(self):
        m = EnergyMeter(PM)
        e = m.record(1.0, CoreState.BUSY, 2.4e9)
        assert e == pytest.approx(PM.busy_power(2.4e9))
        assert m.active_energy_j == pytest.approx(e)
        assert m.busy_time_s == 1.0

    def test_idle_energy(self):
        m = EnergyMeter(PM)
        m.record(2.0, CoreState.IDLE, 0.8e9)
        assert m.idle_energy_j == pytest.approx(2 * PM.sleep_power_w)
        assert m.busy_time_s == 0.0

    def test_batch_energy_separate(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BATCH, 1.6e9, 0.3)
        assert m.batch_energy_j > 0
        assert m.active_energy_j == 0.0
        assert m.batch_time_s == 1.0

    def test_totals_sum(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.BATCH, 1.6e9)
        m.record(1.0, CoreState.IDLE, 0.8e9)
        assert m.energy_j == pytest.approx(
            m.active_energy_j + m.batch_energy_j + m.idle_energy_j)
        assert m.total_time_s == pytest.approx(3.0)

    def test_zero_duration_noop(self):
        m = EnergyMeter(PM)
        assert m.record(0.0, CoreState.BUSY, 2.4e9) == 0.0
        assert m.total_time_s == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            EnergyMeter(PM).record(-1.0, CoreState.BUSY, 2.4e9)

    def test_mean_power_and_utilization(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.IDLE, 2.4e9)
        assert m.utilization == pytest.approx(0.5)
        assert m.mean_power_w == pytest.approx(m.energy_j / 2.0)

    def test_empty_meter_defaults(self):
        m = EnergyMeter(PM)
        assert m.mean_power_w == 0.0
        assert m.utilization == 0.0
        assert m.frequency_histogram() == {}
        assert m.busy_frequency_histogram() == {}


class TestHistograms:
    def test_busy_histogram_normalized(self):
        m = EnergyMeter(PM)
        m.record(3.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.BUSY, 0.8e9)
        m.record(5.0, CoreState.IDLE, 0.8e9)  # excluded from busy hist
        hist = m.busy_frequency_histogram()
        assert hist[2.4e9] == pytest.approx(0.75)
        assert hist[0.8e9] == pytest.approx(0.25)

    def test_total_histogram_includes_idle(self):
        m = EnergyMeter(PM)
        m.record(1.0, CoreState.BUSY, 2.4e9)
        m.record(1.0, CoreState.IDLE, 2.4e9)
        assert m.frequency_histogram()[2.4e9] == pytest.approx(1.0)

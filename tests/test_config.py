"""Tests for repro.config: frequency grids and machine configuration."""

import pytest

from repro import config
from repro.config import (
    CmpConfig,
    DEFAULT_CMP,
    DEFAULT_DVFS,
    DvfsConfig,
    FREQUENCY_STEP_HZ,
    MAX_FREQUENCY_HZ,
    MIN_FREQUENCY_HZ,
    NOMINAL_FREQUENCY_HZ,
    frequency_grid,
    real_system_dvfs,
)


class TestFrequencyGrid:
    def test_paper_grid_has_14_steps(self):
        # 0.8..3.4 GHz in 0.2 GHz steps (Table 2).
        assert len(frequency_grid()) == 14

    def test_grid_endpoints(self):
        grid = frequency_grid()
        assert grid[0] == pytest.approx(MIN_FREQUENCY_HZ)
        assert grid[-1] == pytest.approx(MAX_FREQUENCY_HZ)

    def test_grid_is_ascending_and_uniform(self):
        grid = frequency_grid()
        diffs = [b - a for a, b in zip(grid, grid[1:])]
        assert all(d == pytest.approx(FREQUENCY_STEP_HZ) for d in diffs)

    def test_nominal_on_grid(self):
        assert NOMINAL_FREQUENCY_HZ in frequency_grid()

    def test_custom_grid(self):
        grid = frequency_grid(1e9, 2e9, 0.5e9)
        assert grid == (1e9, 1.5e9, 2e9)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            frequency_grid(0, 1e9, 1e8)
        with pytest.raises(ValueError):
            frequency_grid(2e9, 1e9, 1e8)
        with pytest.raises(ValueError):
            frequency_grid(1e9, 2e9, 0)


class TestDvfsConfig:
    def test_quantize_up_exact(self):
        assert DEFAULT_DVFS.quantize_up(2.4e9) == pytest.approx(2.4e9)

    def test_quantize_up_rounds_up(self):
        assert DEFAULT_DVFS.quantize_up(2.41e9) == pytest.approx(2.6e9)

    def test_quantize_up_clamps_to_max(self):
        assert DEFAULT_DVFS.quantize_up(9e9) == pytest.approx(3.4e9)

    def test_quantize_up_clamps_to_min(self):
        assert DEFAULT_DVFS.quantize_up(0.1e9) == pytest.approx(0.8e9)

    def test_quantize_down_rounds_down(self):
        assert DEFAULT_DVFS.quantize_down(2.39e9) == pytest.approx(2.2e9)

    def test_quantize_down_clamps_to_min(self):
        assert DEFAULT_DVFS.quantize_down(0.1e9) == pytest.approx(0.8e9)

    def test_min_max_properties(self):
        assert DEFAULT_DVFS.min_hz == pytest.approx(0.8e9)
        assert DEFAULT_DVFS.max_hz == pytest.approx(3.4e9)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=())

    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=(2e9, 1e9), nominal_hz=1e9)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            DvfsConfig(transition_latency_s=-1e-6)

    def test_rejects_nominal_off_range(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=(1e9, 2e9), nominal_hz=5e9)

    def test_real_system_latency(self):
        # Sec. 5.5: observed ~130 us transitions on real Haswell.
        assert real_system_dvfs().transition_latency_s == pytest.approx(130e-6)


class TestCmpConfig:
    def test_paper_defaults(self):
        assert DEFAULT_CMP.num_cores == 6
        assert DEFAULT_CMP.tdp_watts == pytest.approx(65.0)

    def test_per_core_budget(self):
        assert DEFAULT_CMP.per_core_power_budget_watts == pytest.approx(65 / 6)

    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            CmpConfig(num_cores=0)

    def test_rejects_bad_tdp(self):
        with pytest.raises(ValueError):
            CmpConfig(tdp_watts=-1)


class TestEnvGateHelpers:
    """The shared REPRO_* validation helpers the per-module gates
    delegate to (consolidated from three near-identical blocks in
    perf.parallel, core._native.build, and experiments.artifacts)."""

    def test_nonneg_int_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "4")
        assert config.env_nonneg_int("REPRO_TEST_INT", set()) == 4

    def test_nonneg_int_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert config.env_nonneg_int("REPRO_TEST_INT", set()) is None

    @pytest.mark.parametrize("raw", ["", "-3", "abc"])
    def test_nonneg_int_invalid_warns_with_original_text(
            self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_INT", raw)
        with pytest.warns(RuntimeWarning,
                          match=r"ignoring invalid REPRO_TEST_INT"
                                r".*non-negative integer"):
            assert config.env_nonneg_int("REPRO_TEST_INT", set()) is None

    def test_tristate_accepts_modes_case_insensitively(self, monkeypatch):
        for raw, want in [("1", "1"), ("0", "0"), ("AUTO", "auto"),
                          (" auto ", "auto")]:
            monkeypatch.setenv("REPRO_TEST_TRI", raw)
            assert config.env_tristate("REPRO_TEST_TRI", set()) == want

    def test_tristate_invalid_warns_and_reads_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TRI", "yes")
        with pytest.warns(RuntimeWarning,
                          match=r"expected '1', '0', or 'auto'"):
            assert config.env_tristate("REPRO_TEST_TRI", set()) == "auto"

    def test_path_expands_user(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIR", "~/stores")
        got = config.env_path("REPRO_TEST_DIR", ".default", set())
        assert "~" not in str(got)

    def test_path_blank_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIR", "   ")
        with pytest.warns(RuntimeWarning, match="expected a directory path"):
            got = config.env_path("REPRO_TEST_DIR", ".default", set())
        assert str(got) == ".default"

    def test_warn_once_per_distinct_value_in_caller_registry(
            self, monkeypatch, recwarn):
        import warnings as warnings_mod
        registry = set()
        monkeypatch.setenv("REPRO_TEST_TRI", "bogus")
        with pytest.warns(RuntimeWarning):
            config.env_tristate("REPRO_TEST_TRI", registry)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            # Same raw value, same registry: silent.
            assert config.env_tristate("REPRO_TEST_TRI", registry) == "auto"
        # A distinct raw value warns again.
        monkeypatch.setenv("REPRO_TEST_TRI", "bogus2")
        with pytest.warns(RuntimeWarning):
            config.env_tristate("REPRO_TEST_TRI", registry)

    def test_str_returns_content_verbatim(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", " seed=7;cell.raise@3 ")
        # Not even stripped: the caller owns the grammar.
        assert config.env_str("REPRO_TEST_STR", set()) == \
            " seed=7;cell.raise@3 "

    def test_str_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_STR", raising=False)
        assert config.env_str("REPRO_TEST_STR", set()) is None

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_str_blank_warns_and_reads_unset(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_STR", raw)
        with pytest.warns(RuntimeWarning,
                          match=r"ignoring invalid REPRO_TEST_STR"
                                r".*non-empty"):
            assert config.env_str("REPRO_TEST_STR", set()) is None

    def test_registries_are_per_variable_keyed(self, monkeypatch):
        # One shared registry can serve several variables: keys carry
        # the variable name, so the same raw value warns per variable.
        registry = set()
        monkeypatch.setenv("REPRO_TEST_A", "bogus")
        monkeypatch.setenv("REPRO_TEST_B", "bogus")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_A"):
            config.env_tristate("REPRO_TEST_A", registry)
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_B"):
            config.env_tristate("REPRO_TEST_B", registry)

"""Tests for repro.config: frequency grids and machine configuration."""

import pytest

from repro.config import (
    CmpConfig,
    DEFAULT_CMP,
    DEFAULT_DVFS,
    DvfsConfig,
    FREQUENCY_STEP_HZ,
    MAX_FREQUENCY_HZ,
    MIN_FREQUENCY_HZ,
    NOMINAL_FREQUENCY_HZ,
    frequency_grid,
    real_system_dvfs,
)


class TestFrequencyGrid:
    def test_paper_grid_has_14_steps(self):
        # 0.8..3.4 GHz in 0.2 GHz steps (Table 2).
        assert len(frequency_grid()) == 14

    def test_grid_endpoints(self):
        grid = frequency_grid()
        assert grid[0] == pytest.approx(MIN_FREQUENCY_HZ)
        assert grid[-1] == pytest.approx(MAX_FREQUENCY_HZ)

    def test_grid_is_ascending_and_uniform(self):
        grid = frequency_grid()
        diffs = [b - a for a, b in zip(grid, grid[1:])]
        assert all(d == pytest.approx(FREQUENCY_STEP_HZ) for d in diffs)

    def test_nominal_on_grid(self):
        assert NOMINAL_FREQUENCY_HZ in frequency_grid()

    def test_custom_grid(self):
        grid = frequency_grid(1e9, 2e9, 0.5e9)
        assert grid == (1e9, 1.5e9, 2e9)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            frequency_grid(0, 1e9, 1e8)
        with pytest.raises(ValueError):
            frequency_grid(2e9, 1e9, 1e8)
        with pytest.raises(ValueError):
            frequency_grid(1e9, 2e9, 0)


class TestDvfsConfig:
    def test_quantize_up_exact(self):
        assert DEFAULT_DVFS.quantize_up(2.4e9) == pytest.approx(2.4e9)

    def test_quantize_up_rounds_up(self):
        assert DEFAULT_DVFS.quantize_up(2.41e9) == pytest.approx(2.6e9)

    def test_quantize_up_clamps_to_max(self):
        assert DEFAULT_DVFS.quantize_up(9e9) == pytest.approx(3.4e9)

    def test_quantize_up_clamps_to_min(self):
        assert DEFAULT_DVFS.quantize_up(0.1e9) == pytest.approx(0.8e9)

    def test_quantize_down_rounds_down(self):
        assert DEFAULT_DVFS.quantize_down(2.39e9) == pytest.approx(2.2e9)

    def test_quantize_down_clamps_to_min(self):
        assert DEFAULT_DVFS.quantize_down(0.1e9) == pytest.approx(0.8e9)

    def test_min_max_properties(self):
        assert DEFAULT_DVFS.min_hz == pytest.approx(0.8e9)
        assert DEFAULT_DVFS.max_hz == pytest.approx(3.4e9)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=())

    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=(2e9, 1e9), nominal_hz=1e9)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            DvfsConfig(transition_latency_s=-1e-6)

    def test_rejects_nominal_off_range(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies=(1e9, 2e9), nominal_hz=5e9)

    def test_real_system_latency(self):
        # Sec. 5.5: observed ~130 us transitions on real Haswell.
        assert real_system_dvfs().transition_latency_s == pytest.approx(130e-6)


class TestCmpConfig:
    def test_paper_defaults(self):
        assert DEFAULT_CMP.num_cores == 6
        assert DEFAULT_CMP.tdp_watts == pytest.approx(65.0)

    def test_per_core_budget(self):
        assert DEFAULT_CMP.per_core_power_budget_watts == pytest.approx(65 / 6)

    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            CmpConfig(num_cores=0)

    def test_rejects_bad_tdp(self):
        with pytest.raises(ValueError):
            CmpConfig(tdp_watts=-1)

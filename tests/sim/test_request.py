"""Tests for the request demand/progress model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.request import Request


def make_request(cycles=2.4e6, mem=1e-4):
    return Request(rid=0, arrival_time=0.0, compute_cycles=cycles,
                   memory_time_s=mem)


class TestValidation:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, -1.0, 0.0)

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, 0.0, 0.0)

    def test_memory_only_request_allowed(self):
        r = Request(0, 0.0, 0.0, 1e-3)
        assert r.service_time_at(1e9) == pytest.approx(1e-3)


class TestServiceTimes:
    def test_service_time_formula(self):
        r = make_request(cycles=2.4e6, mem=1e-4)
        # 2.4e6 cycles at 2.4 GHz = 1 ms, plus 0.1 ms memory
        assert r.service_time_at(2.4e9) == pytest.approx(1.1e-3)

    def test_memory_invariant_to_frequency(self):
        r = make_request(cycles=0.0, mem=1e-3)
        assert r.service_time_at(1e9) == r.service_time_at(3e9)

    def test_compute_scales_inversely(self):
        r = make_request(cycles=2e6, mem=0.0)
        assert r.service_time_at(1e9) == pytest.approx(
            2 * r.service_time_at(2e9))

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            make_request().service_time_at(0.0)


class TestProgress:
    def test_advance_to_completion(self):
        r = make_request()
        total = r.service_time_at(2e9)
        r.advance(total, 2e9)
        assert r.done

    def test_partial_progress(self):
        r = make_request()
        total = r.service_time_at(2e9)
        r.advance(total / 2, 2e9)
        assert r.progress == pytest.approx(0.5)
        assert not r.done

    def test_remaining_time_after_partial(self):
        r = make_request()
        total = r.service_time_at(2e9)
        r.advance(total / 2, 2e9)
        assert r.remaining_time_at(2e9) == pytest.approx(total / 2)

    def test_frequency_change_preserves_total_demand(self):
        """Half at f1 then remaining at f2 == proportional split."""
        r = make_request(cycles=2e6, mem=1e-3)
        t1 = r.service_time_at(1e9)
        r.advance(t1 / 2, 1e9)  # half the demand done
        rem = r.remaining_time_at(2e9)
        assert rem == pytest.approx(r.service_time_at(2e9) / 2)

    def test_elapsed_components(self):
        r = make_request(cycles=2e6, mem=1e-3)
        r.advance(r.service_time_at(1e9) * 0.25, 1e9)
        assert r.elapsed_compute_cycles == pytest.approx(0.5e6)
        assert r.elapsed_memory_time_s == pytest.approx(0.25e-3)

    def test_advance_clamps_at_one(self):
        r = make_request()
        r.advance(100.0, 1e9)
        assert r.progress == 1.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            make_request().advance(-1.0, 1e9)

    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=0.5e9, max_value=3.4e9),
           st.floats(min_value=0.5e9, max_value=3.4e9))
    @settings(max_examples=50, deadline=None)
    def test_split_execution_invariant(self, frac, f1, f2):
        """Executing fraction p at f1 then the rest at f2 always sums to
        p*T(f1) + (1-p)*T(f2)."""
        r = make_request(cycles=1e6, mem=2e-4)
        t1 = frac * r.service_time_at(f1)
        r.advance(t1, f1)
        t2 = r.remaining_time_at(f2)
        expected = (frac * r.service_time_at(f1)
                    + (1 - frac) * r.service_time_at(f2))
        assert t1 + t2 == pytest.approx(expected, rel=1e-9)


class TestMetrics:
    def test_response_time(self):
        r = make_request()
        r.finish_time = 1.5
        assert r.response_time == pytest.approx(1.5)

    def test_response_requires_finish(self):
        with pytest.raises(ValueError):
            _ = make_request().response_time

    def test_queueing_time(self):
        r = make_request()
        r.start_time = 0.3
        assert r.queueing_time == pytest.approx(0.3)

    def test_queueing_requires_start(self):
        with pytest.raises(ValueError):
            _ = make_request().queueing_time

"""Tests for trace generation, determinism, and sim/replay equivalence."""

import numpy as np
import pytest

from repro.config import NOMINAL_FREQUENCY_HZ
from repro.schemes.base import SchemeContext
from repro.schemes.fixed import FixedFrequency
from repro.schemes.replay import replay
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE, SHORE


class TestGeneration:
    def test_default_request_count_from_table3(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, seed=0)
        assert len(trace) == MASSTREE.num_requests

    def test_deterministic(self):
        a = Trace.generate_at_load(MASSTREE, 0.5, 100, seed=1)
        b = Trace.generate_at_load(MASSTREE, 0.5, 100, seed=1)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.compute_cycles, b.compute_cycles)

    def test_seeds_differ(self):
        a = Trace.generate_at_load(MASSTREE, 0.5, 100, seed=1)
        b = Trace.generate_at_load(MASSTREE, 0.5, 100, seed=2)
        assert not np.array_equal(a.arrivals, b.arrivals)

    def test_demands_load_invariant(self):
        """Same seed at different loads -> identical demand columns (the
        per-seed latency-bound methodology relies on this)."""
        a = Trace.generate_at_load(MASSTREE, 0.3, 100, seed=1)
        b = Trace.generate_at_load(MASSTREE, 0.7, 100, seed=1)
        np.testing.assert_array_equal(a.compute_cycles, b.compute_cycles)
        np.testing.assert_array_equal(a.memory_time_s, b.memory_time_s)

    def test_predicted_cycles_present(self):
        trace = Trace.generate_at_load(SHORE, 0.5, 100, seed=1)
        assert trace.predicted_cycles is not None
        assert len(trace.predicted_cycles) == 100

    def test_perfect_hints_equal_truth(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 200, seed=1)
        # masstree hint_quality=0.9 < 1, so not exactly equal; correlation
        # must be very high though.
        corr = np.corrcoef(np.log(trace.predicted_cycles),
                           np.log(trace.compute_cycles))[0, 1]
        assert corr > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            Trace(np.array([]), np.array([]), np.array([]))
        with pytest.raises(ValueError):
            Trace(np.array([2.0, 1.0]), np.ones(2), np.ones(2))

    def test_to_requests(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 10, seed=1)
        reqs = trace.to_requests()
        assert len(reqs) == 10
        assert reqs[3].compute_cycles == trace.compute_cycles[3]
        # Fresh objects per call (replays are independent).
        assert trace.to_requests()[0] is not reqs[0]

    def test_service_times_at(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 10, seed=1)
        svc = trace.service_times_at(2.4e9)
        expected = trace.compute_cycles / 2.4e9 + trace.memory_time_s
        np.testing.assert_allclose(svc, expected)


class TestSimReplayEquivalence:
    """The event simulator and the Lindley replay must agree exactly at a
    fixed frequency — a strong cross-check of both substrates."""

    @pytest.mark.parametrize("load", [0.2, 0.5, 0.8])
    def test_latencies_match(self, load):
        trace = Trace.generate_at_load(MASSTREE, load, 1500, seed=4)
        sim_run = run_trace(trace, FixedFrequency(),
                            SchemeContext(latency_bound_s=1.0))
        rep = replay(trace, NOMINAL_FREQUENCY_HZ)
        sim_lats = np.array([r.response_time for r in sim_run.requests])
        np.testing.assert_allclose(sim_lats, rep.response_times, atol=1e-12)

    def test_energy_matches(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 1500, seed=4)
        sim_run = run_trace(trace, FixedFrequency(),
                            SchemeContext(latency_bound_s=1.0))
        rep = replay(trace, NOMINAL_FREQUENCY_HZ)
        assert sim_run.active_energy_j == pytest.approx(
            float(rep.busy_energy_j.sum()), rel=1e-9)

    def test_busy_time_matches(self):
        trace = Trace.generate_at_load(MASSTREE, 0.5, 1000, seed=4)
        sim_run = run_trace(trace, FixedFrequency(),
                            SchemeContext(latency_bound_s=1.0))
        rep = replay(trace, NOMINAL_FREQUENCY_HZ)
        assert sim_run.busy_time_s == pytest.approx(rep.busy_time_s,
                                                    rel=1e-9)

"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_clock_advances(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=1)
        sim.schedule(1.0, lambda: fired.append("high"), priority=-1)
        sim.run()
        assert fired == ["high", "low"]

    def test_fifo_among_equal_priority(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_rejects_past_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule_after(
            0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [pytest.approx(1.5)]

    def test_schedule_after_rejects_negative(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_and_reschedule(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("old"))
        ev.cancel()
        sim.schedule(2.0, lambda: fired.append("new"))
        sim.run()
        assert fired == ["new"]

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == pytest.approx(2.0)


class TestRunControl:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)

    def test_run_until_advances_clock_when_empty(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(max_events=2)
        assert fired == [1.0, 2.0]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]

"""Tests for the core execution model (service, DVFS, energy, batch)."""

import pytest

from repro.config import DvfsConfig
from repro.power.model import CorePowerModel, CoreState
from repro.sim.core import Core
from repro.sim.engine import Simulator
from repro.sim.request import Request

GRID = (1e9, 2e9, 4e9)
CFG = DvfsConfig(frequencies=GRID, transition_latency_s=0.0, nominal_hz=2e9)
PM = CorePowerModel()


def make_core(sim=None, **kw):
    sim = sim or Simulator()
    return sim, Core(sim, CFG, PM, **kw)


def req(rid=0, at=0.0, cycles=2e6, mem=0.0):
    return Request(rid=rid, arrival_time=at, compute_cycles=cycles,
                   memory_time_s=mem)


class TestBasicService:
    def test_single_request_latency(self):
        sim, core = make_core()
        r = req(cycles=2e6)  # 1 ms at 2 GHz
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.run()
        assert r.finish_time == pytest.approx(1e-3)
        assert core.completed == [r]

    def test_fifo_order(self):
        sim, core = make_core()
        r1, r2 = req(0), req(1, at=1e-4)
        sim.schedule(0.0, lambda: core.enqueue(r1))
        sim.schedule(1e-4, lambda: core.enqueue(r2))
        sim.run()
        assert [r.rid for r in core.completed] == [0, 1]
        # second waits for the first
        assert r2.start_time == pytest.approx(r1.finish_time)

    def test_queue_length(self):
        sim, core = make_core()
        sim.schedule(0.0, lambda: core.enqueue(req(0)))
        sim.schedule(0.0, lambda: core.enqueue(req(1)))
        sim.schedule(0.0, lambda: core.enqueue(req(2)))
        sim.run(max_events=3)
        assert core.queue_length == 3
        assert len(core.pending_requests()) == 3

    def test_memory_time_included(self):
        sim, core = make_core()
        r = req(cycles=2e6, mem=5e-4)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.run()
        assert r.finish_time == pytest.approx(1.5e-3)


class TestFrequencyChanges:
    def test_midflight_change_shortens_completion(self):
        sim, core = make_core()
        r = req(cycles=4e6)  # 2 ms at 2 GHz, 1 ms at 4 GHz
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(1e-3, lambda: core.request_frequency(4e9))
        sim.run()
        # 1 ms at 2 GHz does half the work; remaining half at 4 GHz: 0.5ms
        assert r.finish_time == pytest.approx(1.5e-3)

    def test_midflight_slowdown(self):
        sim, core = make_core()
        r = req(cycles=4e6)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(1e-3, lambda: core.request_frequency(1e9))
        sim.run()
        assert r.finish_time == pytest.approx(1e-3 + 2e-3)

    def test_elapsed_visible_between_events(self):
        sim, core = make_core()
        r = req(cycles=4e6)
        probe = {}
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(1e-3,
                     lambda: probe.update(e=core.current_request_elapsed()))
        sim.run()
        assert probe["e"][0] == pytest.approx(2e6)  # half the cycles

    def test_elapsed_zero_when_idle(self):
        _, core = make_core()
        assert core.current_request_elapsed() == (0.0, 0.0)


class TestEnergyAccounting:
    def test_busy_and_idle_split(self):
        sim, core = make_core()
        r = req(cycles=2e6)  # 1 ms busy
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(2e-3, lambda: None)  # extend run to 2 ms
        sim.run()
        core.finalize()
        assert core.meter.busy_time_s == pytest.approx(1e-3)
        assert core.meter.total_time_s == pytest.approx(2e-3)
        assert core.meter.utilization == pytest.approx(0.5)

    def test_energy_matches_power_model(self):
        sim, core = make_core()
        r = req(cycles=2e6)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.run()
        core.finalize()
        expected = PM.busy_power(2e9) * 1e-3
        assert core.meter.active_energy_j == pytest.approx(expected)

    def test_freq_residency(self):
        sim, core = make_core()
        r = req(cycles=4e6)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(1e-3, lambda: core.request_frequency(4e9))
        sim.run()
        core.finalize()
        hist = core.meter.busy_frequency_histogram()
        assert hist[2e9] == pytest.approx(1e-3 / 1.5e-3)
        assert hist[4e9] == pytest.approx(0.5e-3 / 1.5e-3)

    def test_segment_log(self):
        sim, core = make_core(log_segments=True)
        r = req(cycles=2e6)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.run()
        core.finalize()
        assert core.segment_log
        t0, t1, watts = core.segment_log[0]
        assert t1 > t0 and watts > 0


class TestListeners:
    def test_arrival_and_completion_hooks(self):
        sim, core = make_core()
        events = []

        class L:
            def on_arrival(self, c, r):
                events.append(("arr", r.rid, c.queue_length))

            def on_completion(self, c, r):
                events.append(("done", r.rid, c.queue_length))

        core.add_listener(L())
        sim.schedule(0.0, lambda: core.enqueue(req(0)))
        sim.run()
        assert events == [("arr", 0, 1), ("done", 0, 0)]

    def test_arrival_sees_new_request_in_queue(self):
        sim, core = make_core()
        seen = []

        class L:
            def on_arrival(self, c, r):
                seen.append([p.rid for p in c.pending_requests()])

            def on_completion(self, c, r):
                pass

        core.add_listener(L())
        sim.schedule(0.0, lambda: core.enqueue(req(0)))
        sim.schedule(0.0, lambda: core.enqueue(req(1)))
        sim.run(max_events=2)
        assert seen == [[0], [0, 1]]


class FakeBatch:
    """Minimal BackgroundTask for testing."""

    def __init__(self, preferred=1e9):
        self.preferred = preferred
        self.run_time = 0.0
        self.profile = type("P", (), {"name": "fake"})()

    def preferred_frequency(self, dvfs):
        return self.preferred

    def run(self, duration_s, freq_hz):
        self.run_time += duration_s

    def mem_stall_frac(self, freq_hz):
        return 0.0


class TestBackgroundBatch:
    def test_batch_runs_when_idle(self):
        sim = Simulator()
        batch = FakeBatch()
        core = Core(sim, CFG, PM, background=batch)
        sim.schedule(2e-3, lambda: None)
        sim.run()
        core.finalize()
        assert batch.run_time == pytest.approx(2e-3)
        assert core.meter.batch_time_s == pytest.approx(2e-3)

    def test_batch_preempted_by_lc(self):
        sim = Simulator()
        batch = FakeBatch()
        core = Core(sim, CFG, PM, background=batch)
        r = req(cycles=1e6)  # 1 ms at batch's 1 GHz... frequency!
        sim.schedule(1e-3, lambda: core.enqueue(r))
        sim.run()
        core.finalize()
        # LC ran at the batch's 1 GHz (no scheme changed it): 1 ms
        assert r.finish_time == pytest.approx(2e-3)
        assert batch.run_time == pytest.approx(1e-3)

    def test_batch_resumes_at_preferred_freq(self):
        sim = Simulator()
        batch = FakeBatch(preferred=1e9)
        core = Core(sim, CFG, PM, background=batch)
        r = req(cycles=1e6)
        sim.schedule(0.0, lambda: core.enqueue(r))
        sim.schedule(0.0, lambda: core.request_frequency(4e9))
        sim.run()
        assert core.frequency_hz == 1e9  # back to batch preference

    def test_interference_charged_after_batch(self):
        sim = Simulator()
        batch = FakeBatch()
        charged = []

        def interference(interval, request):
            charged.append(interval)
            return 1e6  # extra cycles

        core = Core(sim, CFG, PM, background=batch,
                    interference_cycles=interference)
        r = req(cycles=1e6)
        sim.schedule(1e-3, lambda: core.enqueue(r))
        sim.run()
        assert charged == [pytest.approx(1e-3)]
        assert r.compute_cycles == pytest.approx(2e6)  # inflated

    def test_queued_handoff_unchanged_and_never_charged(self):
        """Regression for the completion->next-request handoff now
        routing through _begin_service: a queued request taking over the
        core back-to-back must start exactly at its predecessor's finish
        time and must NOT be charged interference (no batch interval ran
        in between) — the unified path must behave exactly like the old
        inlined one."""
        sim = Simulator()
        batch = FakeBatch()
        charged = []

        def interference(interval, request):
            charged.append((interval, request.rid))
            return 5e5

        core = Core(sim, CFG, PM, background=batch,
                    interference_cycles=interference)
        # Batch runs [0, 1ms); r1 arrives at 1 ms, r2 queues behind it.
        r1, r2 = req(0, cycles=1e6), req(1, at=1.1e-3, cycles=1e6)
        sim.schedule(1e-3, lambda: core.enqueue(r1))
        sim.schedule(1.1e-3, lambda: core.enqueue(r2))
        sim.run()
        core.finalize()
        # Only the first request after the batch interval is charged.
        assert [rid for _, rid in charged] == [0]
        assert r1.compute_cycles == pytest.approx(1.5e6)  # inflated
        assert r2.compute_cycles == pytest.approx(1e6)    # untouched
        # Handoff is seamless: r2 starts the instant r1 finishes.
        assert r2.start_time == pytest.approx(r1.finish_time)
        # The batch interval restarts only after the queue drains.
        assert batch.run_time == pytest.approx(1e-3)

    def test_handoff_after_new_batch_interval_charges_again(self):
        """If the queue drains and batch runs again, the next LC request
        is charged for the *new* interval — pinning that the unified
        _begin_service path keeps per-interval accounting."""
        sim = Simulator()
        batch = FakeBatch()
        charged = []
        core = Core(sim, CFG, PM, background=batch,
                    interference_cycles=lambda i, r: charged.append(i) or 0.0)
        sim.schedule(1e-3, lambda: core.enqueue(req(0, cycles=1e6)))
        # First request done at 2 ms (1 GHz batch freq); batch resumes,
        # then a second burst arrives at 3 ms.
        sim.schedule(3e-3, lambda: core.enqueue(req(1, cycles=1e6)))
        sim.run()
        core.finalize()
        assert charged == [pytest.approx(1e-3), pytest.approx(1e-3)]

    def test_no_interference_without_batch_interval(self):
        sim = Simulator()
        batch = FakeBatch()
        calls = []
        core = Core(sim, CFG, PM, background=batch,
                    interference_cycles=lambda i, r: calls.append(i) or 0.0)
        r1, r2 = req(0, cycles=1e6), req(1, at=1e-4, cycles=1e6)
        sim.schedule(1e-3, lambda: core.enqueue(r1))
        # r2 arrives while r1 in service: no batch interval in between.
        sim.schedule(1e-3 + 1e-4, lambda: core.enqueue(r2))
        sim.run()
        assert len(calls) == 1  # only the first request after batch

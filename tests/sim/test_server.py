"""Tests for the server harness and RunResult metrics."""

import numpy as np
import pytest

from repro.schemes.base import SchemeContext
from repro.schemes.fixed import FixedFrequency
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import MASSTREE


def run(n=1000, load=0.5, seed=0, **kw):
    trace = Trace.generate_at_load(MASSTREE, load, n, seed)
    return run_trace(trace, FixedFrequency(),
                     SchemeContext(latency_bound_s=1e-3), **kw)


class TestRunResult:
    def test_all_requests_complete(self):
        res = run(n=500)
        assert len(res.requests) == 500
        assert all(r.finish_time is not None for r in res.requests)

    def test_warmup_excluded_from_metrics(self):
        res = run(n=1000)
        assert len(res.measured()) == 1000 - res.warmup
        assert res.warmup > 0

    def test_explicit_warmup(self):
        res = run(n=500, warmup=100)
        assert res.warmup == 100

    def test_warmup_larger_than_run_clamped(self):
        res = run(n=50, warmup=500)
        assert res.warmup == 49

    def test_tail_latency_positive(self):
        res = run()
        assert res.tail_latency() > 0

    def test_violation_rate_bounds(self):
        res = run()
        assert res.violation_rate(0.0) == 1.0
        assert res.violation_rate(1e9) == 0.0

    def test_energy_per_request(self):
        res = run(n=500)
        assert res.energy_per_request_j == pytest.approx(
            res.energy_j / 500)

    def test_mean_power(self):
        res = run()
        assert res.mean_core_power_w == pytest.approx(
            res.energy_j / res.duration_s)

    def test_service_times_positive(self):
        res = run()
        assert np.all(res.service_times() > 0)

    def test_no_transitions_for_fixed(self):
        res = run()
        assert res.dvfs_transitions <= 1  # possibly one initial change

    def test_utilization_close_to_load(self):
        res = run(n=3000, load=0.5)
        assert res.utilization == pytest.approx(0.5, abs=0.06)

    def test_segment_log_opt_in(self):
        assert run(n=100).segment_log is None
        assert run(n=100, log_segments=True).segment_log

"""Tests for arrival processes and load schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.arrivals import LoadSchedule, generate_poisson_arrivals


class TestLoadSchedule:
    def test_constant(self):
        s = LoadSchedule.constant(100.0)
        assert s.rate_at(0.0) == 100.0
        assert s.rate_at(1e6) == 100.0

    def test_steps(self):
        s = LoadSchedule(((0.0, 10.0), (1.0, 20.0)))
        assert s.rate_at(0.5) == 10.0
        assert s.rate_at(1.0) == 20.0
        assert s.rate_at(5.0) == 20.0

    def test_from_loads(self):
        s = LoadSchedule.from_loads([(0.0, 0.5)], saturation_qps=1000.0)
        assert s.rate_at(0.0) == pytest.approx(500.0)

    def test_mean_rate(self):
        s = LoadSchedule(((0.0, 10.0), (1.0, 30.0)))
        assert s.mean_rate(2.0) == pytest.approx(20.0)

    def test_mean_rate_partial_interval(self):
        s = LoadSchedule(((0.0, 10.0), (10.0, 99.0)))
        assert s.mean_rate(5.0) == pytest.approx(10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoadSchedule(())

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError):
            LoadSchedule(((1.0, 10.0),))

    def test_rejects_unsorted_steps(self):
        with pytest.raises(ValueError):
            LoadSchedule(((0.0, 1.0), (2.0, 2.0), (1.0, 3.0)))

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            LoadSchedule(((0.0, -1.0),))

    def test_rejects_bad_saturation(self):
        with pytest.raises(ValueError):
            LoadSchedule.from_loads([(0.0, 0.5)], saturation_qps=0.0)


class TestPoissonArrivals:
    def test_count_and_monotonicity(self):
        rng = np.random.default_rng(0)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        500, rng)
        assert len(arr) == 500
        assert np.all(np.diff(arr) >= 0)

    def test_rate_matches(self):
        rng = np.random.default_rng(1)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        20000, rng)
        measured = len(arr) / arr[-1]
        assert measured == pytest.approx(1000.0, rel=0.05)

    def test_exponential_interarrivals(self):
        """CV of interarrival gaps should be ~1 (memoryless)."""
        rng = np.random.default_rng(2)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        20000, rng)
        gaps = np.diff(arr)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_step_change_rate(self):
        rng = np.random.default_rng(3)
        sched = LoadSchedule(((0.0, 100.0), (10.0, 1000.0)))
        arr = generate_poisson_arrivals(sched, 20000, rng)
        before = np.sum(arr < 10.0)
        # ~1000 arrivals in the first 10 s at rate 100
        assert before == pytest.approx(1000, rel=0.2)

    def test_zero_rate_interval_skipped(self):
        rng = np.random.default_rng(4)
        sched = LoadSchedule(((0.0, 0.0), (1.0, 1000.0)))
        arr = generate_poisson_arrivals(sched, 100, rng)
        assert arr[0] >= 1.0

    def test_zero_rate_forever_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            generate_poisson_arrivals(LoadSchedule.constant(0.0), 10, rng)

    def test_rejects_bad_count(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            generate_poisson_arrivals(LoadSchedule.constant(1.0), 0, rng)

    def test_deterministic_given_seed(self):
        a = generate_poisson_arrivals(LoadSchedule.constant(100.0), 50,
                                      np.random.default_rng(7))
        b = generate_poisson_arrivals(LoadSchedule.constant(100.0), 50,
                                      np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_always_sorted(self, n, rate):
        rng = np.random.default_rng(42)
        arr = generate_poisson_arrivals(LoadSchedule.constant(rate), n, rng)
        assert np.all(np.diff(arr) >= 0)

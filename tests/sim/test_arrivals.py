"""Tests for arrival processes and load schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.arrivals import LoadSchedule, generate_poisson_arrivals


class TestLoadSchedule:
    def test_constant(self):
        s = LoadSchedule.constant(100.0)
        assert s.rate_at(0.0) == 100.0
        assert s.rate_at(1e6) == 100.0

    def test_steps(self):
        s = LoadSchedule(((0.0, 10.0), (1.0, 20.0)))
        assert s.rate_at(0.5) == 10.0
        assert s.rate_at(1.0) == 20.0
        assert s.rate_at(5.0) == 20.0

    def test_from_loads(self):
        s = LoadSchedule.from_loads([(0.0, 0.5)], saturation_qps=1000.0)
        assert s.rate_at(0.0) == pytest.approx(500.0)

    def test_mean_rate(self):
        s = LoadSchedule(((0.0, 10.0), (1.0, 30.0)))
        assert s.mean_rate(2.0) == pytest.approx(20.0)

    def test_mean_rate_partial_interval(self):
        s = LoadSchedule(((0.0, 10.0), (10.0, 99.0)))
        assert s.mean_rate(5.0) == pytest.approx(10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoadSchedule(())

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError):
            LoadSchedule(((1.0, 10.0),))

    def test_rejects_unsorted_steps(self):
        with pytest.raises(ValueError):
            LoadSchedule(((0.0, 1.0), (2.0, 2.0), (1.0, 3.0)))

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            LoadSchedule(((0.0, -1.0),))

    def test_rejects_bad_saturation(self):
        with pytest.raises(ValueError):
            LoadSchedule.from_loads([(0.0, 0.5)], saturation_qps=0.0)


class TestPoissonArrivals:
    def test_count_and_monotonicity(self):
        rng = np.random.default_rng(0)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        500, rng)
        assert len(arr) == 500
        assert np.all(np.diff(arr) >= 0)

    def test_rate_matches(self):
        rng = np.random.default_rng(1)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        20000, rng)
        measured = len(arr) / arr[-1]
        assert measured == pytest.approx(1000.0, rel=0.05)

    def test_exponential_interarrivals(self):
        """CV of interarrival gaps should be ~1 (memoryless)."""
        rng = np.random.default_rng(2)
        arr = generate_poisson_arrivals(LoadSchedule.constant(1000.0),
                                        20000, rng)
        gaps = np.diff(arr)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_step_change_rate(self):
        rng = np.random.default_rng(3)
        sched = LoadSchedule(((0.0, 100.0), (10.0, 1000.0)))
        arr = generate_poisson_arrivals(sched, 20000, rng)
        before = np.sum(arr < 10.0)
        # ~1000 arrivals in the first 10 s at rate 100
        assert before == pytest.approx(1000, rel=0.2)

    def test_zero_rate_interval_skipped(self):
        rng = np.random.default_rng(4)
        sched = LoadSchedule(((0.0, 0.0), (1.0, 1000.0)))
        arr = generate_poisson_arrivals(sched, 100, rng)
        assert arr[0] >= 1.0

    def test_zero_rate_forever_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            generate_poisson_arrivals(LoadSchedule.constant(0.0), 10, rng)

    def test_rejects_bad_count(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            generate_poisson_arrivals(LoadSchedule.constant(1.0), 0, rng)

    def test_deterministic_given_seed(self):
        a = generate_poisson_arrivals(LoadSchedule.constant(100.0), 50,
                                      np.random.default_rng(7))
        b = generate_poisson_arrivals(LoadSchedule.constant(100.0), 50,
                                      np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_always_sorted(self, n, rate):
        rng = np.random.default_rng(42)
        arr = generate_poisson_arrivals(LoadSchedule.constant(rate), n, rng)
        assert np.all(np.diff(arr) >= 0)


class TestPoissonZeroRateAndStepBoundaries:
    """Fig. 10 load-step path: zero-rate gaps and exact step boundaries,
    cross-checked against the schedule's own rate_at/mean_rate."""

    SCHED = LoadSchedule(((0.0, 800.0), (1.0, 0.0), (2.5, 400.0)))

    def test_rate_at_agrees_with_empirical_counts(self):
        rng = np.random.default_rng(11)
        arr = generate_poisson_arrivals(self.SCHED, 4000, rng)
        for lo, hi in ((0.0, 1.0), (1.0, 2.5), (2.5, 4.0)):
            count = int(np.sum((arr >= lo) & (arr < hi)))
            mid_rate = self.SCHED.rate_at((lo + hi) / 2.0)
            expected = mid_rate * (hi - lo)
            if expected == 0:
                assert count == 0  # the zero-rate gap produces nothing
            else:
                assert count == pytest.approx(expected, rel=0.15)

    def test_zero_rate_gap_is_empty_and_resumes_at_boundary(self):
        rng = np.random.default_rng(12)
        arr = generate_poisson_arrivals(self.SCHED, 3000, rng)
        in_gap = arr[(arr >= 1.0) & (arr < 2.5)]
        assert in_gap.size == 0
        # Memorylessness: the first post-gap arrival lands exp(1/rate)
        # after the 2.5 s boundary, so typically within a few gaps.
        after = arr[arr >= 2.5]
        assert after.size > 0
        assert after[0] - 2.5 < 0.1

    def test_arrival_exactly_at_step_uses_new_rate_like_rate_at(self):
        """rate_at(t) returns the *new* rate at a step time t; the
        generator's interval logic must agree (work crossing a boundary
        is rescaled to the rate in force from that boundary on)."""
        sched = LoadSchedule(((0.0, 1e-9), (10.0, 1e6)))
        assert sched.rate_at(10.0) == 1e6
        rng = np.random.default_rng(13)
        arr = generate_poisson_arrivals(sched, 500, rng)
        # At a femto-rate before the step, effectively every arrival is
        # pushed past the boundary and drawn at the fast rate.
        assert arr[0] >= 10.0
        assert np.all(arr >= 10.0)
        assert arr[-1] - 10.0 < 0.1  # 500 arrivals at 1e6/s: ~0.5 ms

    def test_mean_rate_matches_overall_throughput(self):
        rng = np.random.default_rng(14)
        arr = generate_poisson_arrivals(self.SCHED, 4000, rng)
        horizon = float(arr[-1])
        measured = len(arr) / horizon
        assert measured == pytest.approx(self.SCHED.mean_rate(horizon),
                                         rel=0.1)

    def test_consecutive_zero_rate_intervals_skipped(self):
        sched = LoadSchedule(((0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 50.0)))
        rng = np.random.default_rng(15)
        arr = generate_poisson_arrivals(sched, 50, rng)
        assert arr[0] >= 3.0

    def test_trailing_zero_rate_exhausts_with_clear_error(self):
        sched = LoadSchedule(((0.0, 1000.0), (0.01, 0.0)))
        rng = np.random.default_rng(16)
        with pytest.raises(ValueError, match="zero forever"):
            generate_poisson_arrivals(sched, 100, rng)

"""Tests for the DVFS domain state machine (lazily-applied transitions)."""

import pytest

from repro.config import DvfsConfig
from repro.sim.dvfs import DvfsDomain
from repro.sim.engine import Simulator

GRID = (1e9, 2e9, 3e9)


def make_domain(latency=0.0, initial=2e9, on_retarget=None,
                record_history=False):
    sim = Simulator()
    cfg = DvfsConfig(frequencies=GRID, transition_latency_s=latency,
                     nominal_hz=2e9)
    return sim, DvfsDomain(sim, cfg, initial, on_retarget,
                           record_history=record_history)


class TestImmediateTransitions:
    def test_zero_latency_applies_immediately(self):
        sim, dom = make_domain(latency=0.0)
        dom.request(3e9)
        assert dom.current_hz == 3e9

    def test_no_op_same_frequency(self):
        sim, dom = make_domain()
        dom.request(2e9)
        assert dom.transitions == 0

    def test_rejects_off_grid(self):
        sim, dom = make_domain()
        with pytest.raises(ValueError):
            dom.request(1.5e9)

    def test_rejects_off_grid_initial(self):
        sim = Simulator()
        cfg = DvfsConfig(frequencies=GRID, nominal_hz=2e9)
        with pytest.raises(ValueError):
            DvfsDomain(sim, cfg, 9e9)

    def test_request_at_least(self):
        sim, dom = make_domain()
        dom.request_at_least(1.2e9)
        assert dom.current_hz == 2e9


class TestDelayedTransitions:
    def test_takes_effect_after_latency(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        assert dom.current_hz == 2e9  # still old during transition
        dom.settle()
        assert dom.current_hz == 3e9
        assert sim.now == pytest.approx(4e-6)

    def test_applies_lazily_at_clock_reads(self):
        """No event needed: once the clock passes the apply time, reads
        see the new frequency."""
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        seen = []
        sim.schedule(1e-6, lambda: seen.append(dom.current_hz))
        sim.schedule(4e-6, lambda: seen.append(dom.current_hz))
        sim.schedule(9e-6, lambda: seen.append(dom.current_hz))
        sim.run()
        # At exactly the apply time the change is visible (FREQ_CHANGE
        # used to fire before same-timestamp events).
        assert seen == [2e9, 3e9, 3e9]

    def test_latched_target_runs_after_in_flight(self):
        """A request mid-transition starts after the current one lands."""
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(1e9)  # latched
        dom.settle()
        assert dom.current_hz == 1e9
        # two transitions: 2->3 at 4us, 3->1 at 8us
        assert dom.transitions == 2
        assert sim.now == pytest.approx(8e-6)

    def test_latest_latch_wins(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(1e9)
        dom.request(2e9)  # replaces the latched 1 GHz... but 2 GHz is
        dom.settle()       # where the in-flight started from
        assert dom.current_hz == 2e9

    def test_effective_target(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        assert dom.effective_target() == 3e9
        dom.request(1e9)
        assert dom.effective_target() == 1e9

    def test_redundant_request_ignored(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(3e9)
        dom.settle()
        assert dom.transitions == 1

    def test_planned_transitions(self):
        sim, dom = make_domain(latency=4e-6)
        assert dom.planned_transitions() == ()
        dom.request(3e9)
        assert dom.planned_transitions() == ((4e-6, 3e9),)
        dom.request(1e9)
        assert dom.planned_transitions() == ((4e-6, 3e9), (8e-6, 1e9))

    def test_planned_transitions_skips_redundant_latch(self):
        """A latch equal to the in-flight target never applies."""
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(1e9)
        dom.request(3e9)  # back to the in-flight target
        assert dom.planned_transitions() == ((4e-6, 3e9),)
        dom.settle()
        assert dom.transitions == 1

    def test_late_request_counts_from_request_time(self):
        """A request issued mid-run applies latency seconds later."""
        sim, dom = make_domain(latency=4e-6)
        sim.schedule(10e-6, lambda: dom.request(3e9))
        sim.run()
        assert dom.current_hz == 2e9
        dom.settle()
        assert sim.now == pytest.approx(14e-6)
        assert dom.current_hz == 3e9

    def test_settle_noop_when_idle(self):
        sim, dom = make_domain(latency=4e-6)
        dom.settle()
        assert sim.now == 0.0


class TestCallbacksAndHistory:
    def test_on_retarget_called(self):
        calls = []
        sim, dom = make_domain(latency=4e-6,
                               on_retarget=lambda: calls.append(sim.now))
        dom.request(3e9)
        assert calls == [0.0]
        dom.request(3e9)  # redundant: no plan change, no callback
        assert calls == [0.0]
        dom.request(1e9)  # latched: the plan changed
        assert calls == [0.0, 0.0]

    def test_unaccounted_boundaries_tracked_for_consumer(self):
        sim, dom = make_domain(latency=4e-6, on_retarget=lambda: None)
        dom.request(3e9)
        dom.settle()
        assert dom.take_unaccounted() == [(4e-6, 3e9)]
        assert dom.take_unaccounted() == []

    def test_no_boundary_tracking_without_consumer(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.settle()
        assert dom.take_unaccounted() == []

    def test_history_off_by_default(self):
        sim, dom = make_domain(latency=0.0)
        dom.request(3e9)
        assert dom.history is None
        assert dom.transitions == 1  # the counter is always maintained

    def test_history_records_initial_and_changes(self):
        sim, dom = make_domain(latency=0.0, record_history=True)
        dom.request(3e9)
        dom.request(1e9)
        freqs = [f for _, f in dom.history]
        assert freqs == [2e9, 3e9, 1e9]

    def test_history_times_with_latency(self):
        sim, dom = make_domain(latency=1e-6, record_history=True)
        dom.request(3e9)
        dom.settle()
        assert dom.history[-1][0] == pytest.approx(1e-6)

    def test_history_timestamps_apply_time_even_when_synced_late(self):
        """A lazily-applied change is logged at its apply time, not at
        the clock read that surfaced it."""
        sim, dom = make_domain(latency=1e-6, record_history=True)
        dom.request(3e9)
        sim.schedule(5e-6, lambda: dom.current_hz)
        sim.run()
        assert dom.history[-1] == (pytest.approx(1e-6), 3e9)

"""Tests for the DVFS domain state machine."""

import pytest

from repro.config import DvfsConfig
from repro.sim.dvfs import DvfsDomain
from repro.sim.engine import Simulator

GRID = (1e9, 2e9, 3e9)


def make_domain(latency=0.0, initial=2e9, on_change=None):
    sim = Simulator()
    cfg = DvfsConfig(frequencies=GRID, transition_latency_s=latency,
                     nominal_hz=2e9)
    return sim, DvfsDomain(sim, cfg, initial, on_change)


class TestImmediateTransitions:
    def test_zero_latency_applies_immediately(self):
        sim, dom = make_domain(latency=0.0)
        dom.request(3e9)
        assert dom.current_hz == 3e9

    def test_no_op_same_frequency(self):
        sim, dom = make_domain()
        dom.request(2e9)
        assert dom.transitions == 0

    def test_rejects_off_grid(self):
        sim, dom = make_domain()
        with pytest.raises(ValueError):
            dom.request(1.5e9)

    def test_rejects_off_grid_initial(self):
        sim = Simulator()
        cfg = DvfsConfig(frequencies=GRID, nominal_hz=2e9)
        with pytest.raises(ValueError):
            DvfsDomain(sim, cfg, 9e9)

    def test_request_at_least(self):
        sim, dom = make_domain()
        dom.request_at_least(1.2e9)
        assert dom.current_hz == 2e9


class TestDelayedTransitions:
    def test_takes_effect_after_latency(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        assert dom.current_hz == 2e9  # still old during transition
        sim.run()
        assert dom.current_hz == 3e9
        assert sim.now == pytest.approx(4e-6)

    def test_latched_target_runs_after_in_flight(self):
        """A request mid-transition starts after the current one lands."""
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(1e9)  # latched
        sim.run()
        assert dom.current_hz == 1e9
        # two transitions: 2->3 at 4us, 3->1 at 8us
        assert dom.transitions == 2
        assert sim.now == pytest.approx(8e-6)

    def test_latest_latch_wins(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(1e9)
        dom.request(2e9)  # replaces the latched 1 GHz... but 2 GHz is
        sim.run()          # where the in-flight started from
        assert dom.current_hz == 2e9

    def test_effective_target(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        assert dom.effective_target() == 3e9
        dom.request(1e9)
        assert dom.effective_target() == 1e9

    def test_redundant_request_ignored(self):
        sim, dom = make_domain(latency=4e-6)
        dom.request(3e9)
        dom.request(3e9)
        sim.run()
        assert dom.transitions == 1


class TestCallbacksAndHistory:
    def test_on_change_called(self):
        changes = []
        sim, dom = make_domain(
            latency=0.0, on_change=lambda o, n: changes.append((o, n)))
        dom.request(3e9)
        assert changes == [(2e9, 3e9)]

    def test_history_records_initial_and_changes(self):
        sim, dom = make_domain(latency=0.0)
        dom.request(3e9)
        dom.request(1e9)
        freqs = [f for _, f in dom.history]
        assert freqs == [2e9, 3e9, 1e9]

    def test_history_times_with_latency(self):
        sim, dom = make_domain(latency=1e-6)
        dom.request(3e9)
        sim.run()
        assert dom.history[-1][0] == pytest.approx(1e-6)

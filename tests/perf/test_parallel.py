"""Tests for the parallel sweep executor (repro.perf)."""

import os
import time
import warnings

import pytest

from repro.perf import (
    WorkerPool,
    effective_workers,
    parallel_map,
    pools_created,
    shared_pool,
)
from repro.perf import parallel as parallel_mod
from repro.perf.parallel import MAX_WORKERS_ENV


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _slow_square(x):
    time.sleep(0.05)
    return x * x


def _nested_pool_driver(x):
    """A worker that itself runs a shared_pool-wrapped sweep (the shape
    of a driver like run_fig9 executing inside a pool worker)."""
    with shared_pool(processes=2):
        return sum(parallel_map(_square, [x, x + 1], processes=2))


class TestEffectiveWorkers:
    def test_single_task_is_serial(self):
        assert effective_workers(1) == 1
        assert effective_workers(0) == 1

    def test_explicit_processes_capped_by_tasks(self):
        assert effective_workers(3, processes=8) == 3
        assert effective_workers(8, processes=3) == 3

    def test_explicit_one_forces_serial(self):
        assert effective_workers(100, processes=1) == 1

    def test_auto_never_exceeds_machine(self):
        cpus = len(os.sched_getaffinity(0))
        assert effective_workers(10_000) <= cpus

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(64) == 1

    def test_env_cap_overrides_explicit_processes(self, monkeypatch):
        """The env throttle is global: explicit per-call counts cannot
        exceed it."""
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(64, processes=8) == 1

    def test_env_cap_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "0")
        assert effective_workers(64, processes=8) == 1


class TestEnvValidation:
    """Satellite fix: invalid REPRO_MAX_WORKERS used to be silently
    swallowed (and a negative value flowed through ``min()`` and forced
    serial with no diagnostic). Now it warns once and is treated as
    unset."""

    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self):
        parallel_mod._warned_env_values.clear()
        yield
        parallel_mod._warned_env_values.clear()

    @pytest.mark.parametrize("raw", ["", "-3", "abc"])
    def test_invalid_value_warns_and_is_unset(self, monkeypatch, raw):
        monkeypatch.setenv(MAX_WORKERS_ENV, raw)
        with pytest.warns(RuntimeWarning, match=MAX_WORKERS_ENV):
            # Treated as unset: the explicit count stands, and a
            # negative value in particular no longer forces serial.
            assert effective_workers(8, processes=4) == 4

    def test_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "abc")
        with pytest.warns(RuntimeWarning, match=MAX_WORKERS_ENV):
            effective_workers(8, processes=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert effective_workers(8, processes=4) == 4


class TestParallelMap:
    def test_serial_fallback_matches_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, processes=1) == \
            [x * x for x in items]

    def test_pool_results_in_input_order(self):
        items = list(range(17))
        assert parallel_map(_square, items, processes=2) == \
            [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, []) == []

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError):
            parallel_map(_fail_on_three, [1, 2, 3], processes=1)

    def test_worker_exception_propagates_pool(self):
        with pytest.raises(ValueError):
            parallel_map(_fail_on_three, [1, 2, 3, 4], processes=2)

    def test_worker_exception_carries_original_traceback(self):
        """Satellite fix: the pool is terminated (not joined on live
        workers) and the first worker exception comes back as the
        original exception with the remote traceback attached."""
        start = time.monotonic()
        with pytest.raises(ValueError, match="boom") as excinfo:
            parallel_map(_fail_on_three, list(range(8)), processes=2)
        # Teardown is prompt — a leaked/joining pool would hang here.
        assert time.monotonic() - start < 30
        cause = excinfo.value.__cause__
        assert cause is not None
        assert "_fail_on_three" in str(cause)


class TestWorkerPool:
    def test_lazy_spawn_and_reuse_across_maps(self):
        before = pools_created()
        with WorkerPool(processes=2) as wp:
            assert not wp.spawned  # lazy: nothing forked yet
            r1 = parallel_map(_square, list(range(8)))
            r2 = parallel_map(_square, list(range(5)))
            assert wp.spawned
        assert pools_created() - before == 1
        assert r1 == [x * x for x in range(8)]
        assert r2 == [x * x for x in range(5)]

    def test_serial_flow_never_spawns(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        before = pools_created()
        with WorkerPool(processes=2) as wp:
            assert wp.size == 1
            assert parallel_map(_square, list(range(6))) == \
                [x * x for x in range(6)]
            assert not wp.spawned
        assert pools_created() == before

    def test_explicit_serial_call_inside_pool(self):
        with WorkerPool(processes=2) as wp:
            assert parallel_map(_square, list(range(6)), processes=1) == \
                [x * x for x in range(6)]
            assert not wp.spawned

    def test_single_item_stays_in_process(self):
        with WorkerPool(processes=2) as wp:
            assert parallel_map(_square, [7]) == [49]
            assert not wp.spawned

    def test_exception_terminates_then_recovers(self):
        with WorkerPool(processes=2) as wp:
            with pytest.raises(ValueError, match="boom"):
                parallel_map(_fail_on_three, list(range(8)))
            assert not wp.spawned  # broken pool was dropped
            # The next dispatch lazily recreates a clean pool.
            assert parallel_map(_square, list(range(6))) == \
                [x * x for x in range(6)]
            assert wp.spawned

    def test_shared_pool_reuses_active(self):
        before = pools_created()
        with WorkerPool(processes=2) as outer:
            with shared_pool(processes=2) as inner:
                assert inner is outer
                parallel_map(_square, list(range(6)))
        assert pools_created() - before == 1

    def test_shared_pool_creates_when_none_active(self):
        with shared_pool(processes=2) as pool:
            assert isinstance(pool, WorkerPool)
            assert parallel_map(_square, list(range(6))) == \
                [x * x for x in range(6)]

    def test_nested_pool_inside_worker_stays_serial(self):
        """A shared_pool-wrapped driver running *inside* a pool worker
        must fall back to serial (daemonic processes cannot fork
        children) instead of crashing."""
        expected = [x * x + (x + 1) * (x + 1) for x in range(4)]
        assert parallel_map(_nested_pool_driver, list(range(4)),
                            processes=2) == expected
        # And the same shape works in-process too.
        assert _nested_pool_driver(1) == 1 + 4


class TestExperimentsUnderPool:
    def test_load_sweep_pool_equals_serial(self):
        """A forced 2-worker sweep reproduces the serial sweep exactly
        (determinism is per-point, so process fan-out cannot change
        results)."""
        from repro.experiments.fig09_load_sweep import run_load_sweep

        serial = run_load_sweep("masstree", loads=(0.3, 0.6),
                                num_requests=400, seed=5, processes=1)
        pooled = run_load_sweep("masstree", loads=(0.3, 0.6),
                                num_requests=400, seed=5, processes=2)
        assert pooled.tail_ms == serial.tail_ms
        assert pooled.energy_mj == serial.energy_mj
        assert pooled.bound_ms == serial.bound_ms

    def test_load_sweep_under_shared_pool_equals_serial(self):
        """The same sweep dispatched onto a persistent WorkerPool is
        bitwise-identical too (and spawns that pool exactly once)."""
        from repro.experiments.fig09_load_sweep import run_load_sweep

        serial = run_load_sweep("masstree", loads=(0.3, 0.6),
                                num_requests=400, seed=5, processes=1)
        before = pools_created()
        with WorkerPool(processes=2):
            pooled = run_load_sweep("masstree", loads=(0.3, 0.6),
                                    num_requests=400, seed=5)
        assert pools_created() - before == 1
        assert pooled.tail_ms == serial.tail_ms
        assert pooled.energy_mj == serial.energy_mj

"""Tests for the parallel sweep executor (repro.perf)."""

import os

import pytest

from repro.perf import effective_workers, parallel_map
from repro.perf.parallel import MAX_WORKERS_ENV


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestEffectiveWorkers:
    def test_single_task_is_serial(self):
        assert effective_workers(1) == 1
        assert effective_workers(0) == 1

    def test_explicit_processes_capped_by_tasks(self):
        assert effective_workers(3, processes=8) == 3
        assert effective_workers(8, processes=3) == 3

    def test_explicit_one_forces_serial(self):
        assert effective_workers(100, processes=1) == 1

    def test_auto_never_exceeds_machine(self):
        cpus = len(os.sched_getaffinity(0))
        assert effective_workers(10_000) <= cpus

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(64) == 1

    def test_env_cap_overrides_explicit_processes(self, monkeypatch):
        """The env throttle is global: explicit per-call counts cannot
        exceed it."""
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(64, processes=8) == 1

    def test_env_cap_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert effective_workers(4) >= 1


class TestParallelMap:
    def test_serial_fallback_matches_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, processes=1) == \
            [x * x for x in items]

    def test_pool_results_in_input_order(self):
        items = list(range(17))
        assert parallel_map(_square, items, processes=2) == \
            [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, []) == []

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError):
            parallel_map(_fail_on_three, [1, 2, 3], processes=1)

    def test_worker_exception_propagates_pool(self):
        with pytest.raises(ValueError):
            parallel_map(_fail_on_three, [1, 2, 3, 4], processes=2)


class TestExperimentsUnderPool:
    def test_load_sweep_pool_equals_serial(self):
        """A forced 2-worker sweep reproduces the serial sweep exactly
        (determinism is per-point, so process fan-out cannot change
        results)."""
        from repro.experiments.fig09_load_sweep import run_load_sweep

        serial = run_load_sweep("masstree", loads=(0.3, 0.6),
                                num_requests=400, seed=5, processes=1)
        pooled = run_load_sweep("masstree", loads=(0.3, 0.6),
                                num_requests=400, seed=5, processes=2)
        assert pooled.tail_ms == serial.tail_ms
        assert pooled.energy_mj == serial.energy_mj
        assert pooled.bound_ms == serial.bound_ms

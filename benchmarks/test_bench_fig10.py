"""Bench: regenerate Fig. 10 (responsiveness to load steps)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_load_steps


def _run(app):
    # Shortened 6 s schedule (paper uses 12 s); same step structure.
    return fig10_load_steps.run_step_response(app, total_time_s=6.0)


def test_fig10_masstree(benchmark):
    res = run_once(benchmark, _run, "masstree")
    print("\n" + res.table())
    # After the 75% step the oracles tuned at 25% load blow past the
    # bound; Rubik degrades least (paper Sec. 5.4).
    rubik = res.max_tail_after_step("Rubik")
    static = res.max_tail_after_step("StaticOracle")
    adren = res.max_tail_after_step("AdrenalineOracle")
    assert rubik < static
    assert rubik < adren
    assert rubik < res.bound_ms * 2.0  # minimal degradation


def test_fig10_xapian(benchmark):
    res = run_once(benchmark, _run, "xapian")
    print("\n" + res.table())
    assert res.max_tail_after_step("Rubik") < \
        res.max_tail_after_step("StaticOracle")

"""Bench: regenerate Fig. 12 (full-system power savings at 30% load)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_system_power

N = 4000


def test_fig12_system_power(benchmark):
    res = run_once(benchmark, fig12_system_power.run_fig12, num_requests=N)
    print("\n" + res.table())
    for app in res.per_app:
        # System savings are positive but much smaller than core savings
        # (idle platform power dominates — the RubikColoc motivation).
        assert 0.0 < res.per_app[app] < 0.25, app
        assert res.per_app[app] < res.core_savings[app] * 0.6, app
